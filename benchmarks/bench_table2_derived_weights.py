"""Paper Table 2: derived weight vectors and hand-crafted variants.

Reproduces every row of Table 2 on the synthetic WN18-like dataset:
DistMult / ComplEx / CP / CPh (with their "on train" rows) plus the two
bad and two good ω examples.  The paper's qualitative shape to verify:

* ComplEx ≈ CPh ≫ DistMult ≫ CP on test MRR (CP near-random);
* all four reach near-perfect *train* metrics (CP's failure is
  generalisation, not capacity);
* bad example 1 clusters with CP, bad example 2 with DistMult;
* both good examples cluster with ComplEx/CPh.
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.paper_tables import TABLE2_ROWS as ROWS
from repro.paper_tables import run_table2
from benchmarks.conftest import is_fast, publish_table


def test_table2_derived_weight_vectors(benchmark, dataset, settings):
    rows = benchmark.pedantic(
        run_table2, args=(dataset, settings), rounds=1, iterations=1
    )
    table = format_table(
        f"Table 2: derived weight vectors on {dataset.name} "
        f"(entities={dataset.num_entities}, total_dim={settings.total_dim})",
        rows,
    )
    publish_table("table2_derived_weights", table)

    if is_fast():
        return  # smoke mode: tables only, shape assertions need full training

    by_label = {row.label: row for row in rows}
    complex_mrr = by_label[ROWS[1][0]].test_metrics.mrr
    cp_mrr = by_label[ROWS[2][0]].test_metrics.mrr
    cph_mrr = by_label[ROWS[3][0]].test_metrics.mrr
    distmult_mrr = by_label[ROWS[0][0]].test_metrics.mrr

    # Paper shape assertions (who wins, by roughly what factor).
    assert cp_mrr < 0.5 * distmult_mrr, "CP must be the clear loser"
    assert complex_mrr > distmult_mrr, "ComplEx must beat DistMult"
    assert cph_mrr > distmult_mrr, "CPh must beat DistMult"
    assert abs(complex_mrr - cph_mrr) < 0.1, "ComplEx and CPh comparable"
    # All four models near-perfect on train (CP included).
    for label, _preset, with_train in ROWS[:4]:
        if with_train:
            assert by_label[label].train_metrics.mrr > 2.0 * by_label[label].test_metrics.mrr \
                or by_label[label].train_metrics.mrr > 0.7
    # Variant clustering: bad example 1 sinks toward CP; the good examples
    # sit far above it (good example 1's 20-vs-1 imbalance costs more at
    # this scale than on WN18, so its bar is "well above the bad
    # examples", not "above DistMult").
    bad1_mrr = by_label[ROWS[4][0]].test_metrics.mrr
    assert bad1_mrr < 0.5 * distmult_mrr
    assert by_label[ROWS[6][0]].test_metrics.mrr > 2.0 * bad1_mrr
    assert by_label[ROWS[7][0]].test_metrics.mrr > distmult_mrr
