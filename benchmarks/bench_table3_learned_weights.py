"""Paper Table 3: automatically learned weight vectors.

Trains the two-embedding model with ω learned end-to-end under every
restriction the paper tries (none / tanh / sigmoid / softmax), each with
and without the Dirichlet sparsity loss of Eq. 12, plus the fixed uniform
baseline.  The paper's finding to reproduce: *every* learned variant
lands at DistMult level, far below ComplEx — the gradient signal is too
symmetric to break ω's symmetry (§6.2).
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.paper_tables import TABLE3_ROWS as ROWS
from repro.paper_tables import run_table3
from benchmarks.conftest import is_fast, publish_table


def test_table3_learned_weight_vectors(benchmark, dataset, settings):
    rows, learned_omegas = benchmark.pedantic(
        run_table3, args=(dataset, settings), rounds=1, iterations=1
    )
    table = format_table(
        f"Table 3: auto-learned weight vectors on {dataset.name}", rows
    )
    lines = [table, "", "learned omega snapshots:"]
    for label, omega in learned_omegas.items():
        values = ", ".join(f"{v:+.2f}" for v in omega.flatten())
        lines.append(f"  {label:<42} ({values})")
    publish_table("table3_learned_weights", "\n".join(lines))

    if is_fast():
        return  # smoke mode: tables only, shape assertions need full training

    uniform_mrr = rows[0].test_metrics.mrr
    for row in rows[1:]:
        # §6.2: learned variants perform like the symmetric uniform
        # baseline (DistMult level), never like ComplEx.
        assert abs(row.test_metrics.mrr - uniform_mrr) < 0.22, row.label
