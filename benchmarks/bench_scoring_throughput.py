"""Ablation C: scoring throughput micro-benchmarks.

§2.2.3 claims the trilinear family "can scale linearly with respect to
embedding size in both time and space".  These micro-benchmarks measure
batch scoring and 1-vs-all sweeps for the one/two/four-embedding models
(all at the same parameter budget) and RESCAL (quadratic per relation)
as the contrast, plus the serving layer's relation-folded einsum path
(ω pre-contracted into a per-relation mixing tensor) against the
training-time einsum.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines import RESCAL
from repro.core.models import make_complex, make_distmult, make_quaternion
from repro.serving.folded import RelationFoldedScorer

NUM_ENTITIES, NUM_RELATIONS, BUDGET, BATCH = 2000, 20, 64, 256


@pytest.fixture(scope="module")
def query(rng_module=np.random.default_rng(0)):
    heads = rng_module.integers(0, NUM_ENTITIES, BATCH)
    tails = rng_module.integers(0, NUM_ENTITIES, BATCH)
    rels = rng_module.integers(0, NUM_RELATIONS, BATCH)
    return heads, tails, rels


def _models():
    rng = np.random.default_rng(1)
    return {
        "distmult(n=1)": make_distmult(NUM_ENTITIES, NUM_RELATIONS, BUDGET, rng),
        "complex(n=2)": make_complex(NUM_ENTITIES, NUM_RELATIONS, BUDGET, rng),
        "quaternion(n=4)": make_quaternion(NUM_ENTITIES, NUM_RELATIONS, BUDGET, rng),
        "rescal": RESCAL(NUM_ENTITIES, NUM_RELATIONS, BUDGET // 2, rng),
    }


MODELS = _models()


@pytest.mark.parametrize("name", list(MODELS))
def test_batch_scoring_throughput(benchmark, name, query):
    heads, tails, rels = query
    model = MODELS[name]
    result = benchmark(lambda: model.score_triples(heads, tails, rels))
    assert result.shape == (BATCH,)


@pytest.mark.parametrize("name", list(MODELS))
def test_one_vs_all_throughput(benchmark, name, query):
    heads, _tails, rels = query
    model = MODELS[name]
    result = benchmark(lambda: model.score_all_tails(heads, rels))
    assert result.shape == (BATCH, NUM_ENTITIES)


@pytest.mark.parametrize("name", ["complex(n=2)", "quaternion(n=4)"])
def test_folded_batch_scoring_throughput(benchmark, name, query):
    """The serving layer's relation-folded path on the same workload."""
    heads, tails, rels = query
    folded = RelationFoldedScorer(MODELS[name])
    result = benchmark(lambda: folded.score_triples(heads, tails, rels))
    assert result.shape == (BATCH,)


@pytest.mark.slow
@pytest.mark.parametrize(
    "name,required_speedup",
    [("quaternion(n=4)", 2.0), ("complex(n=2)", 1.3)],
)
def test_relation_folding_speeds_up_triples_per_sec(name, required_speedup):
    """Folding ω removes the n_r axis from the per-triple contraction.

    The flop count drops by ~n_r (4x for quaternion, 2x for ComplEx), so
    the measured triples/sec must rise by at least the asserted factor
    (margins below the flop ratio absorb machine noise).
    """
    model = MODELS[name]
    folded = RelationFoldedScorer(model)
    rng = np.random.default_rng(4)
    big_batch = 4096
    heads = rng.integers(0, NUM_ENTITIES, big_batch)
    tails = rng.integers(0, NUM_ENTITIES, big_batch)
    rels = rng.integers(0, NUM_RELATIONS, big_batch)

    def best_of(fn, repeats: int = 20) -> float:
        fn()  # warm up
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    baseline = best_of(lambda: model.score_triples(heads, tails, rels))
    fast = best_of(lambda: folded.score_triples(heads, tails, rels))
    assert np.allclose(
        folded.score_triples(heads, tails, rels),
        model.score_triples(heads, tails, rels),
    )
    speedup = baseline / fast
    assert speedup >= required_speedup, (
        f"{name}: folded path only {speedup:.2f}x the baseline triples/sec "
        f"(needs >= {required_speedup}x)"
    )


def test_trilinear_scales_linearly_in_dim():
    """Doubling the budget must not blow scoring time up quadratically.

    A coarse check (3x slack over the linear prediction) that guards the
    §2.2.3 complexity claim against accidental quadratic implementations.
    """
    import time

    rng = np.random.default_rng(2)
    heads = rng.integers(0, NUM_ENTITIES, BATCH)
    rels = rng.integers(0, NUM_RELATIONS, BATCH)

    def time_sweep(budget: int) -> float:
        model = make_complex(NUM_ENTITIES, NUM_RELATIONS, budget, np.random.default_rng(3))
        model.score_all_tails(heads, rels)  # warm up
        start = time.perf_counter()
        for _ in range(5):
            model.score_all_tails(heads, rels)
        return time.perf_counter() - start

    small, large = time_sweep(32), time_sweep(128)
    assert large < 3.0 * 4.0 * max(small, 1e-4)
