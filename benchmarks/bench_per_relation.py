"""Per-relation mechanism table: *why* Table 2 comes out the way it does.

Trains DistMult and ComplEx at the bench scale and prints their test
metrics split by relation.  The expected mechanism:

* On the symmetric relations (similar_to, verb_group, also_see) both
  models do well — symmetry costs DistMult nothing there.
* On the inverse-paired/asymmetric relations DistMult's Hits@1 craters
  (its score cannot order the two directions) while ComplEx holds —
  which is exactly where the aggregate MRR gap of Table 2 comes from.
"""

from __future__ import annotations

import numpy as np

from repro.core.models import make_complex, make_distmult
from repro.eval.per_relation import evaluate_per_relation, format_per_relation_table
from repro.experiments import run_experiment_row, seeded_rng
from repro.kg.synthetic import symmetric_relation_names
from benchmarks.conftest import is_fast, publish_table


def run_per_relation(dataset, settings):
    tables = {}
    gaps = {}
    for offset, (name, factory) in enumerate(
        [("DistMult", make_distmult), ("ComplEx", make_complex)]
    ):
        model = factory(
            dataset.num_entities, dataset.num_relations, settings.total_dim,
            seeded_rng(settings, 600 + offset), regularization=settings.regularization,
        )
        run_experiment_row(model, dataset, settings, label=name)
        results = evaluate_per_relation(model, dataset, split="test", min_triples=3)
        tables[name] = format_per_relation_table(results)
        symmetric = set(symmetric_relation_names())
        sym = [r.metrics.hits[1] for r in results if r.relation_name in symmetric]
        asym = [r.metrics.hits[1] for r in results if r.relation_name not in symmetric]
        gaps[name] = (float(np.mean(sym)), float(np.mean(asym)))
    return tables, gaps


def test_per_relation_mechanism(benchmark, dataset, settings):
    tables, gaps = benchmark.pedantic(
        run_per_relation, args=(dataset, settings), rounds=1, iterations=1
    )
    blocks = []
    for name, table in tables.items():
        sym, asym = gaps[name]
        blocks.append(f"{name} per-relation test metrics\n{table}\n"
                      f"mean Hits@1: symmetric={sym:.3f} asymmetric={asym:.3f}\n")
    publish_table("per_relation_mechanism", "\n".join(blocks))

    if is_fast():
        return  # smoke mode: tables only, shape assertions need full training

    distmult_sym, distmult_asym = gaps["DistMult"]
    complex_sym, complex_asym = gaps["ComplEx"]
    # DistMult pays for symmetry on the asymmetric relations...
    assert distmult_sym > distmult_asym
    # ...and ComplEx recovers most of that loss.
    assert complex_asym > distmult_asym
