"""Reliability benchmark: atomic-write overhead and recovery behavior.

Two questions, answered with numbers in ``BENCH_reliability.json``:

1. **What does crash-safety cost?**  Every artifact the pipeline
   persists (checkpoint, metrics, history, manifest, index arrays) goes
   through ``atomic_write`` — tempfile + fsync + ``os.replace`` —
   instead of a plain ``write_bytes``.  The benchmark times both write
   styles over the run's real artifact payloads and expresses the
   difference as a percentage of the end-to-end pipeline wall-clock:
   the acceptance target is **< 5% overhead on the hot path** (the
   fsyncs are real, but training/serving dominate).

2. **Does recovery actually recover?**  The three chaos scenarios from
   the test suite are re-run with timings: a worker crash healed by a
   pool retry, a torn sweep-child checkpoint healed by resume, and a
   byte-flipped persisted index served through the degraded exact
   path.  Each row records wall-clock *and* whether the recovered
   results are bit-identical to the fault-free run — recovery that
   changes results is a bug, not a feature.

Results go to ``BENCH_reliability.json`` at the repository root (see
``benchmarks/README.md`` for the schema).

Run modes:

* ``pytest benchmarks/bench_reliability.py`` — full scale; asserts the
  < 5% overhead target and bit-identical recovery everywhere.
* ``REPRO_BENCH_FAST=1`` or ``run_benchmark(fast=True)`` — toy scale for
  smoke runs (wired into the tier-1 suite); recovery identity is still
  asserted, the overhead target is recorded but not asserted (at toy
  scale the pipeline is too short to amortise anything).
* ``python benchmarks/bench_reliability.py`` — full scale, prints the
  table.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.parallel.sharded_eval import ShardedEvaluator
from repro.pipeline.config import (
    DatasetSection,
    IndexSection,
    ModelSection,
    RunConfig,
    TrainingSection,
)
from repro.pipeline.runner import run_pipeline
from repro.pipeline.sweep import sweep
from repro.reliability.atomic import atomic_write_bytes
from repro.reliability.faults import FaultPlan, FaultSpec
from repro.serving import PredictionServer

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON_PATH = REPO_ROOT / "BENCH_reliability.json"

#: Acceptance target: atomic writes may cost at most this fraction of
#: the end-to-end pipeline wall-clock (full-scale run only).
OVERHEAD_TARGET_PCT = 5.0


def _run_config(fast: bool) -> RunConfig:
    if fast:
        dataset = {"num_entities": 120, "num_clusters": 6, "seed": 3}
        total_dim, epochs = 8, 2
    else:
        dataset = {"num_entities": 500, "num_clusters": 20, "seed": 3}
        total_dim, epochs = 48, 30
    return RunConfig(
        dataset=DatasetSection(generator="synthetic_wn18", params=dataset),
        model=ModelSection(name="complex", total_dim=total_dim),
        training=TrainingSection(epochs=epochs, batch_size=256),
        index=IndexSection(kind="ivf", nlist=8, nprobe=2),
    )


def _artifact_payloads(run_dir: Path) -> dict[str, bytes]:
    """Every persisted file of a run, name -> bytes (the real IO load)."""
    return {
        str(path.relative_to(run_dir)): path.read_bytes()
        for path in sorted(run_dir.rglob("*"))
        if path.is_file()
    }


def _timed_writes(payloads: dict[str, bytes], repeats: int, atomic: bool) -> float:
    """Median wall-clock of writing all payloads once, plain or atomic."""
    timings = []
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(dir=REPO_ROOT / "benchmarks") as scratch:
            root = Path(scratch)
            start = time.perf_counter()
            for name, payload in payloads.items():
                target = root / name
                target.parent.mkdir(parents=True, exist_ok=True)
                if atomic:
                    atomic_write_bytes(target, payload)
                else:
                    target.write_bytes(payload)
            timings.append(time.perf_counter() - start)
    return sorted(timings)[len(timings) // 2]


def _bench_atomic_overhead(fast: bool, run_root: Path) -> dict:
    config = _run_config(fast)
    run_dir = run_root / "overhead_run"
    start = time.perf_counter()
    run_pipeline(config, run_dir=run_dir)
    pipeline_seconds = time.perf_counter() - start

    payloads = _artifact_payloads(run_dir)
    repeats = 5 if fast else 20
    plain_seconds = _timed_writes(payloads, repeats, atomic=False)
    atomic_seconds = _timed_writes(payloads, repeats, atomic=True)
    extra = max(0.0, atomic_seconds - plain_seconds)
    return {
        "num_artifacts": len(payloads),
        "artifact_bytes": sum(len(p) for p in payloads.values()),
        "write_repeats": repeats,
        "plain_seconds": plain_seconds,
        "atomic_seconds": atomic_seconds,
        "per_write_overhead_pct": 100.0 * extra / max(plain_seconds, 1e-12),
        "pipeline_seconds": pipeline_seconds,
        "hot_path_overhead_pct": 100.0 * extra / pipeline_seconds,
        "target_pct": OVERHEAD_TARGET_PCT,
    }


def _bench_crash_retry(fast: bool) -> dict:
    dataset = generate_synthetic_kg(
        SyntheticKGConfig(
            num_entities=120 if fast else 400,
            num_clusters=8,
            seed=7,
        )
    )
    model = make_complex(
        dataset.num_entities,
        dataset.num_relations,
        8 if fast else 32,
        np.random.default_rng(5),
    )
    start = time.perf_counter()
    clean = ShardedEvaluator(dataset, shards=4, workers=0).evaluate(model, "test")
    clean_seconds = time.perf_counter() - start

    plan = FaultPlan.of(
        FaultSpec(site="pool.task", kind="crash", match="task:1;attempt:0")
    )
    start = time.perf_counter()
    healed = ShardedEvaluator(
        dataset, shards=4, workers=2, retries=1, fault_plan=plan
    ).evaluate(model, "test")
    healed_seconds = time.perf_counter() - start
    return {
        "scenario": "worker crash mid-eval, healed by pool retry",
        "clean_seconds": clean_seconds,
        "chaotic_seconds": healed_seconds,
        "bit_identical": (
            healed.overall.mrr == clean.overall.mrr
            and healed.overall.mr == clean.overall.mr
            and healed.overall.hits == clean.overall.hits
        ),
    }


def _bench_resume_heal(fast: bool, run_root: Path) -> dict:
    config = _run_config(fast)
    grid = {"training.learning_rate": [0.05, 0.1]}
    clean = sweep(config, grid, run_root=run_root / "clean")
    first = sweep(config, grid, run_root=run_root / "hurt")

    victim = first[0].run_dir / "checkpoint" / "weights.npz"
    raw = victim.read_bytes()
    victim.write_bytes(raw[: len(raw) // 2])

    start = time.perf_counter()
    resumed = sweep(config, grid, run_root=run_root / "hurt")
    resume_seconds = time.perf_counter() - start
    return {
        "scenario": "torn sweep-child checkpoint, healed by resume re-run",
        "resume_seconds": resume_seconds,
        "statuses": [run.status for run in resumed],
        "bit_identical": all(
            healed.metrics["test"].mrr == reference.metrics["test"].mrr
            for healed, reference in zip(resumed, clean)
        ),
    }


def _bench_degraded_serving(fast: bool, run_root: Path) -> dict:
    config = _run_config(fast)
    run_dir = run_root / "serving_run"
    run_pipeline(config, run_dir=run_dir)
    heads = list(range(8))

    async def answers(path, index):
        server = PredictionServer(max_batch=8, max_wait_ms=1.0)
        async with server:
            deployment = await server.load_run(path, index=index)
            start = time.perf_counter()
            served = [await server.top_k_tails(h, 0, k=5) for h in heads]
            seconds = time.perf_counter() - start
            return (
                [(list(s.ids), list(s.scores)) for s in served],
                deployment.degraded,
                seconds,
            )

    exact, _, exact_seconds = asyncio.run(answers(run_dir, None))

    corrupt = run_root / "serving_corrupt"
    shutil.copytree(run_dir, corrupt)
    npz = corrupt / "index" / "arrays.npz"
    raw = bytearray(npz.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    npz.write_bytes(bytes(raw))

    degraded, was_degraded, degraded_seconds = asyncio.run(answers(corrupt, "auto"))
    return {
        "scenario": "byte-flipped persisted index, served via degraded exact path",
        "requests": len(heads),
        "exact_seconds": exact_seconds,
        "degraded_seconds": degraded_seconds,
        "deployment_degraded": was_degraded,
        "bit_identical": degraded == exact,
    }


def run_benchmark(
    fast: bool = False, json_path: Path | str | None = DEFAULT_JSON_PATH
) -> dict:
    """Run the benchmark; returns (and optionally writes) the results dict."""
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "benchmarks") as scratch:
        root = Path(scratch)
        results = {
            "config": {
                "fast": fast,
                "cpu_count": os.cpu_count(),
                "overhead_target_pct": OVERHEAD_TARGET_PCT,
            },
            "atomic_write": _bench_atomic_overhead(fast, root / "overhead"),
            "recovery": {
                "eval_crash_retry": _bench_crash_retry(fast),
                "sweep_resume_heal": _bench_resume_heal(fast, root / "resume"),
                "degraded_serving": _bench_degraded_serving(fast, root / "serving"),
            },
        }
    if json_path is not None:
        Path(json_path).write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return results


def format_results(results: dict) -> str:
    """Human-readable summary of one :func:`run_benchmark` result."""
    atomic = results["atomic_write"]
    lines = [
        f"Reliability benchmark ({results['config']['cpu_count']} cores)",
        (
            f"atomic writes: {atomic['num_artifacts']} artifacts, "
            f"{atomic['artifact_bytes']} bytes -> "
            f"plain {atomic['plain_seconds'] * 1000:.2f} ms, "
            f"atomic {atomic['atomic_seconds'] * 1000:.2f} ms"
        ),
        (
            f"hot-path overhead: {atomic['hot_path_overhead_pct']:.3f}% of a "
            f"{atomic['pipeline_seconds']:.2f}s pipeline "
            f"(target < {atomic['target_pct']:.1f}%)"
        ),
        "",
        f"{'recovery scenario':<52} {'seconds':>9} {'identical':>10}",
    ]
    lines.append("-" * len(lines[-1]))
    recovery = results["recovery"]
    rows = [
        (recovery["eval_crash_retry"], "chaotic_seconds"),
        (recovery["sweep_resume_heal"], "resume_seconds"),
        (recovery["degraded_serving"], "degraded_seconds"),
    ]
    for row, seconds_key in rows:
        lines.append(
            f"{row['scenario']:<52} {row[seconds_key]:>9.3f} "
            f"{str(row['bit_identical']):>10}"
        )
    return "\n".join(lines)


@pytest.mark.slow
@pytest.mark.reliability
def test_reliability_benchmark():
    """Full-scale run: recovery identity always; overhead target too."""
    results = run_benchmark(fast=bool(os.environ.get("REPRO_BENCH_FAST")))
    print("\n" + format_results(results) + "\n")
    for scenario in results["recovery"].values():
        assert scenario["bit_identical"], scenario
    assert results["recovery"]["degraded_serving"]["deployment_degraded"]
    if results["config"]["fast"]:
        pytest.skip("overhead target applies to the full-scale run only")
    measured = results["atomic_write"]["hot_path_overhead_pct"]
    assert measured < OVERHEAD_TARGET_PCT, (
        f"atomic writes cost {measured:.3f}% of the pipeline; "
        f"target < {OVERHEAD_TARGET_PCT}%"
    )


if __name__ == "__main__":
    print(format_results(run_benchmark(fast="--fast" in sys.argv)))
