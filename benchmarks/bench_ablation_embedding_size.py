"""Ablation A: embedding budget sweep at parameter parity.

The paper fixes one budget (400) and splits it across vectors (§5.3).
This ablation sweeps the budget to show (a) the ComplEx > DistMult gap is
not an artefact of one size, and (b) where returns diminish.
"""

from __future__ import annotations

from repro.core.models import make_complex, make_distmult
from repro.experiments import format_table, run_experiment_row, seeded_rng
from benchmarks.conftest import is_fast, make_settings, publish_table

BUDGETS = (16, 32, 64)


def run_sweep(dataset, base_settings):
    rows = []
    for offset, budget in enumerate(BUDGETS):
        settings = make_settings(total_dim=budget)
        cplx = make_complex(
            dataset.num_entities, dataset.num_relations, budget,
            seeded_rng(settings, 400 + offset), regularization=settings.regularization,
        )
        rows.append(run_experiment_row(cplx, dataset, settings,
                                       label=f"ComplEx total_dim={budget}"))
        distmult = make_distmult(
            dataset.num_entities, dataset.num_relations, budget,
            seeded_rng(settings, 450 + offset), regularization=settings.regularization,
        )
        rows.append(run_experiment_row(distmult, dataset, settings,
                                       label=f"DistMult total_dim={budget}"))
    return rows


def test_ablation_embedding_size(benchmark, dataset, settings):
    rows = benchmark.pedantic(run_sweep, args=(dataset, settings), rounds=1, iterations=1)
    table = format_table("Ablation A: embedding budget sweep (parameter parity)", rows)
    publish_table("ablation_embedding_size", table)

    if is_fast():
        return  # smoke mode: tables only, shape assertions need full training

    # ComplEx must beat DistMult once there is enough capacity for the
    # inverse structure (budgets >= 32); at the smallest budget both
    # models are capacity-starved and statistically tied.
    for i in range(0, len(rows), 2):
        budget = int(rows[i].label.rsplit("=", 1)[1])
        complex_mrr = rows[i].test_metrics.mrr
        distmult_mrr = rows[i + 1].test_metrics.mrr
        if budget >= 32:
            assert complex_mrr > distmult_mrr, rows[i].label
        else:
            assert complex_mrr > 0.7 * distmult_mrr, rows[i].label
    # Larger budgets must help ComplEx (diminishing, not inverted, returns).
    assert rows[4].test_metrics.mrr > rows[0].test_metrics.mrr
