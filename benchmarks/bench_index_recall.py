"""Approximate-retrieval benchmark: recall@10 vs speedup over ``nprobe``.

Trains a paper model on a *scaled* synthetic graph (the
``SyntheticKGConfig.scale`` knob), builds the IVF index of
:mod:`repro.index.ivf` over it, and sweeps the probe budget: for each
``nprobe`` the bench measures

* **recall@10** of the index-served top-k against the exact full-sweep
  ``LinkPredictor`` answers,
* the **probed fraction** (entities exactly scored per query / N — the
  quantity the sub-linear claim is about) and its inverse, the
  **scored reduction**, and
* the wall-clock **speedup** of the index path over the exact path.

Results go to ``BENCH_index.json`` at the repository root (schema in
``benchmarks/README.md``).  The acceptance target — some operating point
with recall@10 ≥ 0.95 while scoring ≥ 5x fewer entities — is asserted
both by the full-scale slow run and by the tier-1 smoke run
(``run_benchmark(fast=True)``, wired into ``scripts/ci.sh``).

Run modes mirror the other benches:

* ``pytest benchmarks/bench_index_recall.py`` — full scale (slow);
* ``python benchmarks/bench_index_recall.py [--fast]`` — prints the
  curve table and writes the JSON.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.index.ivf import IVFIndex
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.serving import LinkPredictor
from repro.training.trainer import Trainer, TrainingConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON_PATH = REPO_ROOT / "BENCH_index.json"

#: Acceptance targets asserted by the smoke and slow tests.
RECALL_TARGET = 0.95
REDUCTION_TARGET = 5.0
TOP_K = 10

#: Full scale: the paper-scale synthetic config scaled 16x (24k entities)
#: — big enough that cell geometry resembles the million-entity regime,
#: small enough to train in minutes.  Fast scale (the tier-1 smoke run)
#: scales to 4k entities with an aggressive learning rate: the index
#: needs a *converged* embedding geometry, not paper-grade MRR, so a
#: short hot-lr run buys the cluster structure at a fraction of the
#: epochs.
FULL_SCALE = dict(
    scale=16.0, total_dim=16, epochs=150, batch_size=4096, num_negatives=4,
    learning_rate=0.05, nlist=None, spill=2, queries=256,
    nprobe_fractions=(0.025, 0.05, 0.075, 0.1, 0.125, 0.2),
)
FAST_SCALE = dict(
    scale=8 / 3, total_dim=16, epochs=100, batch_size=2048, num_negatives=4,
    learning_rate=0.08, nlist=None, spill=2, queries=160,
    nprobe_fractions=(0.08, 0.1, 0.125, 0.15),
)


def _build_trained_model(dataset, scale_config: dict):
    model = make_complex(
        dataset.num_entities,
        dataset.num_relations,
        scale_config["total_dim"],
        np.random.default_rng(7),
    )
    config = TrainingConfig(
        epochs=scale_config["epochs"],
        batch_size=scale_config["batch_size"],
        num_negatives=scale_config["num_negatives"],
        learning_rate=scale_config["learning_rate"],
        validate_every=10**9,
        patience=10**9,
        seed=13,
    )
    Trainer(dataset, config).train(model)
    return model


def _time_batch(fn, repeats: int = 3) -> float:
    fn()  # warm folded tensors / partitions
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return float(np.median(timings))


def run_benchmark(
    fast: bool = False,
    json_path: Path | str | None = DEFAULT_JSON_PATH,
    scale: float | None = None,
) -> dict:
    """Sweep ``nprobe`` and record the recall/speedup curve.

    *scale* overrides the preset entity-count scale (the same knob
    ``bench_memory.py`` pushes to ~1M entities), so the recall curve can
    be traced along the scale axis: ``--scale 66.7`` benches the same
    geometry at 100k entities, ``--scale 667`` at 1M.
    """
    scale_config = dict(FAST_SCALE if fast else FULL_SCALE)
    if scale is not None:
        scale_config["scale"] = float(scale)
    started = time.perf_counter()
    dataset = generate_synthetic_kg(SyntheticKGConfig(seed=3, scale=scale_config["scale"]))
    generate_seconds = time.perf_counter() - started

    started = time.perf_counter()
    model = _build_trained_model(dataset, scale_config)
    train_seconds = time.perf_counter() - started

    num_queries = min(scale_config["queries"], len(dataset.test))
    heads = dataset.test.heads[:num_queries]
    relations = dataset.test.relations[:num_queries]

    exact = LinkPredictor(model, dataset, cache_size=0)
    exact_seconds = _time_batch(lambda: exact.top_k_tails(heads, relations, k=TOP_K))
    exact_ids = exact.top_k_tails(heads, relations, k=TOP_K).ids

    index = IVFIndex(
        model,
        nlist=scale_config["nlist"],
        spill=scale_config["spill"],
        seed=0,
    )
    started = time.perf_counter()
    index.build(relations=np.unique(relations), sides=("tail",))
    build_seconds = time.perf_counter() - started

    curve = []
    for fraction in scale_config["nprobe_fractions"]:
        nprobe = max(1, min(index.nlist, int(round(fraction * index.nlist))))
        index.nprobe = nprobe
        predictor = LinkPredictor(model, dataset, cache_size=0, index=index)
        index_seconds = _time_batch(
            lambda: predictor.top_k_tails(heads, relations, k=TOP_K)
        )
        result = predictor.top_k_tails(heads, relations, k=TOP_K)
        recall = float(
            np.mean(
                [
                    np.intersect1d(approx[approx >= 0], truth).size / TOP_K
                    for approx, truth in zip(result.ids, exact_ids)
                ]
            )
        )
        probed = predictor.index_stats.probed_fraction
        curve.append(
            {
                "nprobe": nprobe,
                "recall_at_10": recall,
                "probed_fraction": probed,
                "scored_reduction": (1.0 / probed) if probed else float("inf"),
                "batch_seconds": index_seconds,
                "speedup_vs_exact": exact_seconds / index_seconds,
            }
        )

    passing = [
        point
        for point in curve
        if point["recall_at_10"] >= RECALL_TARGET
        and point["scored_reduction"] >= REDUCTION_TARGET
    ]
    best = max(passing, key=lambda point: point["scored_reduction"], default=None)
    results = {
        "benchmark": "IVF index recall@10 vs scored-entity reduction over nprobe",
        "dataset": {
            "name": dataset.name,
            "scale": scale_config["scale"],
            "num_entities": dataset.num_entities,
            "num_relations": dataset.num_relations,
            "num_train_triples": len(dataset.train),
            "generate_seconds": generate_seconds,
        },
        "config": {
            "fast": fast,
            "model": "complex",
            "total_dim": scale_config["total_dim"],
            "epochs": scale_config["epochs"],
            "learning_rate": scale_config["learning_rate"],
            "train_seconds": train_seconds,
            "nlist": index.nlist,
            "spill": index.spill,
            "queries": num_queries,
            "top_k": TOP_K,
            "index_build_seconds": build_seconds,
            "exact_batch_seconds": exact_seconds,
            "recall_target": RECALL_TARGET,
            "reduction_target": REDUCTION_TARGET,
        },
        "curve": curve,
        "acceptance": {
            "achieved": best is not None,
            "best_point": best,
        },
    }
    if json_path is not None:
        Path(json_path).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    return results


def format_results(results: dict) -> str:
    """Human-readable curve table of the JSON payload."""
    dataset = results["dataset"]
    config = results["config"]
    lines = [
        f"IVF recall/speedup on {dataset['name']} "
        f"(N={dataset['num_entities']:,}, nlist={config['nlist']}, "
        f"spill={config['spill']}, {config['queries']} queries)",
        f"{'nprobe':>7} {'recall@10':>10} {'probed':>8} {'reduction':>10} {'speedup':>8}",
    ]
    for point in results["curve"]:
        lines.append(
            f"{point['nprobe']:>7} {point['recall_at_10']:>10.3f} "
            f"{point['probed_fraction']:>8.3f} {point['scored_reduction']:>9.1f}x "
            f"{point['speedup_vs_exact']:>7.2f}x"
        )
    best = results["acceptance"]["best_point"]
    if best is not None:
        lines.append(
            f"target met: recall {best['recall_at_10']:.3f} at "
            f"{best['scored_reduction']:.1f}x fewer entities scored "
            f"(nprobe={best['nprobe']})"
        )
    else:
        lines.append("target NOT met on this configuration")
    return "\n".join(lines)


@pytest.mark.slow
@pytest.mark.index
def test_index_recall_speedup():
    from benchmarks.conftest import is_fast, publish_table

    results = run_benchmark(fast=is_fast())
    publish_table("index_recall", format_results(results))
    assert results["acceptance"]["achieved"], (
        f"no nprobe reached recall@10 >= {RECALL_TARGET} with >= "
        f"{REDUCTION_TARGET}x fewer entities scored: {results['curve']}"
    )


if __name__ == "__main__":
    fast_flag = "--fast" in sys.argv
    scale_arg = None
    if "--scale" in sys.argv:
        scale_arg = float(sys.argv[sys.argv.index("--scale") + 1])
    print(format_results(run_benchmark(fast=fast_flag, scale=scale_arg)))
    print(f"\nwrote {DEFAULT_JSON_PATH}")
