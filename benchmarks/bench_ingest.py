"""Incremental-ingestion benchmark: delta batches vs from-scratch rebuild.

Simulates a growing knowledge graph: a synthetic graph is split into a
*base* snapshot and a held-out *stream* of triples incident to entities
the base has never seen.  The stream arrives as ``N`` transactional
:class:`~repro.ingest.GraphDelta` batches, and the bench compares two
ways of absorbing it:

* **incremental** — the unified mutation path of :mod:`repro.ingest`:
  each batch is applied through :func:`~repro.ingest.ingest_delta`
  (dataset apply + embedding-table growth + warm-start fine-tuning of
  touched rows + incremental IVF maintenance against frozen centroids).
  Cost is the summed ingest wall-clock only — the base model/index are
  the sunk cost the serving fleet already paid.
* **scratch** — retrain the model from initialization on the final graph
  and rebuild the IVF index from scratch (what absorbing the stream
  costs without the incremental path).

Both arms then evaluate on the *same* test triples (chosen to avoid the
stream entities so the comparison is apples-to-apples): filtered test
MRR through the standard evaluator, and index recall@10 of the
IVF-served top-k against each arm's own exact full-sweep answers.

Results go to ``BENCH_ingest.json`` at the repository root (schema in
``benchmarks/README.md``).  The acceptance target — incremental MRR and
recall@10 within tolerance of scratch at ≤ 25% of its wall-clock cost —
is asserted by the full-scale slow run and by the tier-1 smoke run
(``run_benchmark(fast=True)``, wired into ``scripts/ci.sh``).

Run modes mirror the other benches:

* ``pytest benchmarks/bench_ingest.py`` — full scale (slow);
* ``python benchmarks/bench_ingest.py [--fast]`` — prints the table and
  writes the JSON.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.eval.evaluator import LinkPredictionEvaluator
from repro.index.ivf import IVFIndex
from repro.ingest import GraphDelta, ingest_delta
from repro.kg.graph import KGDataset
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.serving import LinkPredictor
from repro.training.trainer import Trainer, TrainingConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON_PATH = REPO_ROOT / "BENCH_ingest.json"

#: Acceptance targets asserted by the smoke and slow tests: the
#: incremental arm must land within these absolute deltas of the
#: from-scratch arm while spending at most this fraction of its cost.
COST_RATIO_TARGET = 0.25
MRR_TOLERANCE = 0.05
RECALL_TOLERANCE = 0.05
TOP_K = 10

#: Full scale: ~6k entities with a real training budget, ~5% of the
#: graph arriving as the stream over 6 delta batches.  Fast scale (the
#: tier-1 smoke run) shrinks everything but keeps the same shape — the
#: gate is the *ratio* between the arms, which survives downscaling.
FULL_SCALE = dict(
    scale=4.0, total_dim=16, epochs=100, batch_size=2048, num_negatives=4,
    learning_rate=0.05, batches=6, new_entity_fraction=0.05,
    extra_triple_fraction=0.02, ingest_epochs=6, ingest_batch_size=512,
    ingest_learning_rate=0.03, queries=200,
)
FAST_SCALE = dict(
    scale=1.0, total_dim=16, epochs=40, batch_size=1024, num_negatives=2,
    learning_rate=0.08, batches=3, new_entity_fraction=0.03,
    extra_triple_fraction=0.01, ingest_epochs=4, ingest_batch_size=256,
    ingest_learning_rate=0.03, queries=120,
)


def _named(dataset: KGDataset, rows: np.ndarray) -> list[tuple[str, str, str]]:
    """``(head, tail, relation)`` name triples of an id-triple array."""
    ents, rels = dataset.entities, dataset.relations
    return [(ents.name(h), ents.name(t), rels.name(r)) for h, t, r in rows]


def _split_stream(full: KGDataset, scale_config: dict, rng) -> tuple[list, list, list, list, int]:
    """Split the full graph into base-train, stream, valid and test names.

    Stream entities are sampled from train-only entities (absent from
    valid/test), so the held-out evaluation triples are identical for
    both arms and the stream's entities are genuinely *new* to the base
    snapshot — their first appearance is inside a delta.
    """
    train = full.train.deduplicate().array
    eval_entities = np.unique(
        np.concatenate([full.valid.array[:, :2].ravel(), full.test.array[:, :2].ravel()])
    )
    candidates = np.setdiff1d(np.unique(train[:, :2]), eval_entities)
    num_new = max(1, int(scale_config["new_entity_fraction"] * full.num_entities))
    num_new = min(num_new, max(1, len(candidates) - 1))
    new_entities = rng.choice(candidates, size=num_new, replace=False)
    incident = np.isin(train[:, 0], new_entities) | np.isin(train[:, 1], new_entities)
    extra = (~incident) & (
        rng.random(len(train)) < scale_config["extra_triple_fraction"]
    )
    stream_mask = incident | extra
    if stream_mask.all():  # keep the base snapshot trainable
        stream_mask[: len(train) // 2] = False
    base_names = _named(full, train[~stream_mask])
    stream_names = _named(full, train[stream_mask])
    valid_names = _named(full, full.valid.array)
    test_names = _named(full, full.test.array)
    return base_names, stream_names, valid_names, test_names, int(num_new)


def _train_model(dataset: KGDataset, scale_config: dict):
    model = make_complex(
        dataset.num_entities,
        dataset.num_relations,
        scale_config["total_dim"],
        np.random.default_rng(7),
    )
    config = TrainingConfig(
        epochs=scale_config["epochs"],
        batch_size=scale_config["batch_size"],
        num_negatives=scale_config["num_negatives"],
        learning_rate=scale_config["learning_rate"],
        validate_every=10**9,
        patience=10**9,
        seed=13,
    )
    Trainer(dataset, config).train(model)
    return model


def _build_ivf(model, dataset: KGDataset) -> IVFIndex:
    index = IVFIndex(model, seed=0, spill=2)
    # A generous probe budget: the gate is the incremental-vs-scratch
    # recall *delta*, which a starved budget would drown in probe noise.
    index.nprobe = max(index.nprobe, index.nlist // 4)
    index.build(relations=np.unique(dataset.test.relations), sides=("tail",))
    return index


def _recall_at_k(model, dataset: KGDataset, index: IVFIndex, queries: int) -> float:
    """Mean recall@k of index-served tails vs the exact full sweep."""
    heads = dataset.test.heads[:queries]
    relations = dataset.test.relations[:queries]
    exact = LinkPredictor(model, dataset, cache_size=0).top_k(
        heads, relations, side="tail", k=TOP_K
    )
    served = LinkPredictor(model, dataset, cache_size=0, index=index).top_k(
        heads, relations, side="tail", k=TOP_K
    )
    return float(
        np.mean(
            [
                np.intersect1d(approx[approx >= 0], truth).size / TOP_K
                for approx, truth in zip(served.ids, exact.ids)
            ]
        )
    )


def _filtered_mrr(model, dataset: KGDataset) -> float:
    return LinkPredictionEvaluator(dataset).evaluate(model, split="test").overall.mrr


def run_benchmark(
    fast: bool = False, json_path: Path | str | None = DEFAULT_JSON_PATH
) -> dict:
    """Absorb a triple stream incrementally and from scratch; compare."""
    scale_config = dict(FAST_SCALE if fast else FULL_SCALE)
    rng = np.random.default_rng(11)
    full = generate_synthetic_kg(SyntheticKGConfig(seed=3, scale=scale_config["scale"]))
    base_names, stream_names, valid_names, test_names, num_new = _split_stream(
        full, scale_config, rng
    )

    # ---------------------------------------------------------- incremental
    base = KGDataset.from_labeled_triples(
        base_names, valid_names, test_names, name="ingest_base"
    )
    model = _train_model(base, scale_config)
    _ = base.filter_index  # force the one from-scratch build; deltas update it
    index = _build_ivf(model, base)

    batches = [
        batch.tolist()
        for batch in np.array_split(np.array(stream_names, dtype=object), scale_config["batches"])
        if len(batch)
    ]
    dataset = base
    incremental_seconds = 0.0
    batch_receipts = []
    for i, batch in enumerate(batches):
        delta = GraphDelta(add_triples=tuple(tuple(row) for row in batch))
        outcome = ingest_delta(
            model,
            dataset,
            delta,
            index=index,
            epochs=scale_config["ingest_epochs"],
            batch_size=scale_config["ingest_batch_size"],
            learning_rate=scale_config["ingest_learning_rate"],
            num_negatives=scale_config["num_negatives"],
            seed=i,
        )
        dataset = outcome.dataset
        incremental_seconds += outcome.seconds
        batch_receipts.append(outcome.to_dict())

    queries = min(scale_config["queries"], len(dataset.test))
    incremental = {
        "seconds": incremental_seconds,
        "filtered_mrr": _filtered_mrr(model, dataset),
        "recall_at_10": _recall_at_k(model, dataset, index, queries),
        "graph_version": len(batches),
        "index_rebuilds": index.rebuilds,
        "batches": batch_receipts,
    }

    # -------------------------------------------------------------- scratch
    final = KGDataset.from_labeled_triples(
        base_names + stream_names, valid_names, test_names, name="ingest_final"
    )
    assert len(final.train) == len(dataset.train)
    started = time.perf_counter()
    scratch_model = _train_model(final, scale_config)
    train_seconds = time.perf_counter() - started
    started = time.perf_counter()
    scratch_index = _build_ivf(scratch_model, final)
    build_seconds = time.perf_counter() - started
    scratch = {
        "seconds": train_seconds + build_seconds,
        "train_seconds": train_seconds,
        "build_seconds": build_seconds,
        "filtered_mrr": _filtered_mrr(scratch_model, final),
        "recall_at_10": _recall_at_k(scratch_model, final, scratch_index, queries),
    }

    cost_ratio = incremental["seconds"] / scratch["seconds"]
    mrr_delta = incremental["filtered_mrr"] - scratch["filtered_mrr"]
    recall_delta = incremental["recall_at_10"] - scratch["recall_at_10"]
    results = {
        "benchmark": "incremental graph ingestion vs from-scratch retrain + rebuild",
        "dataset": {
            "name": full.name,
            "scale": scale_config["scale"],
            "num_entities_final": final.num_entities,
            "num_entities_base": base.num_entities,
            "new_entities": num_new,
            "stream_triples": len(stream_names),
            "base_triples": len(base_names),
        },
        "config": {
            "fast": fast,
            "model": "complex",
            "total_dim": scale_config["total_dim"],
            "epochs": scale_config["epochs"],
            "batches": len(batches),
            "ingest_epochs": scale_config["ingest_epochs"],
            "queries": queries,
            "top_k": TOP_K,
            "cost_ratio_target": COST_RATIO_TARGET,
            "mrr_tolerance": MRR_TOLERANCE,
            "recall_tolerance": RECALL_TOLERANCE,
        },
        "incremental": incremental,
        "scratch": scratch,
        "acceptance": {
            "cost_ratio": cost_ratio,
            "mrr_delta": mrr_delta,
            "recall_delta": recall_delta,
            "achieved": bool(
                cost_ratio <= COST_RATIO_TARGET
                and mrr_delta >= -MRR_TOLERANCE
                and recall_delta >= -RECALL_TOLERANCE
            ),
        },
    }
    if json_path is not None:
        Path(json_path).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    return results


def format_results(results: dict) -> str:
    """Human-readable summary table of the JSON payload."""
    dataset = results["dataset"]
    acc = results["acceptance"]
    inc, scr = results["incremental"], results["scratch"]
    lines = [
        f"Incremental ingestion on {dataset['name']} "
        f"({dataset['num_entities_base']:,} -> {dataset['num_entities_final']:,} "
        f"entities, {dataset['stream_triples']:,} stream triples over "
        f"{results['config']['batches']} batches)",
        f"{'arm':<12} {'seconds':>9} {'filtered MRR':>13} {'recall@10':>10}",
        f"{'incremental':<12} {inc['seconds']:>9.2f} {inc['filtered_mrr']:>13.3f} "
        f"{inc['recall_at_10']:>10.3f}",
        f"{'scratch':<12} {scr['seconds']:>9.2f} {scr['filtered_mrr']:>13.3f} "
        f"{scr['recall_at_10']:>10.3f}",
        f"cost ratio {acc['cost_ratio']:.3f} (target <= {COST_RATIO_TARGET}), "
        f"MRR delta {acc['mrr_delta']:+.3f}, recall delta {acc['recall_delta']:+.3f}"
        f" -> {'PASS' if acc['achieved'] else 'FAIL'}",
    ]
    return "\n".join(lines)


@pytest.mark.slow
@pytest.mark.ingest
def test_incremental_ingest_matches_scratch_cheaply():
    from benchmarks.conftest import is_fast, publish_table

    results = run_benchmark(fast=is_fast())
    publish_table("ingest", format_results(results))
    assert results["acceptance"]["achieved"], results["acceptance"]


if __name__ == "__main__":
    print(format_results(run_benchmark(fast="--fast" in sys.argv)))
    print(f"\nwrote {DEFAULT_JSON_PATH}")
