"""Shared fixtures for the paper-table benchmarks.

Every benchmark trains on the same synthetic WN18-like dataset (fixed
seed), prints its table in the paper's layout, and writes it to
``benchmarks/results/<name>.txt`` so the output survives pytest's
capture.  Set the environment variable ``REPRO_BENCH_FAST=1`` to run the
benches at toy scale (useful for CI smoke runs).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentSettings, build_dataset
from repro.kg.synthetic import SyntheticKGConfig

RESULTS_DIR = Path(__file__).parent / "results"


def is_fast() -> bool:
    """Whether the benches run in smoke mode (assertions are skipped)."""
    return bool(os.environ.get("REPRO_BENCH_FAST"))


def make_settings(**overrides) -> ExperimentSettings:
    """Benchmark-scale settings, or toy scale under REPRO_BENCH_FAST=1."""
    if os.environ.get("REPRO_BENCH_FAST"):
        fast = dict(
            dataset_config=SyntheticKGConfig(
                num_entities=150, num_clusters=10, num_domains=4, seed=7
            ),
            total_dim=16,
            epochs=40,
            batch_size=512,
        )
        fast.update(overrides)
        return ExperimentSettings(**fast)
    defaults = dict(epochs=300)
    defaults.update(overrides)
    return ExperimentSettings(**defaults)


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return make_settings()


@pytest.fixture(scope="session")
def dataset(settings):
    return build_dataset(settings)


def publish_table(name: str, table: str) -> None:
    """Print a results table and persist it under benchmarks/results/."""
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n", encoding="utf-8")
