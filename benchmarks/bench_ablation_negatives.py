"""Ablation B: number of negative samples per positive.

The paper fixes 1 negative "because, although using more negative
samples is beneficial for all models, it is also more expensive and not
necessary for this comparative analysis" (§5.3).  This ablation verifies
both halves of that sentence: more negatives help (or at least do not
hurt) ComplEx, and the 1-negative comparison already separates the
models.
"""

from __future__ import annotations

from repro.core.models import make_complex, make_cp
from repro.experiments import format_table, run_experiment_row, seeded_rng
from benchmarks.conftest import is_fast, make_settings, publish_table

NEGATIVE_COUNTS = (1, 2, 4)


def run_sweep(dataset, base_settings):
    rows = []
    for offset, k in enumerate(NEGATIVE_COUNTS):
        settings = make_settings(num_negatives=k)
        model = make_complex(
            dataset.num_entities, dataset.num_relations, settings.total_dim,
            seeded_rng(settings, 500 + offset), regularization=settings.regularization,
        )
        rows.append(run_experiment_row(model, dataset, settings,
                                       label=f"ComplEx negatives={k}"))
    # The separation check at 1 negative: CP must remain far below.
    settings = make_settings(num_negatives=1)
    cp = make_cp(
        dataset.num_entities, dataset.num_relations, settings.total_dim,
        seeded_rng(settings, 550), regularization=settings.regularization,
    )
    rows.append(run_experiment_row(cp, dataset, settings, label="CP negatives=1"))
    return rows


def test_ablation_negative_samples(benchmark, dataset, settings):
    rows = benchmark.pedantic(run_sweep, args=(dataset, settings), rounds=1, iterations=1)
    table = format_table("Ablation B: negative samples per positive", rows)
    publish_table("ablation_negatives", table)

    if is_fast():
        return  # smoke mode: tables only, shape assertions need full training

    one_negative = rows[0].test_metrics.mrr
    four_negatives = rows[2].test_metrics.mrr
    assert four_negatives > 0.9 * one_negative, "more negatives must not collapse quality"
    assert rows[3].test_metrics.mrr < 0.5 * one_negative, "1 negative already separates CP"
