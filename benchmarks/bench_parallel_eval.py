"""Parallel-evaluation benchmark: sharded ranking sweeps vs the serial path.

Times filtered link-prediction evaluation of a paper-scale synthetic
graph through the serial :class:`LinkPredictionEvaluator` and through
:class:`~repro.parallel.sharded_eval.ShardedEvaluator` at several
(axis, shards, workers) settings, verifying on every row that the
sharded metrics are **bit-identical** to the serial ones (the engine's
core contract — parallelism must never change results).

Results go to ``BENCH_parallel.json`` at the repository root (see
``benchmarks/README.md`` for the schema).  The JSON records
``os.cpu_count()`` because worker speedups are meaningless without it:
on a single-core machine the multi-process rows measure pure dispatch
overhead; the ≥2x-at-4-workers target applies to machines with ≥4
cores and is asserted by the (guarded) slow test below.

Run modes:

* ``pytest benchmarks/bench_parallel_eval.py`` — full scale; asserts
  metric identity everywhere and the ≥2x speedup target when the host
  has ≥4 cores.
* ``REPRO_BENCH_FAST=1`` or ``run_benchmark(fast=True)`` — toy scale for
  smoke runs (wired into the tier-1 suite); identity still checked,
  timing recorded but never asserted.
* ``python benchmarks/bench_parallel_eval.py`` — full scale, prints the
  table.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.models import make_model
from repro.core.weights import PRESETS
from repro.eval.evaluator import LinkPredictionEvaluator
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.parallel.sharded_eval import ShardedEvaluator

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON_PATH = REPO_ROOT / "BENCH_parallel.json"

#: The acceptance target on hosts with >= 4 cores: 4 workers deliver at
#: least this speedup over the serial evaluator.
SPEEDUP_TARGET = 2.0

#: (shard_axis, shards, workers) settings benchmarked at full scale.
FULL_SETTINGS = (
    ("triples", 4, 0),
    ("triples", 2, 2),
    ("triples", 4, 4),
    ("entities", 4, 4),
)

#: Reduced settings for smoke runs (still exercises pool workers once).
FAST_SETTINGS = (
    ("triples", 2, 0),
    ("triples", 2, 2),
    ("entities", 2, 2),
)


def _build_setup(fast: bool):
    """Dataset + model pair at benchmark or smoke scale."""
    if fast:
        dataset_config = SyntheticKGConfig(
            num_entities=150, num_clusters=10, num_domains=4, seed=7
        )
        total_dim = 16
    else:
        dataset_config = SyntheticKGConfig(
            num_entities=8000, num_clusters=200, num_domains=16, seed=7,
            test_fraction=0.1,
        )
        total_dim = 192
    dataset = generate_synthetic_kg(dataset_config)
    model = make_model(
        PRESETS.get("complex"),
        dataset.num_entities,
        dataset.num_relations,
        total_dim=total_dim,
        rng=np.random.default_rng(13),
    )
    return dataset, model, total_dim


def _metrics_fingerprint(result) -> dict:
    return {
        "mrr": result.overall.mrr,
        "mr": result.overall.mr,
        "hits": {str(k): v for k, v in result.overall.hits.items()},
        "num_ranks": result.overall.num_ranks,
    }


def _timed_evaluate(evaluator, model, repeats: int):
    """Median wall-clock of ``evaluator.evaluate``; returns (seconds, result)."""
    timings = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = evaluator.evaluate(model, "test")
        timings.append(time.perf_counter() - start)
    return sorted(timings)[len(timings) // 2], result


def run_benchmark(
    fast: bool = False, json_path: Path | str | None = DEFAULT_JSON_PATH
) -> dict:
    """Run the benchmark; returns (and optionally writes) the results dict."""
    dataset, model, total_dim = _build_setup(fast)
    batch_size = 128 if fast else 512
    repeats = 1 if fast else 3
    num_eval = 2 * len(dataset.test)  # both sides are ranked per triple

    serial_evaluator = LinkPredictionEvaluator(dataset, batch_size=batch_size)
    # Warm up BLAS threads, the filter index, and the page cache before
    # any timed run — first-touch costs otherwise masquerade as speedup.
    serial_evaluator.evaluate(model, "test")
    serial_seconds, serial_result = _timed_evaluate(serial_evaluator, model, repeats)

    rows = []
    for axis, shards, workers in FAST_SETTINGS if fast else FULL_SETTINGS:
        evaluator = ShardedEvaluator(
            dataset,
            shards=shards,
            workers=workers,
            shard_axis=axis,
            batch_size=batch_size,
        )
        seconds, result = _timed_evaluate(evaluator, model, repeats)
        rows.append(
            {
                "shard_axis": axis,
                "shards": shards,
                "workers": workers,
                "seconds": seconds,
                "triples_per_sec": num_eval / seconds,
                "speedup_vs_serial": serial_seconds / seconds,
                "metrics_match_serial": (
                    result.overall.mrr == serial_result.overall.mrr
                    and result.overall.mr == serial_result.overall.mr
                    and result.overall.hits == serial_result.overall.hits
                    and result.overall.num_ranks == serial_result.overall.num_ranks
                ),
            }
        )

    results = {
        "config": {
            "fast": fast,
            "cpu_count": os.cpu_count(),
            "num_entities": dataset.num_entities,
            "num_relations": dataset.num_relations,
            "num_test_triples": len(dataset.test),
            "ranked_queries": num_eval,
            "total_dim": total_dim,
            "batch_size": batch_size,
            "speedup_target_at_4_workers": SPEEDUP_TARGET,
        },
        "serial": {
            "seconds": serial_seconds,
            "triples_per_sec": num_eval / serial_seconds,
            "metrics": _metrics_fingerprint(serial_result),
        },
        "sharded": rows,
    }
    if json_path is not None:
        Path(json_path).write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return results


def format_results(results: dict) -> str:
    """Human-readable table of one :func:`run_benchmark` result."""
    config = results["config"]
    lines = [
        f"Parallel evaluation benchmark "
        f"({config['num_entities']} entities, {config['ranked_queries']} ranked queries, "
        f"{config['cpu_count']} cores)",
        f"{'setting':<28} {'seconds':>9} {'queries/s':>10} {'speedup':>8} {'identical':>10}",
    ]
    lines.append("-" * len(lines[-1]))
    serial = results["serial"]
    lines.append(
        f"{'serial evaluator':<28} {serial['seconds']:>9.3f} "
        f"{serial['triples_per_sec']:>10.1f} {'1.00x':>8} {'(ref)':>10}"
    )
    for row in results["sharded"]:
        label = f"{row['shard_axis']} x{row['shards']}, workers={row['workers']}"
        lines.append(
            f"{label:<28} {row['seconds']:>9.3f} {row['triples_per_sec']:>10.1f} "
            f"{row['speedup_vs_serial']:>7.2f}x {str(row['metrics_match_serial']):>10}"
        )
    return "\n".join(lines)


@pytest.mark.slow
@pytest.mark.parallel
def test_parallel_eval_benchmark():
    """Full-scale run: identity always; the 2x target only with >= 4 cores."""
    results = run_benchmark(fast=bool(os.environ.get("REPRO_BENCH_FAST")))
    print("\n" + format_results(results) + "\n")
    for row in results["sharded"]:
        assert row["metrics_match_serial"], row
    if results["config"]["fast"] or (os.cpu_count() or 1) < 4:
        pytest.skip("speedup target needs the full-scale run on >= 4 cores")
    best = max(
        row["speedup_vs_serial"]
        for row in results["sharded"]
        if row["workers"] == 4
    )
    assert best >= SPEEDUP_TARGET, (
        f"expected >= {SPEEDUP_TARGET}x at 4 workers, measured {best:.2f}x"
    )


if __name__ == "__main__":
    table = format_results(run_benchmark(fast="--fast" in sys.argv))
    print(table)
