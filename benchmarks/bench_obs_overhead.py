"""Observability overhead benchmark: what does telemetry cost?

Three questions, answered with numbers in ``BENCH_obs.json``:

1. **What does a disabled hook cost?**  Every instrumented call site
   pays one ``active_registry() is None`` / ``active_tracer() is None``
   check when telemetry is off.  The micro-benchmark times the no-op
   free functions (``inc``/``observe``/``trace_scope``) in a tight loop
   and, combined with the hook-call volume counted off an enabled run,
   estimates the disabled-path tax on a real pipeline: the acceptance
   target is **< 0.5% of end-to-end wall-clock**.

2. **What does enabled telemetry cost?**  The same pipeline config is
   run with telemetry off and on (ambient ``telemetry_scope``),
   interleaved to share thermal/cache conditions, and the median
   wall-clocks compared.  The acceptance target is **< 3% overhead**:
   instrumentation sits at epoch/batch-group granularity, never inside
   the vectorised scoring kernels.

3. **What does tracing cost the serving hot path?**  A micro-batched
   :class:`PredictionServer` answers the same request stream with and
   without an installed :class:`Tracer` (the daemon's configuration);
   the delta prices the per-group span records.  Recorded, not
   asserted — single-process asyncio timings at millisecond scale are
   too noisy for a hard gate.

Results go to ``BENCH_obs.json`` at the repository root (see
``benchmarks/README.md`` for the schema).

Run modes:

* ``pytest benchmarks/bench_obs_overhead.py`` — full scale; asserts the
  enabled < 3% and disabled < 0.5% pipeline targets.
* ``REPRO_BENCH_FAST=1`` or ``run_benchmark(fast=True)`` — toy scale for
  smoke runs (wired into the tier-1 suite); targets are recorded but
  not asserted (a toy pipeline is too short to average out noise).
* ``python benchmarks/bench_obs_overhead.py`` — full scale, prints the
  table.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.obs import registry as obs_registry
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer, install_tracer, telemetry_scope, trace_scope
from repro.pipeline.config import (
    DatasetSection,
    ModelSection,
    RunConfig,
    TrainingSection,
)
from repro.pipeline.runner import run_pipeline
from repro.serving import LinkPredictor, PredictionServer

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON_PATH = REPO_ROOT / "BENCH_obs.json"

#: Acceptance targets (full-scale run only): enabled telemetry may cost
#: at most 3% of pipeline wall-clock, the disabled no-op hooks at most
#: 0.5%.
ENABLED_TARGET_PCT = 3.0
DISABLED_TARGET_PCT = 0.5


def _run_config(fast: bool) -> RunConfig:
    if fast:
        dataset = {"num_entities": 120, "num_clusters": 6, "seed": 3}
        total_dim, epochs = 8, 2
    else:
        # Long enough that the fixed enabled-mode costs (one
        # telemetry.jsonl write, tracer setup) amortise against real
        # training work — the target gates the steady-state tax, not a
        # constant, and production runs train for minutes.
        dataset = {"num_entities": 800, "num_clusters": 20, "seed": 3}
        total_dim, epochs = 64, 40
    return RunConfig(
        dataset=DatasetSection(generator="synthetic_wn18", params=dataset),
        model=ModelSection(name="complex", total_dim=total_dim),
        training=TrainingSection(epochs=epochs, batch_size=256),
    )


# ------------------------------------------------------------ micro-bench
def _ns_per_call(fn, loops: int) -> float:
    start = time.perf_counter()
    for _ in range(loops):
        fn()
    return (time.perf_counter() - start) * 1e9 / loops


def _bench_noop_hooks(fast: bool) -> dict:
    """Cost of the telemetry call sites while telemetry is *off*."""
    assert obs_registry.active_registry() is None, "benchmark needs a clean slate"
    loops = 20_000 if fast else 200_000

    def traced_pass():
        with trace_scope("noop"):
            pass

    ns_inc = _ns_per_call(lambda: obs_registry.inc("x"), loops)
    ns_observe = _ns_per_call(lambda: obs_registry.observe("y", 0.001), loops)
    ns_scope = _ns_per_call(traced_pass, loops)

    registry = MetricsRegistry()
    with obs_registry.metrics_scope(registry):
        ns_inc_live = _ns_per_call(lambda: obs_registry.inc("x"), loops)
        ns_observe_live = _ns_per_call(lambda: obs_registry.observe("y", 0.001), loops)
    return {
        "loops": loops,
        "noop_inc_ns": ns_inc,
        "noop_observe_ns": ns_observe,
        "noop_trace_scope_ns": ns_scope,
        "live_inc_ns": ns_inc_live,
        "live_observe_ns": ns_observe_live,
    }


# ------------------------------------------------------- pipeline overhead
def _hook_call_volume(registry: MetricsRegistry, tracer: Tracer) -> int:
    """Rough number of telemetry calls an enabled run performed."""
    snap = registry.snapshot()
    counter_incs = len(snap.counters)  # bulk incs count as one call each
    observes = sum(h.count for h in snap.histograms.values())
    gauge_sets = len(snap.gauges)
    spans = len(tracer.spans()) + tracer.dropped
    return counter_incs + observes + gauge_sets + spans


def _bench_pipeline_overhead(fast: bool, run_root: Path) -> dict:
    config = _run_config(fast)
    repeats = 2 if fast else 5
    off_timings: list[float] = []
    on_timings: list[float] = []
    hook_calls = 0
    for repeat in range(repeats):
        # Interleave off/on so both modes share warm-up and drift.
        start = time.perf_counter()
        run_pipeline(config, run_dir=run_root / f"off_{repeat}")
        off_timings.append(time.perf_counter() - start)

        registry, tracer = MetricsRegistry(), Tracer()
        with telemetry_scope(registry, tracer):
            start = time.perf_counter()
            run_pipeline(config, run_dir=run_root / f"on_{repeat}")
            on_timings.append(time.perf_counter() - start)
        hook_calls = max(hook_calls, _hook_call_volume(registry, tracer))

    off_median = sorted(off_timings)[len(off_timings) // 2]
    on_median = sorted(on_timings)[len(on_timings) // 2]
    enabled_pct = 100.0 * max(0.0, on_median - off_median) / off_median
    return {
        "repeats": repeats,
        "epochs": config.training.epochs,
        "disabled_seconds": off_median,
        "enabled_seconds": on_median,
        "enabled_overhead_pct": enabled_pct,
        "enabled_target_pct": ENABLED_TARGET_PCT,
        "hook_calls": hook_calls,
        "disabled_target_pct": DISABLED_TARGET_PCT,
    }


def _estimate_disabled_pct(pipeline: dict, hooks: dict) -> float:
    """Disabled-path tax: hook volume x no-op cost over the wall-clock."""
    worst_ns = max(
        hooks["noop_inc_ns"], hooks["noop_observe_ns"], hooks["noop_trace_scope_ns"]
    )
    tax_seconds = pipeline["hook_calls"] * worst_ns / 1e9
    return 100.0 * tax_seconds / pipeline["disabled_seconds"]


# -------------------------------------------------------- serving overhead
def _bench_serving_overhead(fast: bool) -> dict:
    dataset = generate_synthetic_kg(
        SyntheticKGConfig(
            num_entities=150 if fast else 400, num_clusters=10, seed=9
        )
    )
    model = make_complex(
        dataset.num_entities,
        dataset.num_relations,
        8 if fast else 32,
        np.random.default_rng(4),
    )
    requests = 64 if fast else 512
    heads = [h % dataset.num_entities for h in range(requests)]

    async def timed(traced: bool) -> float:
        previous = install_tracer(Tracer() if traced else None)
        try:
            server = PredictionServer(
                LinkPredictor(model, dataset), max_batch=32, max_wait_ms=0.5
            )
            async with server:
                start = time.perf_counter()
                for chunk in range(0, len(heads), 32):
                    await asyncio.gather(*[
                        server.top_k_tails(h, 0, k=5)
                        for h in heads[chunk : chunk + 32]
                    ])
                return time.perf_counter() - start
        finally:
            install_tracer(previous)

    # Warm both paths once (fold caches, allocator), then measure.
    asyncio.run(timed(False))
    plain = asyncio.run(timed(False))
    traced = asyncio.run(timed(True))
    return {
        "requests": requests,
        "plain_seconds": plain,
        "traced_seconds": traced,
        "traced_overhead_pct": 100.0 * max(0.0, traced - plain) / plain,
    }


def run_benchmark(
    fast: bool = False, json_path: Path | str | None = DEFAULT_JSON_PATH
) -> dict:
    """Run the benchmark; returns (and optionally writes) the results dict."""
    hooks = _bench_noop_hooks(fast)
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "benchmarks") as scratch:
        pipeline = _bench_pipeline_overhead(fast, Path(scratch))
    pipeline["disabled_overhead_pct"] = _estimate_disabled_pct(pipeline, hooks)
    results = {
        "config": {
            "fast": fast,
            "cpu_count": os.cpu_count(),
            "enabled_target_pct": ENABLED_TARGET_PCT,
            "disabled_target_pct": DISABLED_TARGET_PCT,
        },
        "noop_hooks": hooks,
        "pipeline": pipeline,
        "serving": _bench_serving_overhead(fast),
    }
    if json_path is not None:
        Path(json_path).write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return results


def format_results(results: dict) -> str:
    """Human-readable summary of one :func:`run_benchmark` result."""
    hooks = results["noop_hooks"]
    pipeline = results["pipeline"]
    serving = results["serving"]
    return "\n".join([
        f"Observability benchmark ({results['config']['cpu_count']} cores)",
        (
            f"no-op hooks: inc {hooks['noop_inc_ns']:.0f} ns, "
            f"observe {hooks['noop_observe_ns']:.0f} ns, "
            f"trace_scope {hooks['noop_trace_scope_ns']:.0f} ns "
            f"(live inc {hooks['live_inc_ns']:.0f} ns)"
        ),
        (
            f"pipeline ({pipeline['epochs']} epochs, median of "
            f"{pipeline['repeats']}): off {pipeline['disabled_seconds']:.3f}s, "
            f"on {pipeline['enabled_seconds']:.3f}s -> "
            f"{pipeline['enabled_overhead_pct']:.2f}% enabled overhead "
            f"(target < {pipeline['enabled_target_pct']:.1f}%)"
        ),
        (
            f"disabled-path tax: {pipeline['hook_calls']} hook calls -> "
            f"{pipeline['disabled_overhead_pct']:.4f}% of wall-clock "
            f"(target < {pipeline['disabled_target_pct']:.1f}%)"
        ),
        (
            f"serving ({serving['requests']} requests): plain "
            f"{serving['plain_seconds']:.3f}s, traced "
            f"{serving['traced_seconds']:.3f}s -> "
            f"{serving['traced_overhead_pct']:.2f}% (recorded, not asserted)"
        ),
    ])


@pytest.mark.slow
@pytest.mark.obs
def test_obs_overhead_benchmark():
    """Full-scale run: enabled < 3% and disabled < 0.5% of wall-clock."""
    results = run_benchmark(fast=bool(os.environ.get("REPRO_BENCH_FAST")))
    print("\n" + format_results(results) + "\n")
    pipeline = results["pipeline"]
    assert pipeline["hook_calls"] > 0
    if results["config"]["fast"]:
        pytest.skip("overhead targets apply to the full-scale run only")
    assert pipeline["enabled_overhead_pct"] < ENABLED_TARGET_PCT, (
        f"enabled telemetry cost {pipeline['enabled_overhead_pct']:.2f}% "
        f"of the pipeline; target < {ENABLED_TARGET_PCT}%"
    )
    assert pipeline["disabled_overhead_pct"] < DISABLED_TARGET_PCT, (
        f"disabled hooks cost {pipeline['disabled_overhead_pct']:.4f}% "
        f"of the pipeline; target < {DISABLED_TARGET_PCT}%"
    )


if __name__ == "__main__":
    print(format_results(run_benchmark(fast="--fast" in sys.argv)))
