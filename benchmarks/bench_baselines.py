"""Baseline table: the paper's §2 model categories on one dataset.

Not a numbered table in the paper, but §2 motivates the focus on
trilinear models by contrasting the three categories; this bench makes
that comparison concrete: translation-based (TransE), bilinear
full-matrix (RESCAL), neural (ER-MLP), and the trilinear family's best
(ComplEx).
"""

from __future__ import annotations

from repro.baselines import ERMLP, RESCAL, TransE
from repro.core.models import make_complex
from repro.experiments import format_table, run_experiment_row, seeded_rng
from benchmarks.conftest import is_fast, publish_table


def run_baselines(dataset, settings):
    rows = []
    complex_model = make_complex(
        dataset.num_entities, dataset.num_relations, settings.total_dim,
        seeded_rng(settings, 300), regularization=settings.regularization,
    )
    rows.append(run_experiment_row(complex_model, dataset, settings,
                                   label="ComplEx (trilinear)"))

    transe = TransE(dataset.num_entities, dataset.num_relations,
                    settings.total_dim, seeded_rng(settings, 301))
    rows.append(run_experiment_row(transe, dataset, settings,
                                   label="TransE (translation)"))

    rescal = RESCAL(dataset.num_entities, dataset.num_relations,
                    settings.total_dim // 2, seeded_rng(settings, 302),
                    regularization=settings.regularization)
    rows.append(run_experiment_row(rescal, dataset, settings,
                                   label="RESCAL (bilinear)"))

    # ER-MLP's 1-vs-all scoring is O(entities) forward passes per query;
    # train it with a shorter schedule to keep the bench tractable.
    mlp_settings = type(settings)(
        dataset_config=settings.dataset_config,
        total_dim=settings.total_dim,
        epochs=min(settings.epochs, 60),
        batch_size=settings.batch_size,
        learning_rate=0.01,
        regularization=0.0,
        validate_every=10_000,
        patience=10_000,
        seed=settings.seed,
    )
    er_mlp = ERMLP(dataset.num_entities, dataset.num_relations,
                   settings.total_dim // 2, seeded_rng(settings, 303))
    rows.append(run_experiment_row(er_mlp, dataset, mlp_settings,
                                   label="ER-MLP (neural)"))
    return rows


def test_baseline_categories(benchmark, dataset, settings):
    rows = benchmark.pedantic(
        run_baselines, args=(dataset, settings), rounds=1, iterations=1
    )
    table = format_table(
        f"Baseline categories (paper section 2) on {dataset.name}", rows
    )
    publish_table("baselines", table)

    if is_fast():
        return  # smoke mode: tables only, shape assertions need full training

    by_label = {row.label.split(" ")[0]: row.test_metrics.mrr for row in rows}
    # §2's motivation: the trilinear family leads on this kind of data.
    assert by_label["ComplEx"] >= by_label["TransE"]
    assert by_label["ComplEx"] >= by_label["ER-MLP"]
