"""Serving-path latency and throughput micro-benchmarks.

A production link-prediction service answers "top-k tails of (h, ?, r)"
requests at interactive latency under heavy traffic.  These benchmarks
measure the :class:`~repro.serving.predictor.LinkPredictor` request
path under the regimes that matter for capacity planning:

* **cold**     — every request pays a full 1-vs-all sweep,
* **cached**   — a skewed workload re-requests warm (entity, relation)
  keys and is served from the LRU score cache,
* **batched**  — many queries amortise one sweep call,
* **candidate-restricted** — a recommender-style request scores an
  explicit shortlist via the models' ``score_candidates`` fast paths.

Run directly (``pytest benchmarks/bench_serving_latency.py``); the
timing *assertions* are marked ``slow`` so ``-m "not slow"`` keeps
smoke runs fast.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.models import make_complex, make_quaternion
from repro.serving import LinkPredictor

NUM_ENTITIES, NUM_RELATIONS, BUDGET = 2000, 20, 64
BATCH, TOP_K, SHORTLIST = 256, 10, 32


def _model(maker=make_complex):
    return maker(NUM_ENTITIES, NUM_RELATIONS, BUDGET, np.random.default_rng(1))


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(0)
    heads = rng.integers(0, NUM_ENTITIES, BATCH)
    rels = rng.integers(0, NUM_RELATIONS, BATCH)
    return heads, rels


def test_topk_latency_cold(benchmark, queries):
    """Single-query top-k with no cache: the worst-case request."""
    heads, rels = queries
    predictor = LinkPredictor(_model(), cache_size=0)
    result = benchmark(lambda: predictor.top_k_tails(heads[:1], rels[:1], k=TOP_K))
    assert result.ids.shape == (1, TOP_K)


def test_topk_latency_cached(benchmark, queries):
    """Single-query top-k served from a warm LRU cache."""
    heads, rels = queries
    predictor = LinkPredictor(_model())
    predictor.warm_cache(heads[:1], rels[:1])
    result = benchmark(lambda: predictor.top_k_tails(heads[:1], rels[:1], k=TOP_K))
    assert result.ids.shape == (1, TOP_K)
    assert predictor.cache_stats.hits > 0


def test_topk_batched_throughput(benchmark, queries):
    """A full batch of queries through one folded, chunked sweep."""
    heads, rels = queries
    predictor = LinkPredictor(_model(), cache_size=0)
    result = benchmark(lambda: predictor.top_k_tails(heads, rels, k=TOP_K))
    assert result.ids.shape == (BATCH, TOP_K)


def test_topk_candidate_shortlist(benchmark, queries):
    """Recommender-style scoring of an explicit candidate shortlist."""
    heads, rels = queries
    rng = np.random.default_rng(2)
    shortlist = rng.integers(0, NUM_ENTITIES, (BATCH, SHORTLIST))
    predictor = LinkPredictor(_model(), cache_size=0)
    result = benchmark(
        lambda: predictor.top_k_tails(heads, rels, k=TOP_K, candidates=shortlist)
    )
    assert result.ids.shape == (BATCH, TOP_K)


def test_relation_prediction_latency(benchmark, queries):
    """Top-k relations for a batch of (h, t) pairs."""
    heads, rels = queries
    del rels
    rng = np.random.default_rng(3)
    tails = rng.integers(0, NUM_ENTITIES, 16)
    predictor = LinkPredictor(_model())
    result = benchmark(lambda: predictor.top_k_relations(heads[:16], tails, k=5))
    assert result.ids.shape == (16, 5)


@pytest.mark.slow
def test_cache_hits_are_cheaper_than_sweeps():
    """A warm skewed workload must beat the same workload uncached.

    Every request hits one of 8 hot (entity, relation) keys — the shape
    of real traffic.  A cache hit skips the sweep entirely (measured
    ~1.55x on this workload; top-k selection cost is shared), so the
    cached run must be at least 1.2x faster — parity means the cache
    stopped hitting.
    """
    model = _model(make_quaternion)
    rng = np.random.default_rng(5)
    hot_heads = rng.integers(0, NUM_ENTITIES, 8)
    hot_rels = rng.integers(0, NUM_RELATIONS, 8)
    picks = rng.integers(0, 8, 512)
    heads, rels = hot_heads[picks], hot_rels[picks]

    def run(predictor) -> float:
        predictor.top_k_tails(heads[:8], rels[:8], k=TOP_K)  # warm / JIT caches
        start = time.perf_counter()
        for row in range(0, len(heads), 4):
            predictor.top_k_tails(heads[row : row + 4], rels[row : row + 4], k=TOP_K)
        return time.perf_counter() - start

    cold = run(LinkPredictor(model, cache_size=0))
    warm = run(LinkPredictor(model, cache_size=64))
    assert warm * 1.2 < cold, f"cached serving not faster: warm={warm:.4f}s cold={cold:.4f}s"
