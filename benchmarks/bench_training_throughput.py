"""Training-throughput benchmark: compiled ω kernels vs the dense oracle.

For every model class (DistMult, ComplEx, CP, CPh, quaternion, learned-ω)
this bench times ``train_step`` on the synthetic FB15k-flavoured dataset
twice — once through the compiled-kernel fused hot path (the default
engine) and once through the dense-einsum reference engine
(``use_compiled_kernel=False``, the pre-kernel implementation kept as the
correctness oracle) — and verifies that one step of each engine from the
same initialisation produces identical scores and parameters to 1e-10.

Results go to ``BENCH_training.json`` at the repository root (see
``benchmarks/README.md`` for the schema).  Run modes:

* ``pytest benchmarks/bench_training_throughput.py`` — full scale; asserts
  the ≥3x speedup target on the quaternion and CPh configs.
* ``REPRO_BENCH_FAST=1`` or ``run_benchmark(fast=True)`` — toy scale for
  smoke runs (also wired into the tier-1 suite); no throughput
  assertions, equivalence is still checked.
* ``python benchmarks/bench_training_throughput.py`` — full scale, prints
  the table.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.models import (
    make_complex,
    make_cp,
    make_cph,
    make_distmult,
    make_learned_weight_model,
    make_quaternion,
)
from repro.kg.synthetic_fb import SyntheticFBConfig, generate_synthetic_fb15k
from repro.nn.optimizers import make_optimizer
from repro.training.negatives import UniformNegativeSampler

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON_PATH = REPO_ROOT / "BENCH_training.json"

#: Model classes benchmarked, with their factory functions.
MODEL_BUILDERS = {
    "distmult": make_distmult,
    "complex": make_complex,
    "cp": make_cp,
    "cph": make_cph,
    "quaternion": make_quaternion,
    "learned": make_learned_weight_model,
}

#: The acceptance target: fused kernel step ≥ 3x the dense reference on
#: these configs.
SPEEDUP_TARGET = 3.0
SPEEDUP_TARGET_MODELS = ("quaternion", "cph")

#: Full scale follows the paper's setup: the default synthetic-FB15k
#: entity count, parameter budget 400 (§5.3) and a 2^12 batch from the
#: paper's batch-size grid.
FULL_SCALE = dict(
    num_entities=1200, total_dim=400, batch_size=4096, warmup=2, repeats=9
)
FAST_SCALE = dict(num_entities=200, total_dim=32, batch_size=64, warmup=1, repeats=3)


def _build_pair(name: str, num_entities: int, num_relations: int, total_dim: int):
    """The same model twice from one seed: kernel engine and dense oracle."""
    builder = MODEL_BUILDERS[name]
    kernel_model = builder(
        num_entities, num_relations, total_dim, np.random.default_rng(17)
    )
    dense_model = builder(
        num_entities,
        num_relations,
        total_dim,
        np.random.default_rng(17),
        use_compiled_kernel=False,
    )
    return kernel_model, dense_model


def _sample_batch(dataset, batch_size: int, seed: int):
    """A fixed positive batch from the train split plus uniform negatives."""
    rng = np.random.default_rng(seed)
    train = dataset.train.array
    rows = rng.integers(0, len(train), size=min(batch_size, len(train)))
    positives = train[rows]
    sampler = UniformNegativeSampler(dataset.num_entities, num_negatives=1)
    negatives = sampler.corrupt(positives, rng)
    return positives, negatives


def _median_step_seconds(model, positives, negatives, warmup: int, repeats: int) -> float:
    optimizer = make_optimizer("adam", 1e-3)
    for _ in range(warmup):
        model.train_step(positives, negatives, optimizer)
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        model.train_step(positives, negatives, optimizer)
        timings.append(time.perf_counter() - start)
    return float(np.median(timings))


def _equivalence_deltas(name: str, num_entities: int, num_relations: int,
                        total_dim: int, positives, negatives) -> dict:
    """Max |kernel − dense| after identical steps from identical inits."""
    kernel_model, dense_model = _build_pair(name, num_entities, num_relations, total_dim)
    kernel_opt = make_optimizer("adam", 1e-3)
    dense_opt = make_optimizer("adam", 1e-3)
    score_delta = float(
        np.max(
            np.abs(
                kernel_model.score_triples(positives[:, 0], positives[:, 1], positives[:, 2])
                - dense_model.score_triples(positives[:, 0], positives[:, 1], positives[:, 2])
            )
        )
    )
    loss_delta = 0.0
    for _ in range(2):
        loss_kernel = kernel_model.train_step(positives, negatives, kernel_opt)
        loss_dense = dense_model.train_step(positives, negatives, dense_opt)
        loss_delta = max(loss_delta, abs(loss_kernel - loss_dense))
    param_delta = max(
        float(np.max(np.abs(kernel_model.entity_embeddings - dense_model.entity_embeddings))),
        float(np.max(np.abs(kernel_model.relation_embeddings - dense_model.relation_embeddings))),
    )
    return {
        "max_score_delta": score_delta,
        "max_loss_delta": float(loss_delta),
        "max_param_delta_after_2_steps": param_delta,
    }


def run_benchmark(fast: bool = False, json_path: Path | str | None = DEFAULT_JSON_PATH) -> dict:
    """Time every model class on both engines; optionally write the JSON."""
    scale = FAST_SCALE if fast else FULL_SCALE
    dataset = generate_synthetic_fb15k(
        SyntheticFBConfig(num_entities=scale["num_entities"], seed=3)
    )
    positives, negatives = _sample_batch(dataset, scale["batch_size"], seed=11)
    triples_per_step = len(positives) + len(negatives)

    models = {}
    for name in MODEL_BUILDERS:
        kernel_model, dense_model = _build_pair(
            name, dataset.num_entities, dataset.num_relations, scale["total_dim"]
        )
        kernel_seconds = _median_step_seconds(
            kernel_model, positives, negatives, scale["warmup"], scale["repeats"]
        )
        dense_seconds = _median_step_seconds(
            dense_model, positives, negatives, scale["warmup"], scale["repeats"]
        )
        models[name] = {
            "kernel_mode": kernel_model.kernel.mode,
            "omega_density": kernel_model.kernel.density,
            "kernel_triples_per_sec": triples_per_step / kernel_seconds,
            "dense_triples_per_sec": triples_per_step / dense_seconds,
            "speedup": dense_seconds / kernel_seconds,
            **_equivalence_deltas(
                name,
                dataset.num_entities,
                dataset.num_relations,
                scale["total_dim"],
                positives,
                negatives,
            ),
        }

    results = {
        "benchmark": "train_step throughput, compiled kernel vs dense-einsum reference",
        "dataset": {
            "name": dataset.name,
            "num_entities": dataset.num_entities,
            "num_relations": dataset.num_relations,
            "num_train_triples": len(dataset.train),
        },
        "config": {
            "fast": fast,
            "total_dim": scale["total_dim"],
            "batch_size": len(positives),
            "triples_per_step": triples_per_step,
            "optimizer": "adam",
            "speedup_target": SPEEDUP_TARGET,
            "speedup_target_models": list(SPEEDUP_TARGET_MODELS),
        },
        "models": models,
    }
    if json_path is not None:
        Path(json_path).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    return results


def format_results(results: dict) -> str:
    """Human-readable table of the JSON payload."""
    lines = [
        f"train_step throughput on {results['dataset']['name']} "
        f"(batch {results['config']['batch_size']}, total_dim {results['config']['total_dim']})",
        f"{'model':<12} {'mode':<7} {'kernel tr/s':>12} {'dense tr/s':>12} "
        f"{'speedup':>8} {'max |Δparam|':>13}",
    ]
    for name, row in results["models"].items():
        lines.append(
            f"{name:<12} {row['kernel_mode']:<7} {row['kernel_triples_per_sec']:>12,.0f} "
            f"{row['dense_triples_per_sec']:>12,.0f} {row['speedup']:>7.2f}x "
            f"{row['max_param_delta_after_2_steps']:>13.2e}"
        )
    return "\n".join(lines)


@pytest.mark.slow
def test_training_throughput():
    from benchmarks.conftest import is_fast, publish_table

    results = run_benchmark(fast=is_fast())
    publish_table("training_throughput", format_results(results))

    for row in results["models"].values():
        assert row["max_score_delta"] < 1e-10
        assert row["max_param_delta_after_2_steps"] < 1e-10
    if is_fast():
        return  # smoke mode: equivalence only, no timing assertions
    for name in SPEEDUP_TARGET_MODELS:
        assert results["models"][name]["speedup"] >= SPEEDUP_TARGET, (
            f"{name}: fused kernel step only "
            f"{results['models'][name]['speedup']:.2f}x the dense baseline"
        )


if __name__ == "__main__":
    fast_flag = "--fast" in sys.argv
    print(format_results(run_benchmark(fast=fast_flag)))
    print(f"\nwrote {DEFAULT_JSON_PATH}")
