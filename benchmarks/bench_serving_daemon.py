"""Serving-daemon benchmark: micro-batched vs request-at-a-time QPS.

Drives the asyncio :class:`~repro.serving.server.PredictionServer` with
an **open-loop Poisson** request stream (arrivals scheduled from an
exponential clock, independent of completions — the load a daemon
actually faces) and compares two configurations of the same server:

* **serial** — ``max_batch=1, max_wait_ms=0``: request-at-a-time, one
  scoring call and one thread hop per request;
* **batched** — ``max_batch=64, max_wait_ms=2``: the micro-batcher
  coalesces concurrent requests into one ``LinkPredictor`` call per
  ``(side, filtered, k-bucket)`` group.

Both are offered the *same* arrival sequence at a rate well above the
serial server's measured closed-loop capacity, so the serial run
saturates (queueing latency grows) while the batcher amortises the
per-call overhead — the thread hop, version sync, einsum setup, and
top-k selection — across every coalesced request.  Latency is measured
open-loop (completion minus *scheduled* arrival), which correctly
charges queueing delay to the saturated server.

Scoring latency is weight-agnostic (the same matmuls run whatever the
values), so the bench scores an untrained model rather than paying for
training it.  Both modes must return identical ids for every request —
coalescing is a latency optimisation, not an approximation — and the
payload records that check.

Results go to ``BENCH_serving.json`` at the repository root (schema in
``benchmarks/README.md``).  Acceptance — asserted by the slow full run
and, with relaxed thresholds, by the tier-1 smoke run — is the issue's
headline claim: micro-batching sustains **≥ 3x** the request-at-a-time
QPS while holding p99 latency under a fixed bound.

Run modes mirror the other benches:

* ``pytest benchmarks/bench_serving_daemon.py`` — full scale (slow);
* ``python benchmarks/bench_serving_daemon.py [--fast]`` — prints the
  comparison table and writes the JSON.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.models import make_complex
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.serving import LinkPredictor, PredictionServer

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON_PATH = REPO_ROOT / "BENCH_serving.json"

#: Acceptance targets.  The full run must hit the issue's ≥3x claim at a
#: bounded p99; the tier-1 smoke run (smaller graph, fewer requests, a
#: noisy shared CI core) asserts the same shape with relaxed thresholds.
QPS_RATIO_TARGET = 3.0
P99_BOUND_MS = 75.0
SMOKE_QPS_RATIO_TARGET = 2.0
SMOKE_P99_BOUND_MS = 250.0

#: Offered rate as a multiple of the serial server's measured capacity:
#: high enough to saturate request-at-a-time serving, low enough that
#: the batched server keeps up (its capacity, not the generator, should
#: be what bounds the measured ratio).
OFFERED_MULTIPLIER = 5.0

FULL_SCALE = dict(
    scale=2.0, total_dim=16, requests=800, k=10,
    max_batch=64, max_wait_ms=2.0,
    ratio_target=QPS_RATIO_TARGET, p99_bound_ms=P99_BOUND_MS,
)
FAST_SCALE = dict(
    scale=1.0, total_dim=16, requests=300, k=10,
    max_batch=64, max_wait_ms=2.0,
    ratio_target=SMOKE_QPS_RATIO_TARGET, p99_bound_ms=SMOKE_P99_BOUND_MS,
)

#: Closed-loop requests used to estimate the serial server's capacity.
CAPACITY_PROBE_REQUESTS = 40


async def _drive_open_loop(
    server: PredictionServer,
    anchors: np.ndarray,
    relations: np.ndarray,
    k: int,
    offered_qps: float,
    seed: int = 0,
) -> dict:
    """Offer a Poisson stream and collect per-request open-loop latency."""
    arrivals = np.cumsum(
        np.random.default_rng(seed).exponential(1.0 / offered_qps, len(anchors))
    )
    latencies_ms = np.empty(len(anchors), dtype=np.float64)
    ids: list[np.ndarray] = [None] * len(anchors)
    coalesced = np.empty(len(anchors), dtype=np.int64)
    start = time.perf_counter()

    async def one(i: int) -> None:
        target = start + arrivals[i]
        delay = target - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        result = await server.top_k_tails(int(anchors[i]), int(relations[i]), k=k)
        latencies_ms[i] = (time.perf_counter() - target) * 1000.0
        ids[i] = result.ids
        coalesced[i] = result.coalesced

    await asyncio.gather(*[one(i) for i in range(len(anchors))])
    span = time.perf_counter() - start
    return {
        "qps": len(anchors) / span,
        "p50_ms": float(np.percentile(latencies_ms, 50)),
        "p99_ms": float(np.percentile(latencies_ms, 99)),
        "mean_latency_ms": float(latencies_ms.mean()),
        "mean_coalesced": float(coalesced.mean()),
        "max_coalesced": int(coalesced.max()),
        "served": len(anchors),
        "span_seconds": span,
        "_ids": ids,
    }


async def _run_modes(model, dataset, scale_config: dict, seed: int) -> dict:
    num = scale_config["requests"]
    heads = dataset.test.heads[np.arange(num) % len(dataset.test)]
    relations = dataset.test.relations[np.arange(num) % len(dataset.test)]
    k = scale_config["k"]

    serial = PredictionServer(
        LinkPredictor(model, dataset, cache_size=0),
        max_batch=1, max_wait_ms=0.0, queue_depth=max(2 * num, 1024),
    )
    async with serial:
        started = time.perf_counter()
        for i in range(CAPACITY_PROBE_REQUESTS):
            await serial.top_k_tails(int(heads[i]), int(relations[i]), k=k)
        capacity = CAPACITY_PROBE_REQUESTS / (time.perf_counter() - started)
        offered = OFFERED_MULTIPLIER * capacity
        serial_stats = await _drive_open_loop(
            serial, heads, relations, k, offered, seed=seed
        )

    batched = PredictionServer(
        LinkPredictor(model, dataset, cache_size=0),
        max_batch=scale_config["max_batch"],
        max_wait_ms=scale_config["max_wait_ms"],
        queue_depth=max(2 * num, 1024),
    )
    async with batched:
        await batched.top_k_tails(int(heads[0]), int(relations[0]), k=k)  # warm
        batched_stats = await _drive_open_loop(
            batched, heads, relations, k, offered, seed=seed
        )

    identical = all(
        np.array_equal(a, b)
        for a, b in zip(serial_stats.pop("_ids"), batched_stats.pop("_ids"))
    )
    return {
        "serial_capacity_qps": capacity,
        "offered_qps": offered,
        "serial": serial_stats,
        "batched": batched_stats,
        "results_identical": identical,
    }


def run_benchmark(fast: bool = False, json_path: Path | str | None = DEFAULT_JSON_PATH) -> dict:
    """Measure serial vs micro-batched serving under the same Poisson load."""
    scale_config = FAST_SCALE if fast else FULL_SCALE
    dataset = generate_synthetic_kg(SyntheticKGConfig(seed=3, scale=scale_config["scale"]))
    model = make_complex(
        dataset.num_entities,
        dataset.num_relations,
        scale_config["total_dim"],
        np.random.default_rng(7),
    )
    measured = asyncio.run(_run_modes(model, dataset, scale_config, seed=11))

    ratio = measured["batched"]["qps"] / measured["serial"]["qps"]
    p99_ok = measured["batched"]["p99_ms"] <= scale_config["p99_bound_ms"]
    results = {
        "benchmark": "micro-batched serving daemon QPS vs request-at-a-time",
        "dataset": {
            "name": dataset.name,
            "scale": scale_config["scale"],
            "num_entities": dataset.num_entities,
            "num_relations": dataset.num_relations,
        },
        "config": {
            "fast": fast,
            "model": "complex",
            "total_dim": scale_config["total_dim"],
            "requests": scale_config["requests"],
            "top_k": scale_config["k"],
            "max_batch": scale_config["max_batch"],
            "max_wait_ms": scale_config["max_wait_ms"],
            "offered_multiplier": OFFERED_MULTIPLIER,
            "serial_capacity_qps": measured["serial_capacity_qps"],
            "offered_qps": measured["offered_qps"],
            "ratio_target": scale_config["ratio_target"],
            "p99_bound_ms": scale_config["p99_bound_ms"],
        },
        "serial": measured["serial"],
        "batched": measured["batched"],
        "acceptance": {
            "qps_ratio": ratio,
            "p99_within_bound": p99_ok,
            "results_identical": measured["results_identical"],
            "achieved": (
                ratio >= scale_config["ratio_target"]
                and p99_ok
                and measured["results_identical"]
            ),
        },
    }
    if json_path is not None:
        Path(json_path).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    return results


def format_results(results: dict) -> str:
    """Human-readable comparison table of the JSON payload."""
    dataset = results["dataset"]
    config = results["config"]
    acceptance = results["acceptance"]
    lines = [
        f"Serving daemon on {dataset['name']} "
        f"(N={dataset['num_entities']:,}, {config['requests']} requests, "
        f"offered {config['offered_qps']:.0f}/s = "
        f"{config['offered_multiplier']:.0f}x serial capacity)",
        f"{'mode':>8} {'qps':>8} {'p50':>9} {'p99':>9} {'coalesced':>10}",
    ]
    for mode in ("serial", "batched"):
        stats = results[mode]
        lines.append(
            f"{mode:>8} {stats['qps']:>8.0f} {stats['p50_ms']:>7.1f}ms "
            f"{stats['p99_ms']:>7.1f}ms {stats['mean_coalesced']:>10.1f}"
        )
    verdict = "met" if acceptance["achieved"] else "NOT met"
    lines.append(
        f"target {verdict}: {acceptance['qps_ratio']:.2f}x QPS "
        f"(target >= {config['ratio_target']:.1f}x), batched p99 "
        f"{results['batched']['p99_ms']:.1f}ms "
        f"(bound {config['p99_bound_ms']:.0f}ms), results identical: "
        f"{acceptance['results_identical']}"
    )
    return "\n".join(lines)


@pytest.mark.slow
@pytest.mark.serving_daemon
def test_serving_daemon_throughput():
    from benchmarks.conftest import is_fast, publish_table

    results = run_benchmark(fast=is_fast())
    publish_table("serving_daemon", format_results(results))
    assert results["acceptance"]["results_identical"], (
        "micro-batched answers diverged from request-at-a-time answers"
    )
    assert results["acceptance"]["achieved"], (
        f"micro-batching reached only "
        f"{results['acceptance']['qps_ratio']:.2f}x QPS (target "
        f"{results['config']['ratio_target']}x) or batched p99 "
        f"{results['batched']['p99_ms']:.1f}ms exceeded "
        f"{results['config']['p99_bound_ms']}ms"
    )


if __name__ == "__main__":
    fast_flag = "--fast" in sys.argv
    print(format_results(run_benchmark(fast=fast_flag)))
    print(f"\nwrote {DEFAULT_JSON_PATH}")
