"""Million-entity memory benchmark: mapped float32 + PQ-IVF vs float64 exact.

Trains a ComplEx model on a *scaled* synthetic graph (~1M entities at
full scale), then serves the same top-10 queries through two arms:

* **baseline** — the float64 model held privately in-process, answered
  by the exact full-sweep :class:`~repro.serving.LinkPredictor`; this is
  the paper's serving path and the memory/latency reference, and its
  answers are the recall ground truth.
* **mapped** — the checkpoint downcast to float32 (behind the
  score-equivalence gate) and saved in the memory-mapped store layout,
  per-relation folded candidate matrices materialized into a mapped
  :class:`~repro.core.memstore.MemStore`, and a product-quantized IVF
  index (ADC coarse pass, exact re-rank) persisted and reloaded in its
  memmap layout — every big table file-backed and shared, none private.

For each arm the bench records the tracked working set split into
private in-process bytes vs file-backed mapped bytes
(:func:`~repro.core.memstore.array_memory` over the model tables and
``IVFIndex.resident_arrays``), advisory ``RssAnon`` snapshots from
``/proc/self/status``, whole-batch wall time, and per-query p50/p90
latency.  Acceptance — asserted by the committed full-scale run *and*
the tier-1 smoke run — is **recall@10 ≥ 0.95** against the float64
exact answers with the private working set **≥ 5x smaller** than the
baseline's.

Results go to ``BENCH_memory.json`` at the repository root (schema in
``benchmarks/README.md``).  Run modes mirror the other benches:

* ``pytest benchmarks/bench_memory.py`` — full scale (slow);
* ``python benchmarks/bench_memory.py [--fast] [--scale X]`` — prints
  the comparison table and writes the JSON.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np
import pytest

from repro.core.memstore import MemStore, array_memory
from repro.core.models import make_complex
from repro.core.serialization import load_model, save_model
from repro.index.base import load_index
from repro.index.folded_vectors import FoldedCandidateSource
from repro.index.ivf import IVFIndex
from repro.index.pq import PQConfig
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.serving import LinkPredictor
from repro.training.trainer import Trainer, TrainingConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON_PATH = REPO_ROOT / "BENCH_memory.json"

#: Acceptance targets asserted by the smoke and slow tests.
RECALL_TARGET = 0.95
REDUCTION_TARGET = 5.0
TOP_K = 10

#: Full scale: 667x the paper-scale synthetic config — ~1.0M entities.
#: The embedding geometry only needs enough training for cluster
#: structure (the index's recall depends on it), not paper-grade MRR, so
#: a short hot-lr run suffices.  Fast scale (the tier-1 smoke run) is
#: the 4k-entity graph the index smoke also uses.
FULL_SCALE = dict(
    scale=667.0, total_dim=16, epochs=12, batch_size=8192, num_negatives=2,
    learning_rate=0.08, nlist=1024, nprobe=96, spill=2,
    pq_m=8, refine=256, pq_train_sample=200_000, kmeans_train_sample=200_000,
    relations=4, queries=256, latency_queries=64,
)
FAST_SCALE = dict(
    scale=8 / 3, total_dim=16, epochs=100, batch_size=2048, num_negatives=4,
    learning_rate=0.08, nlist=64, nprobe=12, spill=2,
    pq_m=8, refine=128, pq_train_sample=65_536, kmeans_train_sample=None,
    relations=4, queries=128, latency_queries=32,
)


def _build_trained_model(dataset, scale_config: dict):
    model = make_complex(
        dataset.num_entities,
        dataset.num_relations,
        scale_config["total_dim"],
        np.random.default_rng(7),
    )
    config = TrainingConfig(
        epochs=scale_config["epochs"],
        batch_size=scale_config["batch_size"],
        num_negatives=scale_config["num_negatives"],
        learning_rate=scale_config["learning_rate"],
        validate_every=10**9,
        patience=10**9,
        seed=13,
    )
    Trainer(dataset, config).train(model)
    return model


def _rss_anon_kb() -> int | None:
    """Private (anonymous) resident KB of this process; None off-Linux."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("RssAnon:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def _pick_queries(dataset, scale_config: dict):
    """Test queries restricted to the most frequent relations.

    The index is built per ``(relation, side)``; benchmarking the top
    few relations keeps the build proportional while still covering the
    bulk of real query traffic (relation frequency is heavy-tailed).
    """
    counts = np.bincount(dataset.test.relations, minlength=dataset.num_relations)
    top = np.sort(np.argsort(-counts)[: scale_config["relations"]])
    mask = np.isin(dataset.test.relations, top)
    heads = dataset.test.heads[mask][: scale_config["queries"]]
    relations = dataset.test.relations[mask][: scale_config["queries"]]
    return heads, relations, top


def _time_batch(fn, repeats: int = 3) -> float:
    fn()  # warm folds / partitions / caches
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return float(np.median(timings))


def _per_query_latency_ms(predict_one, heads, relations, count: int) -> dict:
    n = min(count, len(heads))
    predict_one(heads[:1], relations[:1])  # warm
    timings = []
    for i in range(n):
        start = time.perf_counter()
        predict_one(heads[i : i + 1], relations[i : i + 1])
        timings.append((time.perf_counter() - start) * 1000.0)
    return {
        "p50_ms": float(np.percentile(timings, 50)),
        "p90_ms": float(np.percentile(timings, 90)),
        "queries": n,
    }


def _model_arrays(model) -> list[np.ndarray]:
    return [model.entity_embeddings, model.relation_embeddings, np.asarray(model.omega)]


def _tree_bytes(*roots: Path) -> int:
    return sum(
        path.stat().st_size
        for root in roots
        for path in Path(root).rglob("*")
        if path.is_file()
    )


def run_benchmark(
    fast: bool = False,
    json_path: Path | str | None = DEFAULT_JSON_PATH,
    scale: float | None = None,
) -> dict:
    """Serve the same queries through both arms and compare the bills."""
    scale_config = dict(FAST_SCALE if fast else FULL_SCALE)
    if scale is not None:
        scale_config["scale"] = float(scale)

    started = time.perf_counter()
    dataset = generate_synthetic_kg(
        SyntheticKGConfig(seed=3, scale=scale_config["scale"])
    )
    generate_seconds = time.perf_counter() - started
    heads, relations, bench_relations = _pick_queries(dataset, scale_config)

    started = time.perf_counter()
    model = _build_trained_model(dataset, scale_config)
    train_seconds = time.perf_counter() - started

    # ------------------------------------------------- baseline: exact float64
    exact = LinkPredictor(model, dataset, cache_size=0)
    exact_batch_seconds = _time_batch(
        lambda: exact.top_k_tails(heads, relations, k=TOP_K)
    )
    exact_ids = exact.top_k_tails(heads, relations, k=TOP_K).ids
    baseline_latency = _per_query_latency_ms(
        lambda h, r: exact.top_k_tails(h, r, k=TOP_K),
        heads,
        relations,
        scale_config["latency_queries"],
    )
    base_private, base_mapped = array_memory(_model_arrays(model))
    baseline = {
        "storage": "float64 in-process, exact full sweep",
        "tracked_in_process_bytes": base_private,
        "tracked_mapped_bytes": base_mapped,
        "batch_seconds": exact_batch_seconds,
        "latency": baseline_latency,
        "rss_anon_kb": _rss_anon_kb(),
    }

    # --------------------------------------- write every mapped-scale artifact
    workdir = TemporaryDirectory(prefix="bench_memory_")
    root = Path(workdir.name)
    started = time.perf_counter()
    save_model(model, root / "ckpt", memmap=True, dtype="float32")
    mapped_model = load_model(root / "ckpt")
    ckpt_meta = json.loads((root / "ckpt" / "meta.json").read_text(encoding="utf-8"))

    fold_store = MemStore.create(root / "folds")
    FoldedCandidateSource(mapped_model, store=fold_store).materialize(
        relations=[int(r) for r in bench_relations], sides=("tail",), dtype="float32"
    )
    pq = PQConfig(
        m=scale_config["pq_m"],
        refine=scale_config["refine"],
        train_sample=scale_config["pq_train_sample"],
        seed=0,
    )
    builder = IVFIndex(
        mapped_model,
        nlist=scale_config["nlist"],
        nprobe=scale_config["nprobe"],
        spill=scale_config["spill"],
        seed=0,
        pq=pq,
        train_sample=scale_config["kmeans_train_sample"],
        fold_store=MemStore.open(root / "folds"),
    )
    builder.build(relations=bench_relations, sides=("tail",))
    builder.save(root / "index", memmap=True)
    build_seconds = time.perf_counter() - started
    artifact_bytes = _tree_bytes(root / "ckpt", root / "folds", root / "index")
    del builder, exact, model
    gc.collect()

    # ------------------------------------------- mapped: float32 + PQ-IVF serve
    index = load_index(
        root / "index", mapped_model, fold_store=MemStore.open(root / "folds")
    )
    predictor = LinkPredictor(mapped_model, dataset, cache_size=0, index=index)
    mapped_batch_seconds = _time_batch(
        lambda: predictor.top_k_tails(heads, relations, k=TOP_K)
    )
    mapped_ids = predictor.top_k_tails(heads, relations, k=TOP_K).ids
    mapped_latency = _per_query_latency_ms(
        lambda h, r: predictor.top_k_tails(h, r, k=TOP_K),
        heads,
        relations,
        scale_config["latency_queries"],
    )
    mapped_private, mapped_bytes = array_memory(
        _model_arrays(mapped_model) + index.resident_arrays()
    )
    mapped = {
        "storage": "float32 memmap checkpoint + materialized folds + PQ-IVF memmap",
        "tracked_in_process_bytes": mapped_private,
        "tracked_mapped_bytes": mapped_bytes,
        "artifact_bytes_on_disk": artifact_bytes,
        "checkpoint_dtype": ckpt_meta.get("dtype"),
        "score_equivalence_gap": ckpt_meta.get("score_equivalence_gap"),
        "batch_seconds": mapped_batch_seconds,
        "latency": mapped_latency,
        "rss_anon_kb": _rss_anon_kb(),
        "index_stats": predictor.index_stats_dict(),
    }

    recall = float(
        np.mean(
            [
                np.intersect1d(approx[approx >= 0], truth).size / TOP_K
                for approx, truth in zip(mapped_ids, exact_ids)
            ]
        )
    )
    reduction = (
        baseline["tracked_in_process_bytes"] / mapped["tracked_in_process_bytes"]
        if mapped["tracked_in_process_bytes"]
        else float("inf")
    )
    workdir.cleanup()

    results = {
        "benchmark": (
            "million-entity serving: memory-mapped float32 + PQ-IVF coarse pass "
            "vs float64 in-process exact"
        ),
        "dataset": {
            "name": dataset.name,
            "scale": scale_config["scale"],
            "num_entities": dataset.num_entities,
            "num_relations": dataset.num_relations,
            "num_train_triples": len(dataset.train),
            "generate_seconds": generate_seconds,
        },
        "config": {
            "fast": fast,
            "model": "complex",
            "total_dim": scale_config["total_dim"],
            "epochs": scale_config["epochs"],
            "learning_rate": scale_config["learning_rate"],
            "train_seconds": train_seconds,
            "artifact_build_seconds": build_seconds,
            "nlist": scale_config["nlist"],
            "nprobe": scale_config["nprobe"],
            "spill": scale_config["spill"],
            "pq": pq.to_dict(),
            "kmeans_train_sample": scale_config["kmeans_train_sample"],
            "bench_relations": [int(r) for r in bench_relations],
            "queries": int(len(heads)),
            "top_k": TOP_K,
            "recall_target": RECALL_TARGET,
            "reduction_target": REDUCTION_TARGET,
        },
        "baseline": baseline,
        "mapped": mapped,
        "recall_at_10": recall,
        "memory_reduction": reduction,
        "acceptance": {
            "achieved": recall >= RECALL_TARGET and reduction >= REDUCTION_TARGET,
            "recall_at_10": recall,
            "memory_reduction": reduction,
        },
    }
    if json_path is not None:
        Path(json_path).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    return results


def _fmt_bytes(count: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(count) < 1024 or unit == "GB":
            return f"{count:.1f}{unit}" if unit != "B" else f"{int(count)}B"
        count /= 1024
    return f"{count:.1f}GB"


def format_results(results: dict) -> str:
    """Human-readable two-arm comparison of the JSON payload."""
    dataset = results["dataset"]
    config = results["config"]
    lines = [
        f"memory-mapped serving on {dataset['name']} "
        f"(N={dataset['num_entities']:,}, nlist={config['nlist']}, "
        f"nprobe={config['nprobe']}, pq m={config['pq']['m']}/refine="
        f"{config['pq']['refine']}, {config['queries']} queries)",
        f"{'arm':>9} {'private':>10} {'mapped':>10} {'batch':>9} "
        f"{'p50':>8} {'p90':>8}",
    ]
    for name in ("baseline", "mapped"):
        arm = results[name]
        lines.append(
            f"{name:>9} {_fmt_bytes(arm['tracked_in_process_bytes']):>10} "
            f"{_fmt_bytes(arm['tracked_mapped_bytes']):>10} "
            f"{arm['batch_seconds']:>8.3f}s "
            f"{arm['latency']['p50_ms']:>6.2f}ms "
            f"{arm['latency']['p90_ms']:>6.2f}ms"
        )
    lines.append(
        f"recall@10 {results['recall_at_10']:.3f} "
        f"(target >= {config['recall_target']}), private-memory reduction "
        f"{results['memory_reduction']:.1f}x (target >= {config['reduction_target']}x)"
    )
    lines.append(
        "acceptance " + ("MET" if results["acceptance"]["achieved"] else "NOT met")
    )
    return "\n".join(lines)


@pytest.mark.slow
@pytest.mark.index
def test_memory_reduction_at_scale():
    from benchmarks.conftest import is_fast, publish_table

    results = run_benchmark(fast=is_fast())
    publish_table("memory", format_results(results))
    assert results["acceptance"]["achieved"], results["acceptance"]


if __name__ == "__main__":
    fast_flag = "--fast" in sys.argv
    scale_arg = None
    if "--scale" in sys.argv:
        scale_arg = float(sys.argv[sys.argv.index("--scale") + 1])
    print(format_results(run_benchmark(fast=fast_flag, scale=scale_arg)))
    print(f"\nwrote {DEFAULT_JSON_PATH}")
