"""Paper Table 4: the quaternion-based four-embedding interaction model.

Trains the Eq. 13/14 model at parameter parity (total_dim split over four
vectors) and reports test and train metrics.  The paper's shape: the
quaternion model matches or beats ComplEx/CPh, with the strongest
Hits@10, and near-perfect train metrics (overfitting-prone, §6.3).
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.paper_tables import run_table4
from benchmarks.conftest import is_fast, publish_table


def test_table4_quaternion_four_embedding(benchmark, dataset, settings):
    quaternion_row, complex_row = benchmark.pedantic(
        run_table4, args=(dataset, settings), rounds=1, iterations=1
    )
    table = format_table(
        f"Table 4: quaternion-based four-embedding model on {dataset.name}",
        [quaternion_row, complex_row],
    )
    publish_table("table4_quaternion", table)

    if is_fast():
        return  # smoke mode: tables only, shape assertions need full training

    # Paper shape: quaternion competitive with ComplEx (within noise) and
    # near-perfect on train.
    assert quaternion_row.test_metrics.mrr > 0.85 * complex_row.test_metrics.mrr
    assert quaternion_row.train_metrics.mrr > 0.7
    assert quaternion_row.test_metrics.hits[10] > 0.8 * complex_row.test_metrics.hits[10]
