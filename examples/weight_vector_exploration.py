"""Exploring the space of interaction weight vectors (paper §6.1.2).

The paper observes that good weight vectors share three structural
properties (completeness, stability, distinguishability).  This example
makes that observation quantitative:

1. enumerate all 255 binary two-embedding weight vectors,
2. classify each by the three properties,
3. train one sampled ω from each predicted-quality bucket on a small
   synthetic graph,
4. show that the structural prediction orders the empirical MRR.

    python examples/weight_vector_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    LinkPredictionEvaluator,
    SyntheticKGConfig,
    Trainer,
    TrainingConfig,
    generate_synthetic_kg,
    make_model,
)
from repro.analysis import classify_weight_vectors, enumerate_sign_weight_vectors
from repro.core import analyze_weight_vector
from repro.core import weights as W


def main() -> None:
    # --- census of the binary ω space -----------------------------------
    buckets = classify_weight_vectors(enumerate_sign_weight_vectors(values=(0.0, 1.0)))
    print("census of all 255 binary weight vectors (n = 2):")
    for quality in ("good", "symmetric", "poor"):
        print(f"  predicted {quality:<10} {len(buckets[quality]):4d} vectors")

    # --- the paper's named presets through the same lens -----------------
    print("\npaper presets:")
    for preset in (W.DISTMULT, W.COMPLEX, W.CP, W.CPH,
                   W.BAD_EXAMPLE_1, W.BAD_EXAMPLE_2,
                   W.GOOD_EXAMPLE_1, W.GOOD_EXAMPLE_2):
        report = analyze_weight_vector(preset)
        print(f"  {preset.name:<18} complete={report.complete!s:<5} "
              f"stable={report.stable!s:<5} distinguishable={report.distinguishable!s:<5}"
              f" -> {report.predicted_quality()}")

    # --- empirical check: one sample per bucket --------------------------
    dataset = generate_synthetic_kg(
        SyntheticKGConfig(num_entities=200, num_clusters=12, num_domains=4, seed=9)
    )
    config = TrainingConfig(epochs=150, batch_size=512, learning_rate=0.02,
                            validate_every=50, patience=100, seed=0)
    evaluator = LinkPredictionEvaluator(dataset)
    rng_seed = 0

    samples = {
        "good": buckets["good"][7],
        "symmetric": buckets["symmetric"][3],
        "poor": buckets["poor"][11],
    }
    print("\ntraining one sampled omega per bucket "
          f"on {dataset.name} ({dataset.num_entities} entities):")
    measured = {}
    for quality, omega in samples.items():
        model = make_model(
            omega, dataset.num_entities, dataset.num_relations,
            np.random.default_rng(rng_seed), total_dim=32, regularization=3e-3,
        )
        Trainer(dataset, config).train(model)
        mrr = evaluator.evaluate(model, "test").overall.mrr
        measured[quality] = mrr
        print(f"  {quality:<10} omega={omega.flatten()}  test MRR={mrr:.3f}")

    print("\nstructural prediction vs measurement:")
    print(f"  good > symmetric:  {measured['good'] > measured['symmetric']}")
    print(f"  symmetric > poor:  {measured['symmetric'] > measured['poor']}")


if __name__ == "__main__":
    main()
