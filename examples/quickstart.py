"""Quickstart: train ComplEx on a synthetic WN18-like graph and evaluate.

This walks the library API step by step (dataset → model → trainer →
evaluator); see ``examples/pipeline_quickstart.py`` for the same journey
as one declarative ``RunConfig`` through the unified run pipeline.
Runs in well under a minute on a laptop:

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    LinkPredictionEvaluator,
    SyntheticKGConfig,
    Trainer,
    TrainingConfig,
    generate_synthetic_kg,
    make_complex,
)
from repro.kg import compute_stats, inverse_leakage


def main() -> None:
    # 1. A dataset.  The generator mimics WN18's relation-pattern structure
    #    (inverse pairs, symmetric relations, a taxonomy) at laptop scale.
    dataset = generate_synthetic_kg(
        SyntheticKGConfig(num_entities=300, num_clusters=15, num_domains=5, seed=1)
    )
    print(compute_stats(dataset).format_table())
    print(f"\ninverse leakage (test->train): {inverse_leakage(dataset, 'test'):.2f}"
          "  (WN18 is ~0.94)\n")

    # 2. A model.  ComplEx = the two-embedding interaction with the Table 1
    #    weight vector (1, 0, 0, 1, 0, -1, 1, 0); total_dim is split across
    #    the two vectors for parameter parity with one-embedding models.
    model = make_complex(
        dataset.num_entities,
        dataset.num_relations,
        total_dim=32,
        rng=np.random.default_rng(0),
        regularization=3e-3,
    )
    print(f"model: {model}\n")

    # 3. Training: logistic loss, 1 negative sample, Adam, early stopping on
    #    filtered validation MRR — the paper's §5.3 recipe.
    config = TrainingConfig(
        epochs=200, batch_size=512, learning_rate=0.02,
        validate_every=50, patience=100, seed=0, verbose=True,
    )
    result = Trainer(dataset, config).train(model)
    print(f"\ntrained for {result.epochs_run} epochs"
          f" (early stop: {result.stopped_early})")

    # 4. Filtered link-prediction evaluation (§5.2).
    evaluation = LinkPredictionEvaluator(dataset).evaluate(model, split="test")
    metrics = evaluation.overall
    print(f"\ntest MRR    {metrics.mrr:.3f}")
    for k in sorted(metrics.hits):
        print(f"test Hits@{k:<2} {metrics.hits[k]:.3f}")


if __name__ == "__main__":
    main()
