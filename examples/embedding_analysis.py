"""Using multi-embedding vectors as plain real features (paper §3.2).

The paper's practical payoff: a ComplEx embedding is just two real
vectors, so for data analysis you can concatenate them and use ordinary
real-vector tooling.  This example trains ComplEx on the synthetic
WordNet-like graph, then

* finds nearest neighbours of an entity in the concatenated space
  (they should share graph structure — same cluster / taxonomy branch),
* compares relation embeddings: symmetric relations should have small
  imaginary parts (near-real complex numbers), inverse pairs should be
  near-conjugates of each other,
* prints the per-slot embedding-norm diagnostic for the §6.1.2
  stability property.

    python examples/embedding_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    SyntheticKGConfig,
    Trainer,
    TrainingConfig,
    generate_synthetic_kg,
    make_complex,
)
from repro.analysis import (
    embedding_norms_by_slot,
    entity_feature_matrix,
    nearest_neighbors,
)
from repro.kg import inverse_relation_pairs, symmetric_relation_names


def main() -> None:
    dataset = generate_synthetic_kg(
        SyntheticKGConfig(num_entities=300, num_clusters=15, num_domains=5, seed=3)
    )
    model = make_complex(
        dataset.num_entities, dataset.num_relations,
        total_dim=32, rng=np.random.default_rng(0), regularization=3e-3,
    )
    config = TrainingConfig(epochs=200, batch_size=512, learning_rate=0.02,
                            validate_every=50, patience=100, seed=0)
    Trainer(dataset, config).train(model)

    # --- entity neighbours in the concatenated real feature space -------
    features = entity_feature_matrix(model, normalize=True)
    print("nearest neighbours in concatenated embedding space:")
    neighbour_pairs = dataset.train.array
    for query in (5, 42, 100):
        names = [
            f"{dataset.entities.name(idx)} ({sim:.2f})"
            for idx, sim in nearest_neighbors(features, query, k=3)
        ]
        linked = {
            int(t) for h, t, _ in neighbour_pairs if h == query
        } | {int(h) for h, t, _ in neighbour_pairs if t == query}
        print(f"  {dataset.entities.name(query)} -> {', '.join(names)}"
              f"   [graph degree {len(linked)}]")

    # --- relation structure in complex coordinates ----------------------
    relations = model.relation_embeddings  # (R, 2, D): [real, imaginary]
    real_norm = np.linalg.norm(relations[:, 0, :], axis=-1)
    imag_norm = np.linalg.norm(relations[:, 1, :], axis=-1)
    ratio = imag_norm / np.maximum(real_norm, 1e-12)

    print("\nimag/real norm ratio per relation"
          " (symmetric relations should be near-real, i.e. low ratio):")
    symmetric = set(symmetric_relation_names())
    for rid in range(dataset.num_relations):
        name = dataset.relations.name(rid)
        tag = "symmetric" if name in symmetric else ""
        print(f"  {name:<22} {ratio[rid]:6.2f}  {tag}")

    sym_ids = [dataset.relations.index(n) for n in symmetric]
    asym_ids = [r for r in range(dataset.num_relations) if r not in sym_ids]
    print(f"\n  mean ratio symmetric:  {ratio[sym_ids].mean():.2f}")
    print(f"  mean ratio asymmetric: {ratio[asym_ids].mean():.2f}")

    # --- inverse pairs should be near complex conjugates ----------------
    print("\ncosine(r_forward, conj(r_inverse)) for generator inverse pairs:")
    for fwd_name, inv_name in inverse_relation_pairs():
        fwd = relations[dataset.relations.index(fwd_name)]
        inv = relations[dataset.relations.index(inv_name)].copy()
        inv[1] *= -1.0  # complex conjugate: negate the imaginary vector
        cosine = float(
            np.dot(fwd.ravel(), inv.ravel())
            / (np.linalg.norm(fwd) * np.linalg.norm(inv) + 1e-12)
        )
        print(f"  {fwd_name:<18} vs conj({inv_name:<18}) {cosine:+.2f}")

    # --- §6.1.2 stability diagnostic ------------------------------------
    slots = embedding_norms_by_slot(model)
    print(f"\nmean entity-embedding norm per slot (stability): {np.round(slots, 3)}")


if __name__ == "__main__":
    main()
