"""Pipeline quickstart: one JSON config from training to top-k serving.

The unified run pipeline makes an experiment a *document*: a
:class:`repro.RunConfig` (here round-tripped through JSON exactly as you
would store it in a repo) drives dataset generation, model construction
via the component registries, training, and evaluation; the resulting
run directory is then reloaded — without retraining — for bit-identical
re-evaluation and top-k link-prediction serving.  Runs in well under a
minute:

    python examples/pipeline_quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import RunConfig, evaluate_run, run_pipeline, serve_run

#: The whole experiment as data.  Any registered model name works here —
#: ω presets ("cph", "good_example_1", …) as well as factory names
#: ("complex", "quaternion", "learned"); `repro-kge train --config` and
#: `sweep()` consume the same format.
CONFIG_JSON = """
{
  "dataset": {
    "generator": "synthetic_wn18",
    "params": {"num_entities": 300, "num_clusters": 15, "num_domains": 5, "seed": 1}
  },
  "model":    {"name": "complex", "total_dim": 32, "regularization": 0.003},
  "training": {"epochs": 120, "batch_size": 512, "learning_rate": 0.02,
               "optimizer": "adam", "negative_sampler": "uniform"},
  "evaluation": {"split": "test"},
  "seed": 0,
  "label": "pipeline-quickstart"
}
"""


def main() -> None:
    config = RunConfig.from_json(CONFIG_JSON)
    print(f"run config: {config.label}  (model={config.model.name}, "
          f"total_dim={config.model.total_dim})\n")

    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "run"

        # 1. Train + evaluate, persisting config/checkpoint/history/metrics.
        result = run_pipeline(config, run_dir=run_dir)
        metrics = result.test_metrics
        print(f"trained {result.model.name} for {result.epochs_run} epochs")
        print(f"test MRR {metrics.mrr:.3f}  Hits@10 {metrics.hits[10]:.3f}")
        print(f"artifacts: {sorted(p.name for p in run_dir.iterdir())}\n")

        # 2. Re-evaluate from disk: the checkpoint + regenerated dataset
        #    reproduce the in-memory metrics bit-for-bit.
        recomputed = evaluate_run(run_dir)
        split = config.evaluation.split
        print(f"re-evaluated from run dir: MRR {recomputed[split].mrr:.3f} "
              f"(identical: {recomputed[split].mrr == metrics.mrr})\n")

        # 3. Serve top-k straight from the run directory — no retraining.
        predictor = serve_run(run_dir)
        dataset = result.dataset
        head_id, _, rel_id = dataset.test.array[0]
        head = dataset.entities.name(int(head_id))
        relation = dataset.relations.name(int(rel_id))
        print(f"top-5 tails for ({head}, {relation}, ?):")
        for rank, (name, score) in enumerate(
            predictor.predict(head=head, relation=relation, k=5), start=1
        ):
            print(f"  {rank}. {name:<24} {score:+.3f}")


if __name__ == "__main__":
    main()
