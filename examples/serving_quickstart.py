"""Serving quickstart: batched top-k link prediction on a synthetic FB graph.

Trains a small ComplEx model on the Freebase-flavoured synthetic dataset
and then answers the three serving-side questions a knowledge-base
product asks — "which tails?", "which heads?", "which relations?" —
through :class:`repro.serving.LinkPredictor`: batched scoring, the
relation-folded einsum fast path, filtered-candidate masking, and the
LRU score cache.  Runs in well under a minute:

    python examples/serving_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Trainer, TrainingConfig, make_complex
from repro.kg.synthetic_fb import SyntheticFBConfig, generate_synthetic_fb15k
from repro.serving import LinkPredictor


def main() -> None:
    # 1. A Freebase-like dataset: many templated relations, typed slots,
    #    heavy N-to-N hub structure (see repro.kg.synthetic_fb).
    dataset = generate_synthetic_fb15k(
        SyntheticFBConfig(num_entities=400, relation_templates=8, seed=3)
    )
    print(f"dataset: {dataset}\n")

    # 2. Train a small ComplEx model — enough signal for meaningful top-k.
    model = make_complex(
        dataset.num_entities,
        dataset.num_relations,
        total_dim=32,
        rng=np.random.default_rng(0),
        regularization=3e-3,
    )
    Trainer(dataset, TrainingConfig(epochs=60, batch_size=512, seed=0, verbose=False)).train(model)

    # 3. A predictor over the trained model.  folded="auto" pre-contracts
    #    ω with every relation embedding once; the LRU cache re-serves hot
    #    (entity, relation) sweeps without recomputing them.
    predictor = LinkPredictor(model, dataset, cache_size=1024)

    # 4. Tail prediction for the first few test triples, filtered so that
    #    already-known true tails don't crowd out new predictions.
    print("top-3 tail predictions (filtered):")
    for head_id, tail_id, rel_id in dataset.test.array[:5]:
        head = dataset.entities.name(int(head_id))
        relation = dataset.relations.name(int(rel_id))
        predictions = predictor.predict(head=head, relation=relation, k=3)
        names = ", ".join(f"{name} ({score:+.2f})" for name, score in predictions)
        truth = dataset.entities.name(int(tail_id))
        print(f"  ({head}, {relation}, ?)  ->  {names}   [true: {truth}]")

    # 5. The same queries again — now served from the cache.
    for head_id, _, rel_id in dataset.test.array[:5]:
        predictor.predict(
            head=dataset.entities.name(int(head_id)),
            relation=dataset.relations.name(int(rel_id)),
            k=3,
        )
    stats = predictor.cache_stats
    print(f"\ncache after a repeat pass: {stats.hits} hits / {stats.misses} misses "
          f"(hit rate {stats.hit_rate:.0%})")

    # 6. Batched head prediction and relation prediction, id-level API.
    test = dataset.test.array
    heads_top = predictor.top_k_heads(test[:8, 1], test[:8, 2], k=5, filtered=True)
    print(f"\nbatched head prediction ids, shape {heads_top.ids.shape}:")
    print(heads_top.ids)
    rel_top = predictor.top_k_relations(test[:4, 0], test[:4, 1], k=3)
    print("\nrelation prediction for 4 (head, tail) pairs:")
    for row, (head_id, tail_id) in enumerate(zip(test[:4, 0], test[:4, 1])):
        labels = dataset.relations.names(list(rel_top.ids[row]))
        true_rel = dataset.relations.name(int(test[row, 2]))
        print(f"  ({dataset.entities.name(int(head_id))}, ?, "
              f"{dataset.entities.name(int(tail_id))}) -> {labels}   [true: {true_rel}]")


if __name__ == "__main__":
    main()
