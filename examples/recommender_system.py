"""Recommender system on a knowledge graph — the paper's §1 motivation.

The introduction motivates knowledge graphs for recommendation: triples
such as ``(UserA, Item1, review)`` and ``(UserB, Item2, like)`` unify
interaction data with item knowledge, and link prediction *is* the
recommendation task ("which (user, ?, like) triples are missing?").

This example builds a synthetic user-item knowledge graph (users with
genre tastes, items with genres, plus item-item content relations),
trains the CPh model, and produces top-k recommendations for a few
users, checking them against the users' held-out likes.

    python examples/recommender_system.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    KGDataset,
    LinkPredictionEvaluator,
    Trainer,
    TrainingConfig,
    make_cph,
)

NUM_USERS = 120
NUM_ITEMS = 150
NUM_GENRES = 6
LIKES_PER_USER = 8
SEED = 7


def build_interaction_graph(rng: np.random.Generator) -> tuple[KGDataset, dict]:
    """A user/item/genre KG with train/test-split 'like' edges."""
    users = [f"user_{u}" for u in range(NUM_USERS)]
    items = [f"item_{i}" for i in range(NUM_ITEMS)]
    genres = [f"genre_{g}" for g in range(NUM_GENRES)]

    item_genre = rng.integers(0, NUM_GENRES, NUM_ITEMS)
    # Each user prefers two genres; likes are drawn mostly from them.
    user_genres = np.stack([
        rng.choice(NUM_GENRES, size=2, replace=False) for _ in range(NUM_USERS)
    ])

    train, test = [], []
    held_out = {}
    for u, user in enumerate(users):
        preferred = np.flatnonzero(np.isin(item_genre, user_genres[u]))
        likes = rng.choice(preferred, size=min(LIKES_PER_USER, len(preferred)),
                           replace=False)
        for i in likes[:-2]:
            train.append((user, items[i], "like"))
        for i in likes[-2:]:  # hold out two likes per user for evaluation
            test.append((user, items[i], "like"))
        held_out[user] = [items[i] for i in likes[-2:]]

    for i, item in enumerate(items):
        train.append((item, genres[item_genre[i]], "has_genre"))
        train.append((genres[item_genre[i]], item, "genre_of"))
    # item-item similarity edges within a genre (content knowledge)
    for g in range(NUM_GENRES):
        members = np.flatnonzero(item_genre == g)
        for i in members:
            j = int(rng.choice(members))
            if i != j:
                train.append((items[i], items[j], "related_to"))
                train.append((items[j], items[i], "related_to"))

    dataset = KGDataset.from_labeled_triples(train, valid=test[: len(test) // 5],
                                             test=test[len(test) // 5:],
                                             name="synthetic-recsys")
    return dataset, held_out


def main() -> None:
    rng = np.random.default_rng(SEED)
    dataset, held_out = build_interaction_graph(rng)
    print(dataset)

    model = make_cph(
        dataset.num_entities, dataset.num_relations,
        total_dim=32, rng=np.random.default_rng(0), regularization=1e-3,
    )
    config = TrainingConfig(epochs=150, batch_size=512, learning_rate=0.02,
                            validate_every=50, patience=100, seed=0)
    Trainer(dataset, config).train(model)

    evaluation = LinkPredictionEvaluator(dataset).evaluate(model, "test")
    print(f"\nheld-out like prediction: MRR={evaluation.overall.mrr:.3f} "
          f"Hits@10={evaluation.overall.hits[10]:.3f}\n")

    # Recommend: rank every entity as the tail of (user, ?, like), filter
    # items already liked in training, keep the top item entities.
    from repro.kg import FilterIndex

    like = dataset.relations.index("like")
    train_index = FilterIndex(dataset.train)
    item_ids = {dataset.entities.index(f"item_{i}") for i in range(NUM_ITEMS)}

    print("top-5 recommendations (* = held-out true like):")
    for user in ["user_0", "user_1", "user_2"]:
        uid = dataset.entities.index(user)
        scores = model.score_all_tails(np.array([uid]), np.array([like]))[0]
        already_liked = set(train_index.true_tails(uid, like).tolist())
        ranked = np.argsort(-scores)
        recommendations = []
        for entity in ranked:
            if int(entity) in item_ids and int(entity) not in already_liked:
                name = dataset.entities.name(int(entity))
                marker = "*" if name in held_out[user] else " "
                recommendations.append(f"{name}{marker}")
            if len(recommendations) == 5:
                break
        print(f"  {user}: " + ", ".join(recommendations))


if __name__ == "__main__":
    main()
