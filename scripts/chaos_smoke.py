#!/usr/bin/env python
"""End-to-end chaos smoke: real artifacts torn, real daemon degraded.

The reliability test suite (``tests/reliability/``) exercises fault
injection in-process; this script is the integration layer CI runs
(``scripts/ci.sh``) — it proves the recovery stories hold with real
processes and real files:

1. sweep a tiny two-point grid into a temp dir, truncate one child's
   checkpoint mid-file, resume, and require the torn child to heal by
   re-run (``completed``) while the intact child stays ``cached`` —
   with metrics bit-identical to an undisturbed sweep;
2. byte-flip a persisted index, launch ``python -m repro serve`` as a
   subprocess on the damaged run, and require the daemon to come up
   **degraded** (health op over the wire), serve top-k answers tagged
   ``degraded: true``, and match the exact in-process predictor
   bit-for-bit.

Exit code 0 means every step passed.  Stdlib only — no test framework —
so it can run anywhere the library runs.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
sys.path.insert(0, SRC)

READY_TIMEOUT_SECONDS = 60.0


def tiny_config():
    from repro.pipeline.config import (
        DatasetSection,
        IndexSection,
        ModelSection,
        RunConfig,
        TrainingSection,
    )

    return RunConfig(
        dataset=DatasetSection(
            generator="synthetic_wn18",
            params={"num_entities": 120, "num_clusters": 6, "seed": 3},
        ),
        model=ModelSection(name="complex", total_dim=8),
        training=TrainingSection(epochs=2, batch_size=256),
        index=IndexSection(kind="ivf", nlist=8, nprobe=2),
    )


def truncate_then_resume(root: Path) -> Path:
    """Tear a sweep child's checkpoint; resume must heal it by re-run."""
    from repro.pipeline.sweep import sweep

    grid = {"training.learning_rate": [0.05, 0.1]}
    clean = sweep(tiny_config(), grid, run_root=root / "clean")
    first = sweep(tiny_config(), grid, run_root=root / "hurt")
    assert [run.status for run in first] == ["completed", "completed"], first

    victim = first[0].run_dir / "checkpoint" / "weights.npz"
    raw = victim.read_bytes()
    victim.write_bytes(raw[: len(raw) // 2])
    print(f"== chaos smoke: truncated {victim.name} to {len(raw) // 2} bytes ==")

    resumed = sweep(tiny_config(), grid, run_root=root / "hurt")
    statuses = [run.status for run in resumed]
    assert statuses == ["completed", "cached"], (
        f"expected the torn child to re-run and the intact one to cache-hit, "
        f"got {statuses}"
    )
    for healed, reference in zip(resumed, clean):
        assert healed.metrics["test"].mrr == reference.metrics["test"].mrr, (
            "healed child metrics drifted from the fault-free sweep"
        )
    print("== chaos smoke: resume healed the torn child bit-identically ==")
    return resumed[0].run_dir


def wait_for_ready(process: subprocess.Popen) -> int:
    """Read daemon stdout until the READY line; return the bound port."""
    deadline = time.monotonic() + READY_TIMEOUT_SECONDS
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(f"daemon exited before READY (rc={process.poll()})")
        sys.stdout.write(f"  [daemon] {line}")
        if line.startswith("REPRO-SERVE READY"):
            fields = dict(
                part.split("=", 1) for part in line.split() if "=" in part
            )
            return int(fields["port"])
    raise RuntimeError("timed out waiting for REPRO-SERVE READY")


def query(conn_file, conn, payload: dict) -> dict:
    conn.sendall(json.dumps(payload).encode() + b"\n")
    return json.loads(conn_file.readline())


def degraded_serving_round_trip(run_dir: Path) -> None:
    """Byte-flip the index; the daemon must degrade, not die or lie."""
    from repro.pipeline.runner import serve_run
    from repro.serving.server import k_bucket

    npz = run_dir / "index" / "arrays.npz"
    raw = bytearray(npz.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    npz.write_bytes(bytes(raw))
    print("== chaos smoke: byte-flipped index/arrays.npz ==")

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(run_dir),
         "--port", "0", "--index", "auto"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    try:
        port = wait_for_ready(process)
        exact = serve_run(str(run_dir), index=None)
        with socket.create_connection(("127.0.0.1", port), timeout=30) as conn:
            reader = conn.makefile("r", encoding="utf-8")

            health = query(reader, conn, {"id": 1, "op": "health"})
            assert health["ok"], health
            assert health["health"]["status"] == "degraded", health
            assert health["health"]["index_attached"] is False, health
            print("== chaos smoke: daemon reports degraded health ==")

            for head in (0, 11, 42):
                served = query(
                    reader, conn,
                    {"id": head, "op": "top_k", "side": "tail", "head": head,
                     "relation": 1, "k": 5, "filtered": True},
                )
                assert served["ok"], served
                assert served["degraded"] is True, served
                expected = exact.top_k_tails(
                    [head], [1], k=k_bucket(5), filtered=True
                )
                assert served["ids"] == [int(i) for i in expected.ids[0, :5]], (
                    f"degraded wire ids {served['ids']} != exact "
                    f"{expected.ids[0, :5]}"
                )
            print("== chaos smoke: degraded answers match exact predictor ==")

            stats = query(reader, conn, {"id": 9, "op": "stats"})
            assert stats["stats"]["degraded"] is True, stats
            assert stats["stats"]["degraded_served"] >= 3, stats

            closing = query(reader, conn, {"id": 10, "op": "shutdown"})
            assert closing["ok"] and closing["closing"], closing
        rc = process.wait(timeout=30)
        assert rc == 0, f"daemon exited with rc={rc}"
        print("== chaos smoke: clean shutdown ==")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        root = Path(tmp)
        print("== chaos smoke: sweeping tiny grid ==")
        healed_run = truncate_then_resume(root)
        degraded_serving_round_trip(healed_run)
    print("chaos smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
