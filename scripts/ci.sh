#!/usr/bin/env bash
# Tier-1 CI gate: byte-compile the library, then run the tier-1 suite
# (the repo's canonical `python -m pytest -x -q` over tests/).
#
#   scripts/ci.sh               # full tier-1 run
#   scripts/ci.sh -m pipeline   # extra pytest args are forwarded
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

echo "== tier-1 tests =="
python -m pytest -x -q "$@"
