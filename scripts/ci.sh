#!/usr/bin/env bash
# CI gate: byte-compile the library, run the test suite, then smoke-run
# the benchmark harnesses.  This is the single entrypoint both local
# developers and GitHub Actions execute (.github/workflows/ci.yml), so
# "works on CI" and "works locally" are the same command.
#
#   scripts/ci.sh                 # full tier-1 run (the canonical gate)
#   scripts/ci.sh --quick         # PR-speed run: skips `slow` and
#                                 # `pipeline` marked suites
#   scripts/ci.sh -m pipeline     # extra pytest args are forwarded
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [ "${1:-}" = "--quick" ]; then
  QUICK=1
  shift
fi

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

# The benchmark smoke suites run once, in their own final step below.
SMOKE_TESTS=(
  tests/test_bench_training_smoke.py
  tests/test_bench_parallel_smoke.py
  tests/test_bench_index_smoke.py
  tests/test_bench_serving_smoke.py
  tests/test_bench_reliability_smoke.py
  tests/test_bench_memory_smoke.py
  tests/test_bench_ingest_smoke.py
  tests/test_bench_obs_smoke.py
)
IGNORE_SMOKE=("${SMOKE_TESTS[@]/#/--ignore=}")

if [ "$QUICK" -eq 1 ]; then
  echo "== tier-1 tests (quick: not slow, not pipeline) =="
  python -m pytest -x -q -m "not slow and not pipeline" "${IGNORE_SMOKE[@]}" "$@"
else
  echo "== tier-1 tests =="
  python -m pytest -x -q "${IGNORE_SMOKE[@]}" "$@"
fi

echo "== benchmark smoke tests =="
python -m pytest -q "${SMOKE_TESTS[@]}"

# End-to-end daemon smoke: train a tiny run, start `repro serve` as a
# real subprocess, drive concurrent wire requests, shut down cleanly.
echo "== serving daemon smoke =="
python scripts/serving_smoke.py

# Chaos smoke: tear a sweep child's checkpoint and resume (heal by
# re-run), then byte-flip a persisted index and require the daemon to
# serve degraded-but-exact answers over the wire.
echo "== chaos smoke =="
python scripts/chaos_smoke.py
