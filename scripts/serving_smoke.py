#!/usr/bin/env python
"""End-to-end smoke of the serving daemon: real process, real socket.

The asyncio test suite (``tests/serving/test_server.py``) exercises the
server in-process; this script is the missing integration layer that CI
runs (``scripts/ci.sh``) — it proves the daemon works as an *operating
system process*:

1. train a tiny pipeline run (with an IVF index) into a temp dir,
2. launch ``python -m repro serve <run_dir> --port 0`` as a subprocess,
3. parse the ``REPRO-SERVE READY ... port=<n>`` line for the bound port,
4. fire concurrent newline-delimited JSON requests over two sockets,
5. cross-check a served answer against a direct in-process predictor,
6. shut down over the wire and require a clean exit.

Exit code 0 means every step passed.  Stdlib only — no test framework —
so it can run anywhere the library runs.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
sys.path.insert(0, SRC)

READY_TIMEOUT_SECONDS = 60.0
REQUESTS_PER_CONNECTION = 24


def build_run(run_dir: Path) -> None:
    from repro.pipeline.config import (
        DatasetSection,
        IndexSection,
        ModelSection,
        RunConfig,
        TrainingSection,
    )
    from repro.pipeline.runner import run_pipeline

    config = RunConfig(
        dataset=DatasetSection(
            generator="synthetic_wn18",
            params={"num_entities": 120, "num_clusters": 6, "seed": 3},
        ),
        model=ModelSection(name="complex", total_dim=8),
        training=TrainingSection(epochs=2, batch_size=256),
        index=IndexSection(kind="ivf", nlist=8, nprobe=8),
    )
    run_pipeline(config, run_dir=run_dir)


def wait_for_ready(process: subprocess.Popen) -> int:
    """Read daemon stdout until the READY line; return the bound port."""
    deadline = time.monotonic() + READY_TIMEOUT_SECONDS
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"daemon exited before READY (rc={process.poll()})"
            )
        sys.stdout.write(f"  [daemon] {line}")
        if line.startswith("REPRO-SERVE READY"):
            fields = dict(
                part.split("=", 1) for part in line.split() if "=" in part
            )
            return int(fields["port"])
    raise RuntimeError("timed out waiting for REPRO-SERVE READY")


def drive_connection(port: int, offset: int) -> list[dict]:
    """Write a burst of pipelined requests, then collect every response."""
    requests = []
    for i in range(REQUESTS_PER_CONNECTION):
        requests.append(
            {
                "id": offset + i,
                "op": "top_k",
                "side": "tail",
                "head": (offset + 7 * i) % 120,
                "relation": i % 3,
                "k": 5,
                "filtered": i % 2 == 0,
            }
        )
    with socket.create_connection(("127.0.0.1", port), timeout=30) as conn:
        conn.sendall(
            "".join(json.dumps(r) + "\n" for r in requests).encode()
        )
        reader = conn.makefile("r", encoding="utf-8")
        responses = [json.loads(reader.readline()) for _ in requests]
    by_id = {r["id"]: r for r in responses}
    for request in requests:
        response = by_id[request["id"]]
        assert response["ok"] is True, f"request {request} failed: {response}"
        assert len(response["ids"]) == 5, response
        finite = [s for s in response["scores"] if s is not None]
        assert finite == sorted(finite, reverse=True), response
    return responses


def cross_check(run_dir: Path, port: int) -> None:
    """One wire answer must match the in-process predictor exactly."""
    from repro.pipeline.runner import serve_run
    from repro.serving.server import k_bucket

    predictor = serve_run(str(run_dir), index="auto", on_stale="error")
    expected = predictor.top_k_tails([11], [1], k=k_bucket(5), filtered=True)
    with socket.create_connection(("127.0.0.1", port), timeout=30) as conn:
        conn.sendall(
            json.dumps(
                {"id": 0, "op": "top_k", "side": "tail", "head": 11,
                 "relation": 1, "k": 5, "filtered": True}
            ).encode() + b"\n"
        )
        response = json.loads(conn.makefile("r", encoding="utf-8").readline())
    assert response["ok"] is True, response
    assert response["ids"] == [int(i) for i in expected.ids[0, :5]], (
        f"wire ids {response['ids']} != direct {expected.ids[0, :5]}"
    )


def shutdown_over_wire(port: int) -> None:
    with socket.create_connection(("127.0.0.1", port), timeout=30) as conn:
        conn.sendall(b'{"id": 0, "op": "stats"}\n{"id": 1, "op": "shutdown"}\n')
        reader = conn.makefile("r", encoding="utf-8")
        stats = json.loads(reader.readline())
        closing = json.loads(reader.readline())
    assert stats["stats"]["served"] >= 2 * REQUESTS_PER_CONNECTION, stats
    assert closing["ok"] is True and closing["closing"] is True, closing


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serving-smoke-") as tmp:
        run_dir = Path(tmp) / "run"
        print("== serving smoke: training tiny run ==")
        build_run(run_dir)

        print("== serving smoke: launching daemon ==")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(run_dir), "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            port = wait_for_ready(process)
            print(f"== serving smoke: daemon ready on port {port} ==")
            drive_connection(port, offset=100)
            drive_connection(port, offset=200)
            print("== serving smoke: 48 concurrent wire requests served ==")
            cross_check(run_dir, port)
            print("== serving smoke: wire answer matches direct predictor ==")
            shutdown_over_wire(port)
            rc = process.wait(timeout=30)
            remainder = process.stdout.read()
            for line in remainder.splitlines():
                sys.stdout.write(f"  [daemon] {line}\n")
            assert rc == 0, f"daemon exited with rc={rc}"
            assert "REPRO-SERVE STOPPED" in remainder, remainder
            print("== serving smoke: clean shutdown ==")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
    print("serving smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
