"""Shared experiment harness for the benchmarks and the CLI.

Each paper table is a list of rows; each row is "train this model on this
dataset, evaluate on test (and optionally on a training subsample for the
'on train' rows), print MRR / Hits@{1,3,10}".  This module factors that
recipe out so every benchmark file stays declarative.

Since the unified run pipeline landed, this module is a thin adapter:
:class:`ExperimentSettings` converts to a
:class:`~repro.pipeline.config.RunConfig` (``to_run_config``), and
:func:`run_experiment_row` delegates to the pipeline's
:func:`~repro.pipeline.runner.train_and_evaluate` engine, so benchmark
code written against the old signatures runs through the exact same path
as ``run_pipeline``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.base import KGEModel
from repro.errors import ConfigError
from repro.eval.metrics import RankingMetrics
from repro.kg.graph import KGDataset
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.pipeline.config import (
    DatasetSection,
    EvalSection,
    ModelSection,
    ParallelSection,
    RunConfig,
    TrainingSection,
)
from repro.pipeline.runner import RunResult, run_pipeline, train_and_evaluate
from repro.training.trainer import TrainingConfig


@dataclass(frozen=True)
class ExperimentSettings:
    """Dataset + training settings shared by every row of a table.

    The defaults are the scaled-down analogue of the paper's §5.3 setup
    (WN18, embedding budget 400, batch 2^12/2^14, Adam, 1 negative,
    validation every 50 epochs with 100 epochs patience).
    """

    dataset_config: SyntheticKGConfig = field(
        default_factory=lambda: SyntheticKGConfig(
            num_entities=800, num_clusters=40, num_domains=8, seed=7
        )
    )
    total_dim: int = 64
    epochs: int = 400
    batch_size: int = 1024
    learning_rate: float = 0.02
    regularization: float = 3e-3
    num_negatives: int = 1
    optimizer: str = "adam"
    negative_sampler: str = "uniform"
    validate_every: int = 50
    patience: int = 100
    seed: int = 0
    train_eval_triples: int = 1000
    # Sharded-evaluation knobs (repro.parallel); they change evaluation
    # wall-clock and memory only — metrics stay bit-identical.
    eval_shards: int = 1
    eval_workers: int = 0

    def training_config(self) -> TrainingConfig:
        """The :class:`TrainingConfig` implied by these settings."""
        return TrainingConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            optimizer=self.optimizer,
            num_negatives=self.num_negatives,
            negative_sampler=self.negative_sampler,
            validate_every=self.validate_every,
            patience=self.patience,
            seed=self.seed,
        )

    def to_run_config(
        self,
        model: ModelSection | None = None,
        evaluate_train: bool = False,
        label: str | None = None,
    ) -> RunConfig:
        """The equivalent pipeline :class:`RunConfig` for one table row.

        ``model`` defaults to a ComplEx section at these settings'
        budget; table runners pass one section per row (with the row's
        ``seed_offset`` so model init matches :func:`seeded_rng`).
        """
        if model is None:
            model = ModelSection(
                total_dim=self.total_dim, regularization=self.regularization
            )
        return RunConfig(
            dataset=DatasetSection(
                generator="synthetic_wn18",
                params=dataclasses.asdict(self.dataset_config),
            ),
            model=model,
            training=TrainingSection(
                epochs=self.epochs,
                batch_size=self.batch_size,
                learning_rate=self.learning_rate,
                optimizer=self.optimizer,
                num_negatives=self.num_negatives,
                negative_sampler=self.negative_sampler,
                validate_every=self.validate_every,
                patience=self.patience,
            ),
            evaluation=EvalSection(
                evaluate_train=evaluate_train,
                train_eval_triples=self.train_eval_triples,
            ),
            parallel=ParallelSection(
                eval_shards=self.eval_shards, eval_workers=self.eval_workers
            ),
            seed=self.seed,
            label=label,
        )

    @classmethod
    def from_run_config(cls, config: RunConfig) -> "ExperimentSettings":
        """Settings equivalent to a synthetic-WN18 pipeline config.

        Used by ``repro-kge table --config`` so a JSON run config can
        re-parameterize the whole table harness.
        """
        if config.dataset.generator != "synthetic_wn18":
            raise ConfigError(
                "table experiments require the synthetic_wn18 dataset generator, "
                f"got {config.dataset.generator!r}"
            )
        try:
            dataset_config = SyntheticKGConfig(**config.dataset.params)
        except TypeError as error:
            raise ConfigError(f"invalid dataset.params for synthetic_wn18: {error}") from None
        return cls(
            dataset_config=dataset_config,
            total_dim=config.model.total_dim,
            epochs=config.training.epochs,
            batch_size=config.training.batch_size,
            learning_rate=config.training.learning_rate,
            regularization=config.model.regularization,
            num_negatives=config.training.num_negatives,
            optimizer=config.training.optimizer,
            negative_sampler=config.training.negative_sampler,
            validate_every=config.training.validate_every,
            patience=config.training.patience,
            seed=config.seed,
            train_eval_triples=config.evaluation.train_eval_triples,
            eval_shards=config.parallel.eval_shards,
            eval_workers=config.parallel.eval_workers,
        )


@dataclass
class ExperimentRow:
    """One table row: a label plus its test (and optionally train) metrics."""

    label: str
    test_metrics: RankingMetrics
    train_metrics: RankingMetrics | None = None
    epochs_run: int = 0


def build_dataset(settings: ExperimentSettings) -> KGDataset:
    """Generate the synthetic dataset for *settings* (deterministic)."""
    return generate_synthetic_kg(settings.dataset_config)


def row_from_result(result: RunResult, label: str | None = None) -> ExperimentRow:
    """Convert a pipeline :class:`RunResult` into a table row."""
    return ExperimentRow(
        label=label or result.config.label or result.model.name,
        test_metrics=result.test_metrics,
        train_metrics=result.train_metrics,
        epochs_run=result.epochs_run,
    )


def run_experiment_row(
    model: KGEModel,
    dataset: KGDataset,
    settings: ExperimentSettings,
    label: str | None = None,
    evaluate_train: bool = False,
) -> ExperimentRow:
    """Train *model* on *dataset* and evaluate it per the paper's protocol.

    Legacy entry point for externally-constructed models (baselines,
    ablations); delegates to the pipeline's shared train+eval engine.
    """
    config = settings.to_run_config(evaluate_train=evaluate_train, label=label)
    result = train_and_evaluate(config, dataset, model)
    return row_from_result(result, label=label or model.name)


def run_config_row(
    config: RunConfig,
    dataset: KGDataset | None = None,
    run_dir: str | None = None,
) -> ExperimentRow:
    """Run one declarative :class:`RunConfig` and return its table row."""
    result = run_pipeline(config, dataset=dataset, run_dir=run_dir)
    return row_from_result(result)


def format_table(title: str, rows: list[ExperimentRow], label_width: int = 42) -> str:
    """Render rows in the layout of the paper's Tables 2-4."""
    if not rows:
        raise ConfigError("cannot format an empty table")
    lines = [title, RankingMetrics.header_row(label_width=label_width)]
    lines.append("-" * len(lines[-1]))
    for row in rows:
        lines.append(row.test_metrics.format_row(row.label, label_width))
    train_rows = [row for row in rows if row.train_metrics is not None]
    if train_rows:
        lines.append("-" * len(lines[1]))
        for row in train_rows:
            lines.append(row.train_metrics.format_row(f"{row.label} on train", label_width))
    return "\n".join(lines)


def seeded_rng(settings: ExperimentSettings, offset: int = 0) -> np.random.Generator:
    """Model-init generator derived from the settings seed (+ row offset)."""
    return np.random.default_rng(settings.seed + 1000 + offset)
