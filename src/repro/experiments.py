"""Shared experiment harness for the benchmarks and the CLI.

Each paper table is a list of rows; each row is "train this model on this
dataset, evaluate on test (and optionally on a training subsample for the
'on train' rows), print MRR / Hits@{1,3,10}".  This module factors that
recipe out so every benchmark file stays declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import KGEModel
from repro.errors import ConfigError
from repro.eval.evaluator import LinkPredictionEvaluator
from repro.eval.metrics import RankingMetrics
from repro.kg.graph import KGDataset
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.training.trainer import Trainer, TrainingConfig


@dataclass(frozen=True)
class ExperimentSettings:
    """Dataset + training settings shared by every row of a table.

    The defaults are the scaled-down analogue of the paper's §5.3 setup
    (WN18, embedding budget 400, batch 2^12/2^14, Adam, 1 negative,
    validation every 50 epochs with 100 epochs patience).
    """

    dataset_config: SyntheticKGConfig = field(
        default_factory=lambda: SyntheticKGConfig(
            num_entities=800, num_clusters=40, num_domains=8, seed=7
        )
    )
    total_dim: int = 64
    epochs: int = 400
    batch_size: int = 1024
    learning_rate: float = 0.02
    regularization: float = 3e-3
    num_negatives: int = 1
    validate_every: int = 50
    patience: int = 100
    seed: int = 0
    train_eval_triples: int = 1000

    def training_config(self) -> TrainingConfig:
        """The :class:`TrainingConfig` implied by these settings."""
        return TrainingConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            num_negatives=self.num_negatives,
            validate_every=self.validate_every,
            patience=self.patience,
            seed=self.seed,
        )


@dataclass
class ExperimentRow:
    """One table row: a label plus its test (and optionally train) metrics."""

    label: str
    test_metrics: RankingMetrics
    train_metrics: RankingMetrics | None = None
    epochs_run: int = 0


def build_dataset(settings: ExperimentSettings) -> KGDataset:
    """Generate the synthetic dataset for *settings* (deterministic)."""
    return generate_synthetic_kg(settings.dataset_config)


def run_experiment_row(
    model: KGEModel,
    dataset: KGDataset,
    settings: ExperimentSettings,
    label: str | None = None,
    evaluate_train: bool = False,
) -> ExperimentRow:
    """Train *model* on *dataset* and evaluate it per the paper's protocol."""
    trainer = Trainer(dataset, settings.training_config())
    result = trainer.train(model)
    evaluator = LinkPredictionEvaluator(dataset)
    test_result = evaluator.evaluate(model, split="test")
    train_metrics = None
    if evaluate_train:
        train_result = evaluator.evaluate_triples(
            model, dataset.train, split_name="train", max_triples=settings.train_eval_triples
        )
        train_metrics = train_result.overall
    return ExperimentRow(
        label=label or model.name,
        test_metrics=test_result.overall,
        train_metrics=train_metrics,
        epochs_run=result.epochs_run,
    )


def format_table(title: str, rows: list[ExperimentRow], label_width: int = 42) -> str:
    """Render rows in the layout of the paper's Tables 2-4."""
    if not rows:
        raise ConfigError("cannot format an empty table")
    lines = [title, RankingMetrics.header_row(label_width=label_width)]
    lines.append("-" * len(lines[-1]))
    for row in rows:
        lines.append(row.test_metrics.format_row(row.label, label_width))
    train_rows = [row for row in rows if row.train_metrics is not None]
    if train_rows:
        lines.append("-" * len(lines[1]))
        for row in train_rows:
            lines.append(row.train_metrics.format_row(f"{row.label} on train", label_width))
    return "\n".join(lines)


def seeded_rng(settings: ExperimentSettings, offset: int = 0) -> np.random.Generator:
    """Model-init generator derived from the settings seed (+ row offset)."""
    return np.random.default_rng(settings.seed + 1000 + offset)
