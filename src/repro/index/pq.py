"""Product quantization for the IVF coarse pass: ADC over uint8 codes.

The classic PQ recipe (Jégou et al.) specialised to this repository's
retrieval geometry.  A folded candidate matrix ``(N, f)`` is split into
``m`` contiguous subspaces of width ``f/m``; each subspace gets its own
seeded, fixed-iteration k-means codebook of up to 256 centroids, and
every entity row is stored as ``m`` uint8 centroid ids — 1 byte per
subspace instead of ``8·f/m``, a 64x compression at float64/``m=f/8``.

At query time the score of a candidate is approximated by **asymmetric
distance computation** (ADC): the query is *not* quantized; one lookup
table ``lut[j, c] = ⟨q_j, codebook_j[c]⟩`` per subspace turns the inner
product into ``Σ_j lut[j, code[j]]`` — ``m`` table gathers and a sum
per candidate, no float multiply against the candidate at all.  The IVF
layer uses these approximate scores only to shrink a probed cell union
to its ``refine`` most promising members; the final answer is always an
exact re-rank with true model scores, so PQ moves recall, never
correctness of the scores returned.

Everything is deterministic: codebooks are trained by the same
fixed-iteration seeded k-means contract as the IVF cells, on a seeded
sample of the rows, with one :class:`numpy.random.SeedSequence` child
per subspace — identical inputs and config produce identical codes on
every machine.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.errors import ServingError

#: Element budget for one ``(chunk, ks)`` subspace distance matrix.
_ENCODE_CHUNK_ELEMENTS = 1 << 22

#: Codes are uint8: at most 256 centroids per subspace.
MAX_CODEBOOK = 256


@dataclass(frozen=True)
class PQConfig:
    """Product-quantization knobs for the IVF coarse pass.

    m:
        Number of subspaces; must divide the folded feature width
        ``n_e·D``.  More subspaces = finer approximation, bigger codes.
    refine:
        Candidates kept per query after the ADC scan (the exact re-rank
        budget).  Must comfortably exceed the serving ``k``; recall@k
        climbs quickly with it because ADC only has to get the true
        top-k *somewhere* into the top-``refine``.
    train_sample:
        Rows sampled (seeded, without replacement) for codebook
        training; encoding always covers every row.
    iters:
        Fixed k-means iteration count per codebook.
    seed:
        Base seed; the owning index mixes in partition coordinates so
        every ``(relation, side)`` trains distinct deterministic
        codebooks.
    """

    m: int = 8
    refine: int = 64
    train_sample: int = 65536
    iters: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ServingError(f"pq.m must be >= 1, got {self.m}")
        if self.refine < 1:
            raise ServingError(f"pq.refine must be >= 1, got {self.refine}")
        if self.train_sample < 1:
            raise ServingError(f"pq.train_sample must be >= 1, got {self.train_sample}")
        if self.iters < 1:
            raise ServingError(f"pq.iters must be >= 1, got {self.iters}")
        if self.seed < 0:
            raise ServingError(f"pq.seed must be >= 0, got {self.seed}")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PQConfig":
        return cls(**dict(data))


def _nearest_subspace(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid id per point (Euclidean), ties toward lower id."""
    n = len(points)
    centroid_sq = np.einsum("cf,cf->c", centroids, centroids)
    out = np.empty(n, dtype=np.int64)
    chunk = max(1, _ENCODE_CHUNK_ELEMENTS // max(1, len(centroids)))
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        distances = points[start:stop] @ centroids.T
        distances *= -2.0
        distances += centroid_sq[None, :]
        out[start:stop] = np.argmin(distances, axis=1)
    return out


def _subspace_kmeans(
    points: np.ndarray, ks: int, rng: np.random.Generator, iters: int
) -> np.ndarray:
    """Seeded fixed-iteration k-means over one subspace; ``(ks, sub)`` centroids.

    Same determinism contract as the IVF cell k-means: seeded distinct-
    row init, fixed iteration count, empty cells keep their previous
    centroid.
    """
    n, sub = points.shape
    initial = np.sort(rng.choice(n, size=ks, replace=False))
    centroids = points[initial].astype(np.float64, copy=True)
    for _ in range(iters):
        assign = _nearest_subspace(points, centroids)
        counts = np.bincount(assign, minlength=ks)
        sums = np.zeros((ks, sub), dtype=np.float64)
        np.add.at(sums, assign, points)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied, None]
    return centroids


class ProductQuantizer:
    """Trained PQ codebooks + encode/ADC over one folded matrix geometry.

    ``codebooks`` has shape ``(m, ks, f/m)`` float64; build one with
    :meth:`fit` (deterministic) or adopt persisted codebooks directly.
    """

    def __init__(self, codebooks: np.ndarray) -> None:
        # asanyarray: a memmap-backed codebook table (the persisted-index
        # load path) must stay a recognizable mapping — file-backed pages
        # are shared and accounted separately from private copies.
        codebooks = np.asanyarray(codebooks)
        if codebooks.dtype != np.float64:
            codebooks = codebooks.astype(np.float64)
        if codebooks.ndim != 3:
            raise ServingError(
                f"codebooks must be (m, ks, sub_dim), got shape {codebooks.shape}"
            )
        if not 1 <= codebooks.shape[1] <= MAX_CODEBOOK:
            raise ServingError(
                f"codebook size must be in [1, {MAX_CODEBOOK}], got {codebooks.shape[1]}"
            )
        self.codebooks = codebooks

    # ------------------------------------------------------------ properties
    @property
    def m(self) -> int:
        return self.codebooks.shape[0]

    @property
    def ks(self) -> int:
        return self.codebooks.shape[1]

    @property
    def sub_dim(self) -> int:
        return self.codebooks.shape[2]

    @property
    def feature_dim(self) -> int:
        return self.m * self.sub_dim

    def nbytes(self) -> int:
        return int(self.codebooks.nbytes)

    # ------------------------------------------------------------- training
    @classmethod
    def fit(
        cls,
        points: np.ndarray,
        config: PQConfig,
        seed: int | np.random.SeedSequence | None = None,
    ) -> "ProductQuantizer":
        """Train deterministic per-subspace codebooks over *points*.

        *seed* overrides ``config.seed`` (the IVF layer passes a
        partition-mixed :class:`~numpy.random.SeedSequence`); one child
        sequence is spawned per subspace so subspace trainings are
        independent deterministic streams.
        """
        points = np.asarray(points)
        n, f = points.shape
        if n < 1:
            raise ServingError("cannot fit a product quantizer on an empty matrix")
        if f % config.m != 0:
            raise ServingError(
                f"pq.m must divide the folded feature width: {config.m} does not "
                f"divide {f} (pick m from the divisors of n_e*D)"
            )
        if seed is None:
            seed = config.seed
        root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(
            int(seed)
        )
        sub = f // config.m
        ks = int(min(MAX_CODEBOOK, n))
        train_rows = None
        if config.train_sample < n:
            sample_rng = np.random.default_rng(root.spawn(1)[0])
            train_rows = np.sort(
                sample_rng.choice(n, size=config.train_sample, replace=False)
            )
            ks = int(min(ks, len(train_rows)))
        codebooks = np.empty((config.m, ks, sub), dtype=np.float64)
        children = root.spawn(config.m + 1)[1:]
        for j, child in enumerate(children):
            block = points[:, j * sub : (j + 1) * sub]
            train = block if train_rows is None else block[train_rows]
            train = np.asarray(train, dtype=np.float64)
            codebooks[j] = _subspace_kmeans(
                train, ks, np.random.default_rng(child), config.iters
            )
        return cls(codebooks)

    # ------------------------------------------------------------- encoding
    def encode(self, points: np.ndarray) -> np.ndarray:
        """``(n, m)`` uint8 nearest-centroid codes for every row."""
        points = np.asarray(points)
        n, f = points.shape
        if f != self.feature_dim:
            raise ServingError(
                f"cannot encode width-{f} rows with a width-{self.feature_dim} quantizer"
            )
        codes = np.empty((n, self.m), dtype=np.uint8)
        sub = self.sub_dim
        for j in range(self.m):
            block = np.asarray(points[:, j * sub : (j + 1) * sub], dtype=np.float64)
            codes[:, j] = _nearest_subspace(block, self.codebooks[j]).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstructed ``(n, f)`` rows (centroid concatenation)."""
        codes = np.asarray(codes)
        return self.codebooks[np.arange(self.m)[None, :], codes.astype(np.int64)].reshape(
            len(codes), self.feature_dim
        )

    # -------------------------------------------------------------- scoring
    def lookup_tables(self, queries: np.ndarray) -> np.ndarray:
        """``(b, m, ks)`` ADC tables: ``lut[q, j, c] = ⟨query_j, codebook_j[c]⟩``."""
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.shape[1] != self.feature_dim:
            raise ServingError(
                f"query width {queries.shape[1]} != quantizer width {self.feature_dim}"
            )
        blocks = queries.reshape(len(queries), self.m, self.sub_dim)
        return np.einsum("qms,mcs->qmc", blocks, self.codebooks, optimize=True)

    @staticmethod
    def adc_scores(lut: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate inner products of one query against coded rows.

        *lut* is one query's ``(m, ks)`` table; *codes* the candidates'
        ``(n, m)`` uint8 codes.  Cost: ``n·m`` gathers + adds.
        """
        m = lut.shape[0]
        gathered = lut[np.arange(m)[None, :], codes.astype(np.int64, copy=False)]
        return gathered.sum(axis=1)

    def scores(self, queries: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """``(b, n)`` approximate inner products (convenience for tests)."""
        luts = self.lookup_tables(queries)
        return np.stack([self.adc_scores(lut, codes) for lut in luts])

    def __repr__(self) -> str:
        return (
            f"ProductQuantizer(m={self.m}, ks={self.ks}, sub_dim={self.sub_dim})"
        )
