"""Per-relation folded candidate matrices for retrieval indexing.

The Eq. 8 score factors, for a fixed relation ``r`` and query side, into
a plain inner product between a *raw* anchor embedding and a per-relation
*folded* candidate vector::

    S(h, e, r) = Σ_{ijd} W_r[i,j,d] · h[i,d] · e[j,d]
               = ⟨ flat(h),  tail_fold_r(e) ⟩      with
    tail_fold_r(e)[i,d] = Σ_j W_r[i,j,d] · e[j,d]

where ``W_r`` is the relation-folded mixing tensor serving already
maintains (:mod:`repro.serving.folded`, built from the compiled kernel's
nonzero ω terms).  The head side folds the other entity axis.

This is the geometry an approximate index has to partition: maximum
inner product between the untouched anchor vector and relation-specific
candidate vectors.  Clustering the *folded* matrices (rather than the
raw entity table) aligns k-means cells with each relation's scoring
geometry — ω's zero pattern removes irrelevant slots before distances
are measured — which measurably improves recall at a fixed probe budget.

Folded matrices are built lazily per ``(relation, side)``, kept in a
small LRU (they are ``(N, n_e·D)`` — big at million-entity scale), and
invalidated whenever the model's ``scoring_version`` moves.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.base import CANDIDATE_SIDES
from repro.core.interaction import MultiEmbeddingModel
from repro.errors import ServingError


def fold_candidate_matrix(
    model: MultiEmbeddingModel, relation: int, side: str = "tail"
) -> np.ndarray:
    """The ``(num_entities, n_e·D)`` folded candidate matrix of one relation.

    Row ``e`` satisfies ``S(anchor, e, r) == ⟨anchor_flat, row_e⟩`` (up
    to float re-association) for ``side="tail"`` queries, and
    symmetrically for ``side="head"``.
    """
    if not isinstance(model, MultiEmbeddingModel):
        raise ServingError(
            "folded candidate matrices require a MultiEmbeddingModel; got "
            f"{type(model).__name__}"
        )
    if side not in CANDIDATE_SIDES:
        raise ServingError(f"unknown side {side!r}; known: {CANDIDATE_SIDES}")
    if not 0 <= relation < model.num_relations:
        raise ServingError(
            f"relation id {relation} out of range [0, {model.num_relations})"
        )
    # One relation's mixing tensor from the kernel's nonzero terms only.
    mixing = model.kernel.fold_relations(
        model.relation_embeddings[relation : relation + 1]
    )[0]
    entities = model.entity_embeddings
    spec = "ijd,ejd->eid" if side == "tail" else "ijd,eid->ejd"
    folded = np.einsum(spec, mixing, entities, optimize=True)
    return folded.reshape(model.num_entities, -1)


class FoldedCandidateSource:
    """Versioned access to query vectors and folded candidate matrices.

    The index build path streams one ``(relation, side)`` matrix at a
    time through :meth:`candidate_matrix`; at serve time only the raw
    query vectors (:meth:`query_matrix`) and the per-partition centroids
    are needed, so the big folded matrices never stay resident.
    """

    def __init__(self, model: MultiEmbeddingModel, max_cached: int = 2) -> None:
        if not isinstance(model, MultiEmbeddingModel):
            raise ServingError(
                "FoldedCandidateSource requires a MultiEmbeddingModel; got "
                f"{type(model).__name__}"
            )
        if max_cached < 1:
            raise ServingError("max_cached must be >= 1")
        self.model = model
        self.max_cached = int(max_cached)
        self._cache: OrderedDict[tuple[int, str], np.ndarray] = OrderedDict()
        self._cache_version = model.scoring_version

    @property
    def version(self) -> int:
        """The model's current ``scoring_version``."""
        return self.model.scoring_version

    @property
    def num_entities(self) -> int:
        return self.model.num_entities

    @property
    def feature_dim(self) -> int:
        """Flattened entity feature width ``n_e · D``."""
        return self.model.num_entity_vectors * self.model.dim

    def entity_matrix(self) -> np.ndarray:
        """The raw flattened entity table, shape ``(N, n_e·D)`` (a view)."""
        return self.model.entity_embeddings.reshape(self.num_entities, -1)

    def query_matrix(self, anchors: np.ndarray) -> np.ndarray:
        """Raw flattened anchor vectors for a query batch, shape ``(b, f)``."""
        anchors = np.asarray(anchors, dtype=np.int64)
        return self.entity_matrix()[anchors]

    def candidate_matrix(self, relation: int, side: str = "tail") -> np.ndarray:
        """The folded candidate matrix of ``(relation, side)``, LRU-cached.

        Cached entries are dropped whenever the model trains, so a
        matrix handed out here always matches the current parameters.
        """
        if self._cache_version != self.version:
            self._cache.clear()
            self._cache_version = self.version
        key = (int(relation), side)
        hit = self._cache.get(key)
        if hit is not None:
            self._cache.move_to_end(key)
            return hit
        matrix = fold_candidate_matrix(self.model, int(relation), side)
        if len(self._cache) >= self.max_cached:
            self._cache.popitem(last=False)
        self._cache[key] = matrix
        return matrix
