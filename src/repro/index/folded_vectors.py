"""Per-relation folded candidate matrices for retrieval indexing.

The Eq. 8 score factors, for a fixed relation ``r`` and query side, into
a plain inner product between a *raw* anchor embedding and a per-relation
*folded* candidate vector::

    S(h, e, r) = Σ_{ijd} W_r[i,j,d] · h[i,d] · e[j,d]
               = ⟨ flat(h),  tail_fold_r(e) ⟩      with
    tail_fold_r(e)[i,d] = Σ_j W_r[i,j,d] · e[j,d]

where ``W_r`` is the relation-folded mixing tensor serving already
maintains (:mod:`repro.serving.folded`, built from the compiled kernel's
nonzero ω terms).  The head side folds the other entity axis.

This is the geometry an approximate index has to partition: maximum
inner product between the untouched anchor vector and relation-specific
candidate vectors.  Clustering the *folded* matrices (rather than the
raw entity table) aligns k-means cells with each relation's scoring
geometry — ω's zero pattern removes irrelevant slots before distances
are measured — which measurably improves recall at a fixed probe budget.

Folded matrices are built lazily per ``(relation, side)``, kept in a
configurable LRU (they are ``(N, n_e·D)`` — big at million-entity
scale), and invalidated whenever the model's ``scoring_version`` moves.
At scale the source can additionally be backed by a
:class:`~repro.core.memstore.MemStore`: :meth:`materialize` folds every
requested relation once into mapped ``.npy`` files (optionally
downcast), and later cache misses re-map those pages instead of
re-running the einsum — cheap for every pool worker and serving process
on the machine, because the pages are shared.  The store is stamped
with the model's parameter fingerprint and ignored when it does not
match, so a store from yesterday's checkpoint can never silently feed
today's index.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.base import CANDIDATE_SIDES
from repro.core.interaction import MultiEmbeddingModel
from repro.core.memstore import MemStore
from repro.errors import ServingError


@dataclass
class FoldCacheStats:
    """Counters of how the folded-matrix cache behaved.

    ``misses`` counts matrices that were not in the LRU; of those,
    ``store_hits`` were satisfied by re-mapping a materialized store
    entry instead of recomputing the fold.  ``evictions`` counts LRU
    drops — a high rate against few relations means ``max_cached`` is
    too small and the same folds are being recomputed over and over
    (the thrash the cache exists to prevent).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    store_hits: int = 0

    def to_dict(self) -> dict:
        return asdict(self)


def fold_store_key(relation: int, side: str) -> str:
    """Store entry name of one folded matrix (e.g. ``tail_3``)."""
    return f"{side}_{relation}"


def fold_candidate_matrix(
    model: MultiEmbeddingModel, relation: int, side: str = "tail"
) -> np.ndarray:
    """The ``(num_entities, n_e·D)`` folded candidate matrix of one relation.

    Row ``e`` satisfies ``S(anchor, e, r) == ⟨anchor_flat, row_e⟩`` (up
    to float re-association) for ``side="tail"`` queries, and
    symmetrically for ``side="head"``.
    """
    if not isinstance(model, MultiEmbeddingModel):
        raise ServingError(
            "folded candidate matrices require a MultiEmbeddingModel; got "
            f"{type(model).__name__}"
        )
    if side not in CANDIDATE_SIDES:
        raise ServingError(f"unknown side {side!r}; known: {CANDIDATE_SIDES}")
    if not 0 <= relation < model.num_relations:
        raise ServingError(
            f"relation id {relation} out of range [0, {model.num_relations})"
        )
    # One relation's mixing tensor from the kernel's nonzero terms only.
    mixing = model.kernel.fold_relations(
        model.relation_embeddings[relation : relation + 1]
    )[0]
    entities = model.entity_embeddings
    spec = "ijd,ejd->eid" if side == "tail" else "ijd,eid->ejd"
    folded = np.einsum(spec, mixing, entities, optimize=True)
    return folded.reshape(model.num_entities, -1)


def fold_candidate_rows(
    model: MultiEmbeddingModel, relation: int, side: str, rows: np.ndarray
) -> np.ndarray:
    """Folded candidate vectors of selected entity *rows* only.

    The incremental-maintenance analogue of
    :func:`fold_candidate_matrix`: the fold contracts per entity row, so
    folding a subset is bit-identical to slicing those rows out of the
    full matrix — at ``O(len(rows))`` instead of ``O(N)`` cost.
    """
    if not isinstance(model, MultiEmbeddingModel):
        raise ServingError(
            "folded candidate matrices require a MultiEmbeddingModel; got "
            f"{type(model).__name__}"
        )
    if side not in CANDIDATE_SIDES:
        raise ServingError(f"unknown side {side!r}; known: {CANDIDATE_SIDES}")
    if not 0 <= relation < model.num_relations:
        raise ServingError(
            f"relation id {relation} out of range [0, {model.num_relations})"
        )
    rows = np.asarray(rows, dtype=np.int64)
    mixing = model.kernel.fold_relations(
        model.relation_embeddings[relation : relation + 1]
    )[0]
    entities = model.entity_embeddings[rows]
    spec = "ijd,ejd->eid" if side == "tail" else "ijd,eid->ejd"
    folded = np.einsum(spec, mixing, entities, optimize=True)
    return folded.reshape(len(rows), -1)


class FoldedCandidateSource:
    """Versioned access to query vectors and folded candidate matrices.

    The index build path streams one ``(relation, side)`` matrix at a
    time through :meth:`candidate_matrix`; at serve time only the raw
    query vectors (:meth:`query_matrix`) and the per-partition centroids
    are needed, so the big folded matrices never stay resident.

    *store*, when given, is a :class:`~repro.core.memstore.MemStore`
    used read-through: cache misses check it before folding, and
    :meth:`materialize` fills it.  Store entries are trusted only while
    their stamped fingerprint matches the model's parameters.
    """

    def __init__(
        self,
        model: MultiEmbeddingModel,
        max_cached: int = 2,
        store: MemStore | None = None,
    ) -> None:
        if not isinstance(model, MultiEmbeddingModel):
            raise ServingError(
                "FoldedCandidateSource requires a MultiEmbeddingModel; got "
                f"{type(model).__name__}"
            )
        if max_cached < 1:
            raise ServingError("max_cached must be >= 1")
        self.model = model
        self.max_cached = int(max_cached)
        self.store = store
        self.stats = FoldCacheStats()
        self._cache: OrderedDict[tuple[int, str], np.ndarray] = OrderedDict()
        self._cache_version = model.scoring_version
        # None = not yet checked; checked lazily because fingerprinting
        # hashes the full parameter tables (expensive at scale).
        self._store_usable: bool | None = None if store is not None else False

    @property
    def version(self) -> int:
        """The model's current ``scoring_version``."""
        return self.model.scoring_version

    @property
    def num_entities(self) -> int:
        return self.model.num_entities

    @property
    def feature_dim(self) -> int:
        """Flattened entity feature width ``n_e · D``."""
        return self.model.num_entity_vectors * self.model.dim

    def cached_matrices(self) -> tuple[np.ndarray, ...]:
        """The folded matrices currently resident in the LRU.

        Exposed for memory accounting (the scale benchmarks split these
        into private vs file-backed bytes); the tuple is a snapshot —
        mutating it does not touch the cache.
        """
        return tuple(self._cache.values())

    def entity_matrix(self) -> np.ndarray:
        """The raw flattened entity table, shape ``(N, n_e·D)`` (a view)."""
        return self.model.entity_embeddings.reshape(self.num_entities, -1)

    def query_matrix(self, anchors: np.ndarray) -> np.ndarray:
        """Raw flattened anchor vectors for a query batch, shape ``(b, f)``."""
        anchors = np.asarray(anchors, dtype=np.int64)
        return self.entity_matrix()[anchors]

    # ------------------------------------------------------------ store path
    def _store_ok(self) -> bool:
        """Whether the backing store's folds match the current parameters.

        Fingerprinted once per source (hashing the tables is expensive);
        a later training step permanently disables the store for this
        source — the folds on disk describe the old parameters.
        """
        if self._store_usable is None:
            from repro.index.base import model_fingerprint

            self._store_usable = self.store.extra.get(
                "fingerprint"
            ) == model_fingerprint(self.model)
        return bool(self._store_usable)

    def materialize(
        self,
        relations=None,
        sides: tuple[str, ...] = ("tail", "head"),
        dtype: str | None = None,
    ) -> int:
        """Fold every requested ``(relation, side)`` into the backing store.

        Entries are written as mappable ``.npy`` files (optionally
        downcast to *dtype* — the fold is a shortlist geometry, not a
        score, so float32 folds only move which candidates are probed,
        never the exact re-rank).  The store is stamped with the model's
        fingerprint; returns the number of matrices written.
        """
        if self.store is None:
            raise ServingError("no store attached; pass store= to materialize folds")
        if relations is None:
            relations = range(self.model.num_relations)
        from repro.index.base import model_fingerprint

        written = 0
        for side in sides:
            for relation in relations:
                matrix = fold_candidate_matrix(self.model, int(relation), side)
                self.store.put(fold_store_key(int(relation), side), matrix, dtype=dtype)
                written += 1
        self.store.update_extra(
            fingerprint=model_fingerprint(self.model), kind="folded_candidates"
        )
        self._store_usable = True
        return written

    def candidate_matrix(self, relation: int, side: str = "tail") -> np.ndarray:
        """The folded candidate matrix of ``(relation, side)``, LRU-cached.

        Cached entries are dropped whenever the model trains, so a
        matrix handed out here always matches the current parameters.
        Misses consult the backing store (if any) before recomputing the
        fold; all outcomes are counted in :attr:`stats`.
        """
        if self._cache_version != self.version:
            self._cache.clear()
            self._cache_version = self.version
            if self.store is not None:
                # The stored folds describe the pre-training parameters.
                self._store_usable = False
        key = (int(relation), side)
        hit = self._cache.get(key)
        if hit is not None:
            self._cache.move_to_end(key)
            self.stats.hits += 1
            return hit
        self.stats.misses += 1
        name = fold_store_key(int(relation), side)
        if self.store is not None and name in self.store and self._store_ok():
            matrix = self.store.get(name)
            self.stats.store_hits += 1
        else:
            matrix = fold_candidate_matrix(self.model, int(relation), side)
        if len(self._cache) >= self.max_cached:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
        self._cache[key] = matrix
        return matrix
