"""Approximate retrieval indexes: sub-linear top-k candidate generation.

Serving's 1-vs-all sweep scores every entity per query — O(N) latency
that is fine at paper scale and fatal at the ROADMAP's millions-of-
entities scale.  This package turns top-k link prediction into
``O(num_probed)``: a coarse quantizer proposes a per-query candidate
shortlist, and the serving layer re-ranks the shortlist with *true*
model scores, so approximation only ever costs recall, never score
fidelity or the lower-id tie rule.

Layers:

* :mod:`repro.index.folded_vectors` — the retrieval geometry: per-
  relation folded candidate matrices under which Eq. 8 scoring is a
  plain inner product with the raw anchor vector;
* :mod:`repro.index.ivf` — :class:`IVFIndex`, a deterministic k-means
  inverted file with ``nlist``/``nprobe``/``spill`` knobs and process-
  pool build fan-out;
* :mod:`repro.index.exact` — :class:`ExactIndex`, the brute-force
  oracle with the identical interface;
* :mod:`repro.index.base` — the shared contract (:class:`CandidateIndex`,
  :class:`CandidateBatch`), staleness policies, and persistence
  (:func:`load_index`).

Indexes version themselves against the model's ``scoring_version`` (and
a parameter fingerprint on disk), so a model that trains after the build
is rebuilt or refused — never silently served stale.

Submodule attributes are imported lazily (PEP 562) with resolved names
cached in ``globals()``, keeping ``import repro`` free of the package's
numpy-heavy build machinery until an index is actually used.
"""

from __future__ import annotations

from repro._lazy import lazy_exports

_LAZY_EXPORTS = {
    "CandidateBatch": "repro.index.base",
    "CandidateIndex": "repro.index.base",
    "IndexBuildReport": "repro.index.base",
    "IndexUsageStats": "repro.index.base",
    "load_index": "repro.index.base",
    "model_fingerprint": "repro.index.base",
    "read_index_meta": "repro.index.base",
    "FoldedCandidateSource": "repro.index.folded_vectors",
    "fold_candidate_matrix": "repro.index.folded_vectors",
    "fold_candidate_rows": "repro.index.folded_vectors",
    "IVFIndex": "repro.index.ivf",
    "IndexUpdateReport": "repro.index.ivf",
    "deterministic_kmeans": "repro.index.ivf",
    "ExactIndex": "repro.index.exact",
}

__all__ = sorted(_LAZY_EXPORTS)

__getattr__, __dir__ = lazy_exports(__name__, globals(), _LAZY_EXPORTS)
