"""IVF candidate index: deterministic k-means cells with an ``nprobe`` knob.

The classic inverted-file recipe adapted to the multi-embedding scoring
geometry:

* **Partitioning** — for every queried ``(relation, side)`` the entities'
  *folded* candidate vectors (:mod:`repro.index.folded_vectors`) are
  clustered into ``nlist`` cells by a seeded, fixed-iteration k-means,
  so two builds from the same model and seed are identical arrays.
  Each entity is assigned to its ``spill`` nearest cells (multi-
  assignment): boundary entities — exactly the ones coarse quantizers
  lose — appear in several cells, buying recall at a small storage cost.
* **Probing** — a query ranks cells by the inner product between its
  raw anchor vector and the cell centroids (the same product the exact
  score uses, by linearity of the fold), then unions the members of the
  top ``nprobe`` cells.  Cost per query: ``O(nlist·f)`` coarse scoring
  plus exact re-ranking of ``O(num_probed)`` candidates, instead of the
  ``O(N·f)`` full sweep.
* **Exactness escape hatch** — ``nprobe >= nlist`` probes everything;
  the batch is flagged ``covers_all`` and the serving layer runs its
  ordinary full-sweep path, making the degenerate configuration
  bit-identical to serving without an index.

Partitions are built lazily on first use (only queried relations pay),
or eagerly via :meth:`IVFIndex.build`, which fans the independent
per-partition k-means runs out across worker processes through
:func:`repro.parallel.pool.run_tasks`.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.interaction import MultiEmbeddingModel
from repro.errors import CorruptArtifactError, ServingError
from repro.index.base import (
    CandidateBatch,
    CandidateIndex,
    IndexBuildReport,
    check_loaded_meta,
    read_index_meta,
    verify_index_arrays,
)
from repro.index.folded_vectors import FoldedCandidateSource
from repro.parallel.payload import ModelPayload, model_from_payload, model_to_payload
from repro.parallel.pool import run_tasks

#: Element budget for one ``(chunk, nlist)`` distance matrix.
_ASSIGN_CHUNK_ELEMENTS = 1 << 22


def _nearest_cells(points: np.ndarray, centroids: np.ndarray, spill: int) -> np.ndarray:
    """``(n, spill)`` nearest-centroid ids per point, ties toward lower id.

    Distances are ranked via ``‖x−c‖² = ‖x‖² − 2x·c + ‖c‖²`` with the
    point norm dropped (constant per row); the chunked loop bounds the
    live distance matrix regardless of ``len(points)``.
    """
    n = len(points)
    centroid_sq = np.einsum("cf,cf->c", centroids, centroids)
    out = np.empty((n, spill), dtype=np.int32)
    chunk = max(1, _ASSIGN_CHUNK_ELEMENTS // max(1, len(centroids)))
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        distances = points[start:stop] @ centroids.T
        distances *= -2.0
        distances += centroid_sq[None, :]
        if spill == 1:
            # argmin returns the first minimum: the lower cell id.
            out[start:stop, 0] = np.argmin(distances, axis=1)
        else:
            out[start:stop] = np.argsort(distances, axis=1, kind="stable")[:, :spill]
    return out


def deterministic_kmeans(
    points: np.ndarray, nlist: int, seed: int = 0, iters: int = 10
) -> np.ndarray:
    """Seeded fixed-iteration k-means; returns ``(nlist, f)`` centroids.

    Initial centroids are ``nlist`` distinct points drawn by the seeded
    generator; every later step is deterministic numpy, so the result
    depends only on ``(points, nlist, seed, iters)``.  Cells that go
    empty keep their previous centroid (no random re-seeding — that
    would make the iteration count observable in the output).
    """
    n, f = points.shape
    if not 1 <= nlist <= n:
        raise ServingError(f"nlist must be in [1, {n}], got {nlist}")
    if iters < 1:
        raise ServingError(f"iters must be >= 1, got {iters}")
    rng = np.random.default_rng(seed)
    initial = np.sort(rng.choice(n, size=nlist, replace=False))
    centroids = points[initial].astype(np.float64, copy=True)
    for _ in range(iters):
        assign = _nearest_cells(points, centroids, spill=1)[:, 0]
        counts = np.bincount(assign, minlength=nlist)
        sums = np.zeros((nlist, f), dtype=np.float64)
        np.add.at(sums, assign, points)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied, None]
    return centroids


class _Partition:
    """One ``(relation, side)`` inverted file: centroids + CSR member lists."""

    __slots__ = ("centroids", "members", "offsets")

    def __init__(self, centroids: np.ndarray, members: np.ndarray, offsets: np.ndarray):
        self.centroids = centroids
        self.members = members  # int32 entity ids, cell-major, ascending per cell
        self.offsets = offsets  # (nlist + 1,) int64 prefix sums

    def cell(self, index: int) -> np.ndarray:
        return self.members[self.offsets[index] : self.offsets[index + 1]]

    def cell_sizes(self) -> np.ndarray:
        return np.diff(self.offsets)


def _build_partition(
    source: FoldedCandidateSource,
    relation: int,
    side: str,
    nlist: int,
    seed: int,
    iters: int,
    spill: int,
) -> _Partition:
    """Cluster one relation's folded candidate matrix into an inverted file."""
    matrix = source.candidate_matrix(relation, side)
    # Distinct deterministic stream per partition: the SeedSequence spawn
    # key mixes the index seed with the partition coordinates.
    partition_seed = np.random.SeedSequence(
        [int(seed), int(relation), 0 if side == "tail" else 1]
    )
    centroids = deterministic_kmeans(
        matrix, nlist, seed=partition_seed, iters=iters
    )
    assignments = _nearest_cells(matrix, centroids, spill=min(spill, nlist))
    flat = assignments.ravel()
    ids = np.repeat(
        np.arange(source.num_entities, dtype=np.int32), assignments.shape[1]
    )
    # Stable sort by cell keeps the entity-major input order, so members
    # of each cell come out in ascending entity id.
    order = np.argsort(flat, kind="stable")
    members = ids[order]
    counts = np.bincount(flat, minlength=nlist)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return _Partition(centroids, members, offsets)


# --------------------------------------------------------- build fan-out
_BUILD_CTX: dict | None = None


def _init_build_context(
    model_or_payload: MultiEmbeddingModel | ModelPayload,
    nlist: int,
    seed: int,
    iters: int,
    spill: int,
) -> None:
    """Pool initializer: rebuild the model once per worker process."""
    global _BUILD_CTX
    model = (
        model_from_payload(model_or_payload)
        if isinstance(model_or_payload, ModelPayload)
        else model_or_payload
    )
    _BUILD_CTX = {
        "source": FoldedCandidateSource(model),
        "nlist": nlist,
        "seed": seed,
        "iters": iters,
        "spill": spill,
    }


def _build_partition_task(task: tuple[int, str]):
    """Worker task: build one ``(relation, side)`` partition, return arrays."""
    relation, side = task
    ctx = _BUILD_CTX
    if ctx is None:
        raise ServingError("index build context not initialised in this process")
    partition = _build_partition(
        ctx["source"], relation, side, ctx["nlist"], ctx["seed"], ctx["iters"], ctx["spill"]
    )
    return relation, side, partition.centroids, partition.members, partition.offsets


class IVFIndex(CandidateIndex):
    """Inverted-file approximate candidate index over a multi-embedding model.

    Parameters
    ----------
    model:
        The (trained) model whose entities are indexed.
    nlist:
        Number of k-means cells per partition; default ``≈ 2·√N``.
    nprobe:
        Default number of cells probed per query (overridable per
        search); default ``nlist // 8``.  ``nprobe == nlist`` degrades
        to the exact full sweep.
    seed, iters:
        K-means determinism knobs (seeded init, fixed iteration count).
    spill:
        Cells each entity is assigned to (multi-assignment factor).
    on_stale:
        ``"rebuild"`` (drop partitions when the model trains; default)
        or ``"error"`` (raise :class:`~repro.errors.StaleIndexError`).
    workers:
        Worker processes for eager :meth:`build` fan-out (``0`` =
        in-process; lazy per-query builds are always in-process).
    """

    kind = "ivf"

    def __init__(
        self,
        model: MultiEmbeddingModel,
        nlist: int | None = None,
        nprobe: int | None = None,
        *,
        seed: int = 0,
        iters: int = 10,
        spill: int = 2,
        on_stale: str = "rebuild",
        workers: int = 0,
    ) -> None:
        super().__init__(model, on_stale=on_stale)
        self._source = FoldedCandidateSource(model)
        n = model.num_entities
        if nlist is None:
            nlist = max(1, min(n, int(round(2.0 * math.sqrt(n)))))
        if not 1 <= nlist <= n:
            raise ServingError(f"nlist must be in [1, {n}], got {nlist}")
        self.nlist = int(nlist)
        if iters < 1:
            raise ServingError(f"iters must be >= 1, got {iters}")
        if spill < 1:
            raise ServingError(f"spill must be >= 1, got {spill}")
        if workers < 0:
            raise ServingError(f"workers must be >= 0, got {workers}")
        if seed < 0:
            raise ServingError(f"seed must be >= 0, got {seed}")
        self.seed = int(seed)
        self.iters = int(iters)
        self.spill = int(min(spill, self.nlist))
        self.workers = int(workers)
        self._nprobe = self._check_nprobe(
            nprobe if nprobe is not None else max(1, self.nlist // 8)
        )
        self._partitions: dict[tuple[int, str], _Partition] = {}
        self.partitions_built = 0
        self.rebuilds = 0

    # --------------------------------------------------------------- knobs
    def _check_nprobe(self, nprobe: int) -> int:
        nprobe = int(nprobe)
        if not 1 <= nprobe <= self.nlist:
            raise ServingError(f"nprobe must be in [1, {self.nlist}], got {nprobe}")
        return nprobe

    @property
    def nprobe(self) -> int:
        """Default cells probed per query."""
        return self._nprobe

    @nprobe.setter
    def nprobe(self, value: int) -> None:
        self._nprobe = self._check_nprobe(value)

    def invalidate(self) -> None:
        """Drop all partitions; they rebuild lazily at the current version."""
        self._partitions.clear()
        if self._version != self.model.scoring_version:
            self.rebuilds += 1
        self._version = self.model.scoring_version

    @property
    def built_partitions(self) -> tuple[tuple[int, str], ...]:
        """The ``(relation, side)`` partitions currently materialised."""
        return tuple(sorted(self._partitions))

    # --------------------------------------------------------------- build
    def _partition(self, relation: int, side: str) -> _Partition:
        if not 0 <= relation < self.model.num_relations:
            raise ServingError(
                f"relation id {relation} out of range [0, {self.model.num_relations})"
            )
        key = (int(relation), side)
        partition = self._partitions.get(key)
        if partition is None:
            partition = _build_partition(
                self._source, key[0], side, self.nlist, self.seed, self.iters, self.spill
            )
            self._partitions[key] = partition
            self.partitions_built += 1
        return partition

    def build(
        self,
        relations: np.ndarray | list[int] | None = None,
        sides: tuple[str, ...] = ("tail", "head"),
        workers: int | None = None,
    ) -> IndexBuildReport:
        """Eagerly build partitions (all relations by default).

        Independent ``(relation, side)`` k-means runs are fanned out
        through :func:`repro.parallel.pool.run_tasks`; a worker failure
        surfaces as a :class:`~repro.errors.ServingError` carrying the
        worker traceback.
        """
        start = time.perf_counter()
        self.ensure_fresh()
        if relations is None:
            relations = range(self.model.num_relations)
        wanted = [
            (int(relation), side)
            for side in sides
            for relation in relations
        ]
        missing = [key for key in wanted if key not in self._partitions]
        workers = self.workers if workers is None else int(workers)
        if missing and workers == 0:
            # In-process: build straight off the index's own cached
            # source (same code path as lazy builds) — no module-global
            # context, no recomputed folded matrices.
            for relation, side in missing:
                self._partition(relation, side)
        elif missing:
            outcomes = run_tasks(
                _build_partition_task,
                missing,
                workers=workers,
                initializer=_init_build_context,
                initargs=(
                    model_to_payload(self.model),
                    self.nlist,
                    self.seed,
                    self.iters,
                    self.spill,
                ),
            )
            for outcome in outcomes:
                if not outcome.ok:
                    raise ServingError(
                        f"index partition build failed:\n{outcome.error}"
                    )
                relation, side, centroids, members, offsets = outcome.value
                self._partitions[(relation, side)] = _Partition(
                    centroids, members, offsets
                )
                self.partitions_built += 1
        return IndexBuildReport(
            partitions_built=len(missing),
            partitions_reused=len(wanted) - len(missing),
            seconds=time.perf_counter() - start,
            sides=tuple(sides),
        )

    # --------------------------------------------------------------- search
    def candidate_lists(
        self,
        anchors: np.ndarray,
        relations: np.ndarray,
        side: str,
        nprobe: int | None = None,
    ) -> CandidateBatch:
        """Probed candidate shortlists; see :class:`CandidateBatch`.

        Cells are ranked per query by ``anchor_flat · centroid`` — by
        linearity of the fold this is exactly the model score of the
        centroid — descending, ties toward the lower cell id.  The
        returned rows are the sorted union of the probed cells' members.
        """
        self.ensure_fresh()
        anchors = np.atleast_1d(np.asarray(anchors, dtype=np.int64))
        relations = np.atleast_1d(np.asarray(relations, dtype=np.int64))
        if anchors.shape != relations.shape or anchors.ndim != 1:
            raise ServingError("anchors and relations must be 1-D arrays of equal length")
        nprobe = self._check_nprobe(self.nprobe if nprobe is None else nprobe)
        batch = len(anchors)
        if nprobe >= self.nlist:
            return CandidateBatch(
                rows=None, covers_all=True, num_scored=batch * self.num_entities
            )
        rows: list[np.ndarray | None] = [None] * batch
        num_scored = 0
        for relation in np.unique(relations):
            partition = self._partition(int(relation), side)
            selectors = np.flatnonzero(relations == relation)
            queries = self._source.query_matrix(anchors[selectors])
            cell_scores = queries @ partition.centroids.T
            probe_order = np.argsort(-cell_scores, axis=1, kind="stable")[:, :nprobe]
            for row_index, probed in zip(selectors, probe_order):
                pieces = [partition.cell(int(c)) for c in probed]
                union = np.unique(np.concatenate(pieces)) if pieces else None
                if union is None or not len(union):
                    # Degenerate partition (all probed cells empty):
                    # fall back to the full candidate range for this row.
                    union = np.arange(self.num_entities, dtype=np.int64)
                rows[int(row_index)] = union.astype(np.int64, copy=False)
                num_scored += len(union)
        return CandidateBatch(rows=rows, covers_all=False, num_scored=num_scored)

    # ----------------------------------------------------------- persistence
    def _meta(self) -> dict:
        return {
            "nlist": self.nlist,
            "nprobe": self.nprobe,
            "seed": self.seed,
            "iters": self.iters,
            "spill": self.spill,
            "feature_dim": self._source.feature_dim,
            "partitions": [[relation, side] for relation, side in self.built_partitions],
        }

    def _arrays(self) -> dict[str, np.ndarray]:
        arrays: dict[str, np.ndarray] = {}
        for (relation, side), partition in self._partitions.items():
            prefix = f"{side}_{relation}"
            arrays[f"{prefix}_centroids"] = partition.centroids
            arrays[f"{prefix}_members"] = partition.members
            arrays[f"{prefix}_offsets"] = partition.offsets
        return arrays

    @classmethod
    def load(
        cls, directory, model: MultiEmbeddingModel, on_stale: str = "rebuild"
    ) -> "IVFIndex":
        """Restore a saved IVF index against *model*.

        The persisted fingerprint must match the model's parameters;
        when it does not, ``on_stale="rebuild"`` returns an index with
        the saved hyperparameters but no partitions (they rebuild
        lazily), and ``"error"`` raises.
        """
        meta = read_index_meta(directory)
        if meta.get("kind") != cls.kind:
            raise ServingError(f"not an IVF index directory: {directory}")
        index = cls(
            model,
            nlist=meta["nlist"],
            nprobe=meta["nprobe"],
            seed=meta["seed"],
            iters=meta["iters"],
            spill=meta["spill"],
            on_stale=on_stale,
        )
        if not check_loaded_meta(meta, model, on_stale):
            return index
        partitions = [tuple(entry) for entry in meta.get("partitions", [])]
        if partitions:
            npz_path = verify_index_arrays(directory, meta)
            if not npz_path.exists():
                raise ServingError(f"index arrays missing: {npz_path}")
            try:
                with np.load(npz_path) as payload:
                    for relation, side in partitions:
                        prefix = f"{side}_{relation}"
                        index._partitions[(int(relation), side)] = _Partition(
                            payload[f"{prefix}_centroids"],
                            payload[f"{prefix}_members"],
                            payload[f"{prefix}_offsets"],
                        )
            except KeyError as error:
                raise CorruptArtifactError(
                    f"index arrays are missing partition data ({error}): {npz_path}",
                    path=npz_path,
                ) from None
            except (OSError, ValueError) as error:  # zipfile damage, bad npy headers
                raise CorruptArtifactError(
                    f"index arrays are unreadable ({error}): {npz_path}", path=npz_path
                ) from None
        return index

    def __repr__(self) -> str:
        return (
            f"IVFIndex(nlist={self.nlist}, nprobe={self.nprobe}, spill={self.spill}, "
            f"partitions={len(self._partitions)}, entities={self.num_entities})"
        )
