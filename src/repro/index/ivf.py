"""IVF candidate index: deterministic k-means cells with an ``nprobe`` knob.

The classic inverted-file recipe adapted to the multi-embedding scoring
geometry:

* **Partitioning** — for every queried ``(relation, side)`` the entities'
  *folded* candidate vectors (:mod:`repro.index.folded_vectors`) are
  clustered into ``nlist`` cells by a seeded, fixed-iteration k-means,
  so two builds from the same model and seed are identical arrays.
  Each entity is assigned to its ``spill`` nearest cells (multi-
  assignment): boundary entities — exactly the ones coarse quantizers
  lose — appear in several cells, buying recall at a small storage cost.
* **Probing** — a query ranks cells by the inner product between its
  raw anchor vector and the cell centroids (the same product the exact
  score uses, by linearity of the fold), then unions the members of the
  top ``nprobe`` cells.  Cost per query: ``O(nlist·f)`` coarse scoring
  plus exact re-ranking of ``O(num_probed)`` candidates, instead of the
  ``O(N·f)`` full sweep.
* **PQ coarse pass** (optional) — with a :class:`~repro.index.pq.PQConfig`
  the probed union is additionally pruned by an asymmetric-distance scan
  over product-quantized folded vectors: uint8 codes, one lookup table
  per query, ``refine`` survivors.  The exact re-rank downstream is
  untouched, so PQ trades recall for work, never score correctness, and
  ``pq=None`` (the default) is bit-identical to the pre-PQ index.
* **Exactness escape hatch** — ``nprobe >= nlist`` probes everything;
  the batch is flagged ``covers_all`` and the serving layer runs its
  ordinary full-sweep path, making the degenerate configuration
  bit-identical to serving without an index.

Partitions are built lazily on first use (only queried relations pay),
or eagerly via :meth:`IVFIndex.build`, which fans the independent
per-partition k-means runs out across worker processes through
:func:`repro.parallel.pool.run_tasks`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core.interaction import MultiEmbeddingModel
from repro.errors import CorruptArtifactError, ServingError
from repro.index.base import (
    CandidateBatch,
    CandidateIndex,
    IndexBuildReport,
    check_loaded_meta,
    read_index_arrays,
    read_index_meta,
)
from repro.index.folded_vectors import (
    FoldCacheStats,
    FoldedCandidateSource,
    fold_candidate_rows,
)
from repro.index.pq import PQConfig, ProductQuantizer
from repro.obs import registry as obs_registry
from repro.obs.trace import trace_scope
from repro.parallel.payload import ModelPayload, model_from_payload, model_to_payload
from repro.parallel.pool import run_tasks

#: Element budget for one ``(chunk, nlist)`` distance matrix.
_ASSIGN_CHUNK_ELEMENTS = 1 << 22


def _nearest_cells(points: np.ndarray, centroids: np.ndarray, spill: int) -> np.ndarray:
    """``(n, spill)`` nearest-centroid ids per point, ties toward lower id.

    Distances are ranked via ``‖x−c‖² = ‖x‖² − 2x·c + ‖c‖²`` with the
    point norm dropped (constant per row); the chunked loop bounds the
    live distance matrix regardless of ``len(points)``.
    """
    n = len(points)
    centroid_sq = np.einsum("cf,cf->c", centroids, centroids)
    out = np.empty((n, spill), dtype=np.int32)
    chunk = max(1, _ASSIGN_CHUNK_ELEMENTS // max(1, len(centroids)))
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        distances = points[start:stop] @ centroids.T
        distances *= -2.0
        distances += centroid_sq[None, :]
        if spill == 1:
            # argmin returns the first minimum: the lower cell id.
            out[start:stop, 0] = np.argmin(distances, axis=1)
        else:
            out[start:stop] = np.argsort(distances, axis=1, kind="stable")[:, :spill]
    return out


def deterministic_kmeans(
    points: np.ndarray,
    nlist: int,
    seed: int = 0,
    iters: int = 10,
    train_sample: int | None = None,
) -> np.ndarray:
    """Seeded fixed-iteration k-means; returns ``(nlist, f)`` centroids.

    Initial centroids are ``nlist`` distinct points drawn by the seeded
    generator; every later step is deterministic numpy, so the result
    depends only on ``(points, nlist, seed, iters, train_sample)``.
    Cells that go empty keep their previous centroid (no random
    re-seeding — that would make the iteration count observable in the
    output).

    *train_sample* bounds the fitting cost at scale: centroids are
    fitted on a seeded row subset of that size (the caller still assigns
    *every* point to the fitted centroids).  ``None`` — the default —
    fits on all rows and is bit-identical to the historical behaviour.
    """
    n, f = points.shape
    if not 1 <= nlist <= n:
        raise ServingError(f"nlist must be in [1, {n}], got {nlist}")
    if iters < 1:
        raise ServingError(f"iters must be >= 1, got {iters}")
    if train_sample is not None and train_sample < 1:
        raise ServingError(f"train_sample must be >= 1, got {train_sample}")
    rng = np.random.default_rng(seed)
    if train_sample is not None and train_sample < n:
        sample = np.sort(rng.choice(n, size=max(train_sample, nlist), replace=False))
        points = np.asarray(points[sample])
        n = len(points)
    initial = np.sort(rng.choice(n, size=nlist, replace=False))
    centroids = points[initial].astype(np.float64, copy=True)
    for _ in range(iters):
        assign = _nearest_cells(points, centroids, spill=1)[:, 0]
        counts = np.bincount(assign, minlength=nlist)
        sums = np.zeros((nlist, f), dtype=np.float64)
        np.add.at(sums, assign, points)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied, None]
    return centroids


class _Partition:
    """One ``(relation, side)`` inverted file: centroids + CSR member lists.

    With PQ enabled the partition also carries the relation's uint8
    codes (one row per entity, entity-id order) and the trained
    quantizer, so the ADC scan needs no folded matrix at query time.
    """

    __slots__ = ("centroids", "members", "offsets", "codes", "pq")

    def __init__(
        self,
        centroids: np.ndarray,
        members: np.ndarray,
        offsets: np.ndarray,
        codes: np.ndarray | None = None,
        pq: ProductQuantizer | None = None,
    ):
        self.centroids = centroids
        self.members = members  # int32 entity ids, cell-major, ascending per cell
        self.offsets = offsets  # (nlist + 1,) int64 prefix sums
        self.codes = codes  # (num_entities, m) uint8, or None
        self.pq = pq

    def cell(self, index: int) -> np.ndarray:
        return self.members[self.offsets[index] : self.offsets[index + 1]]

    def cell_sizes(self) -> np.ndarray:
        return np.diff(self.offsets)


@dataclass(frozen=True)
class IndexUpdateReport:
    """What one :meth:`IVFIndex.update_entities` call did.

    ``drift`` is the fraction of *pre-existing* dirty entities whose
    cell assignment changed, pooled over all built partitions (freshly
    created entities always get new assignments and are excluded, so
    drift measures how far the frozen centroids have decayed, not how
    much the graph grew).  When drift exceeds the caller's threshold the
    splice is discarded and the whole index is invalidated instead —
    ``rebuild_triggered`` reports that outcome.
    """

    partitions_updated: int
    entities_updated: int
    new_entities: int
    drift: float
    rebuild_triggered: bool
    seconds: float

    def to_dict(self) -> dict:
        return {
            "partitions_updated": self.partitions_updated,
            "entities_updated": self.entities_updated,
            "new_entities": self.new_entities,
            "drift": self.drift,
            "rebuild_triggered": self.rebuild_triggered,
            "seconds": self.seconds,
        }


def _partition_seed(seed: int, relation: int, side: str) -> np.random.SeedSequence:
    """Distinct deterministic stream per partition: the SeedSequence spawn
    key mixes the index seed with the partition coordinates."""
    return np.random.SeedSequence(
        [int(seed), int(relation), 0 if side == "tail" else 1]
    )


def _build_partition(
    source: FoldedCandidateSource,
    relation: int,
    side: str,
    nlist: int,
    seed: int,
    iters: int,
    spill: int,
    train_sample: int | None = None,
    pq: PQConfig | None = None,
) -> _Partition:
    """Cluster one relation's folded candidate matrix into an inverted file."""
    matrix = source.candidate_matrix(relation, side)
    centroids = deterministic_kmeans(
        matrix,
        nlist,
        seed=_partition_seed(seed, relation, side),
        iters=iters,
        train_sample=train_sample,
    )
    assignments = _nearest_cells(matrix, centroids, spill=min(spill, nlist))
    flat = assignments.ravel()
    ids = np.repeat(
        np.arange(source.num_entities, dtype=np.int32), assignments.shape[1]
    )
    # Stable sort by cell keeps the entity-major input order, so members
    # of each cell come out in ascending entity id.
    order = np.argsort(flat, kind="stable")
    members = ids[order]
    counts = np.bincount(flat, minlength=nlist)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    codes = quantizer = None
    if pq is not None:
        # Same mixing recipe as the cell seed, with an extra component so
        # the PQ codebooks never reuse the k-means stream.
        pq_seed = np.random.SeedSequence(
            [int(seed), int(relation), 0 if side == "tail" else 1, 1]
        )
        quantizer = ProductQuantizer.fit(matrix, pq, seed=pq_seed)
        codes = quantizer.encode(matrix)
    return _Partition(centroids, members, offsets, codes=codes, pq=quantizer)


# --------------------------------------------------------- build fan-out
_BUILD_CTX: dict | None = None


def _init_build_context(
    model_or_payload: MultiEmbeddingModel | ModelPayload,
    nlist: int,
    seed: int,
    iters: int,
    spill: int,
    train_sample: int | None = None,
    pq: dict | None = None,
) -> None:
    """Pool initializer: rebuild the model once per worker process."""
    global _BUILD_CTX
    model = (
        model_from_payload(model_or_payload)
        if isinstance(model_or_payload, ModelPayload)
        else model_or_payload
    )
    _BUILD_CTX = {
        "source": FoldedCandidateSource(model),
        "nlist": nlist,
        "seed": seed,
        "iters": iters,
        "spill": spill,
        "train_sample": train_sample,
        "pq": PQConfig.from_dict(pq) if pq is not None else None,
    }


def _build_partition_task(task: tuple[int, str]):
    """Worker task: build one ``(relation, side)`` partition, return arrays."""
    relation, side = task
    ctx = _BUILD_CTX
    if ctx is None:
        raise ServingError("index build context not initialised in this process")
    partition = _build_partition(
        ctx["source"],
        relation,
        side,
        ctx["nlist"],
        ctx["seed"],
        ctx["iters"],
        ctx["spill"],
        train_sample=ctx["train_sample"],
        pq=ctx["pq"],
    )
    codebooks = partition.pq.codebooks if partition.pq is not None else None
    return (
        relation,
        side,
        partition.centroids,
        partition.members,
        partition.offsets,
        partition.codes,
        codebooks,
    )


class IVFIndex(CandidateIndex):
    """Inverted-file approximate candidate index over a multi-embedding model.

    Parameters
    ----------
    model:
        The (trained) model whose entities are indexed.
    nlist:
        Number of k-means cells per partition; default ``≈ 2·√N``.
    nprobe:
        Default number of cells probed per query (overridable per
        search); default ``nlist // 8``.  ``nprobe == nlist`` degrades
        to the exact full sweep.
    seed, iters:
        K-means determinism knobs (seeded init, fixed iteration count).
    spill:
        Cells each entity is assigned to (multi-assignment factor).
    pq:
        Optional :class:`~repro.index.pq.PQConfig`; when set, probed
        unions larger than ``pq.refine`` are pruned to their
        ``pq.refine`` best candidates by an ADC scan over uint8 codes
        before the exact re-rank.  ``None`` (default) keeps the
        unpruned union — bit-identical to the pre-PQ index.
    train_sample:
        Seeded row-sample size for the cell k-means (assignment still
        covers every entity); ``None`` fits on all rows.
    fold_cache:
        LRU capacity of the folded-matrix cache (matrices are
        ``(N, n_e·D)`` — at million-entity scale each one is the
        dominant build-time allocation).
    fold_store:
        Optional :class:`~repro.core.memstore.MemStore` of materialized
        folded matrices; cache misses re-map these instead of
        recomputing the fold (see
        :meth:`~repro.index.folded_vectors.FoldedCandidateSource.materialize`).
    on_stale:
        ``"rebuild"`` (drop partitions when the model trains; default)
        or ``"error"`` (raise :class:`~repro.errors.StaleIndexError`).
    workers:
        Worker processes for eager :meth:`build` fan-out (``0`` =
        in-process; lazy per-query builds are always in-process).
    """

    kind = "ivf"

    def __init__(
        self,
        model: MultiEmbeddingModel,
        nlist: int | None = None,
        nprobe: int | None = None,
        *,
        seed: int = 0,
        iters: int = 10,
        spill: int = 2,
        pq: PQConfig | None = None,
        train_sample: int | None = None,
        fold_cache: int = 2,
        fold_store=None,
        on_stale: str = "rebuild",
        workers: int = 0,
    ) -> None:
        super().__init__(model, on_stale=on_stale)
        self._source = FoldedCandidateSource(model, max_cached=fold_cache, store=fold_store)
        n = model.num_entities
        if nlist is None:
            nlist = max(1, min(n, int(round(2.0 * math.sqrt(n)))))
        if not 1 <= nlist <= n:
            raise ServingError(f"nlist must be in [1, {n}], got {nlist}")
        self.nlist = int(nlist)
        if iters < 1:
            raise ServingError(f"iters must be >= 1, got {iters}")
        if spill < 1:
            raise ServingError(f"spill must be >= 1, got {spill}")
        if workers < 0:
            raise ServingError(f"workers must be >= 0, got {workers}")
        if seed < 0:
            raise ServingError(f"seed must be >= 0, got {seed}")
        if train_sample is not None and train_sample < 1:
            raise ServingError(f"train_sample must be >= 1, got {train_sample}")
        if pq is not None and not isinstance(pq, PQConfig):
            raise ServingError(f"pq must be a PQConfig or None, got {type(pq).__name__}")
        if pq is not None and self._source.feature_dim % pq.m != 0:
            raise ServingError(
                f"pq.m must divide the folded feature width {self._source.feature_dim}, "
                f"got m={pq.m}"
            )
        self.seed = int(seed)
        self.iters = int(iters)
        self.spill = int(min(spill, self.nlist))
        self.pq = pq
        self.train_sample = None if train_sample is None else int(train_sample)
        self.workers = int(workers)
        self._nprobe = self._check_nprobe(
            nprobe if nprobe is not None else max(1, self.nlist // 8)
        )
        self._partitions: dict[tuple[int, str], _Partition] = {}
        self.partitions_built = 0
        self.rebuilds = 0

    @property
    def fold_cache_stats(self) -> FoldCacheStats:
        """Hit/miss/eviction counters of the folded-matrix cache."""
        return self._source.stats

    # --------------------------------------------------------------- knobs
    def _check_nprobe(self, nprobe: int) -> int:
        nprobe = int(nprobe)
        if not 1 <= nprobe <= self.nlist:
            raise ServingError(f"nprobe must be in [1, {self.nlist}], got {nprobe}")
        return nprobe

    @property
    def nprobe(self) -> int:
        """Default cells probed per query."""
        return self._nprobe

    @nprobe.setter
    def nprobe(self, value: int) -> None:
        self._nprobe = self._check_nprobe(value)

    def invalidate(self) -> None:
        """Drop all partitions; they rebuild lazily at the current version."""
        self._partitions.clear()
        if self._version != self.model.scoring_version:
            self.rebuilds += 1
        self._version = self.model.scoring_version

    @property
    def built_partitions(self) -> tuple[tuple[int, str], ...]:
        """The ``(relation, side)`` partitions currently materialised."""
        return tuple(sorted(self._partitions))

    # --------------------------------------------------------------- build
    def _partition(self, relation: int, side: str) -> _Partition:
        if not 0 <= relation < self.model.num_relations:
            raise ServingError(
                f"relation id {relation} out of range [0, {self.model.num_relations})"
            )
        key = (int(relation), side)
        partition = self._partitions.get(key)
        if partition is None:
            partition = _build_partition(
                self._source,
                key[0],
                side,
                self.nlist,
                self.seed,
                self.iters,
                self.spill,
                train_sample=self.train_sample,
                pq=self.pq,
            )
            self._partitions[key] = partition
            self.partitions_built += 1
        return partition

    def build(
        self,
        relations: np.ndarray | list[int] | None = None,
        sides: tuple[str, ...] = ("tail", "head"),
        workers: int | None = None,
    ) -> IndexBuildReport:
        """Eagerly build partitions (all relations by default).

        Independent ``(relation, side)`` k-means runs are fanned out
        through :func:`repro.parallel.pool.run_tasks`; a worker failure
        surfaces as a :class:`~repro.errors.ServingError` carrying the
        worker traceback.
        """
        start = time.perf_counter()
        self.ensure_fresh()
        if relations is None:
            relations = range(self.model.num_relations)
        wanted = [
            (int(relation), side)
            for side in sides
            for relation in relations
        ]
        missing = [key for key in wanted if key not in self._partitions]
        workers = self.workers if workers is None else int(workers)
        if missing and workers == 0:
            # In-process: build straight off the index's own cached
            # source (same code path as lazy builds) — no module-global
            # context, no recomputed folded matrices.
            for relation, side in missing:
                self._partition(relation, side)
        elif missing:
            outcomes = run_tasks(
                _build_partition_task,
                missing,
                workers=workers,
                initializer=_init_build_context,
                initargs=(
                    model_to_payload(self.model),
                    self.nlist,
                    self.seed,
                    self.iters,
                    self.spill,
                    self.train_sample,
                    self.pq.to_dict() if self.pq is not None else None,
                ),
            )
            for outcome in outcomes:
                if not outcome.ok:
                    raise ServingError(
                        f"index partition build failed:\n{outcome.error}"
                    )
                relation, side, centroids, members, offsets, codes, codebooks = (
                    outcome.value
                )
                self._partitions[(relation, side)] = _Partition(
                    centroids,
                    members,
                    offsets,
                    codes=codes,
                    pq=ProductQuantizer(codebooks) if codebooks is not None else None,
                )
                self.partitions_built += 1
        return IndexBuildReport(
            partitions_built=len(missing),
            partitions_reused=len(wanted) - len(missing),
            seconds=time.perf_counter() - start,
            sides=tuple(sides),
        )

    # --------------------------------------------------- incremental upkeep
    def update_entities(
        self, dirty: np.ndarray, *, drift_threshold: float = 0.5
    ) -> IndexUpdateReport:
        """Re-fold and re-assign only the *dirty* entities, in place.

        The incremental maintenance path for warm-start ingestion: after
        embedding rows change (fine-tune) or appear (growth), each built
        partition re-folds just those rows, re-assigns them against its
        *frozen* centroids, and splices the affected cells' member lists
        — ``O(dirty)`` fold work instead of a full k-means rebuild.  PQ
        codes of dirty rows are re-encoded with the frozen codebooks.
        Cell order, member ascending order, and untouched entities'
        assignments are preserved exactly, and the index resyncs to the
        model's current ``scoring_version`` without counting a rebuild.

        Frozen centroids decay as the graph moves: when more than
        *drift_threshold* of the pre-existing dirty entities change
        cells, the splice is abandoned and :meth:`invalidate` drops the
        partitions for a from-scratch lazy rebuild (``rebuild_triggered``
        in the report).
        """
        start = time.perf_counter()
        if not 0.0 < drift_threshold <= 1.0:
            raise ServingError(
                f"drift_threshold must be in (0, 1], got {drift_threshold}"
            )
        dirty = np.unique(np.asarray(dirty, dtype=np.int64))
        if len(dirty) and (dirty[0] < 0 or dirty[-1] >= self.model.num_entities):
            raise ServingError(
                f"dirty entity ids out of range [0, {self.model.num_entities})"
            )
        if not len(dirty) or not self._partitions:
            # Nothing to splice; adopt the current model version so later
            # queries don't treat an empty/no-op update as staleness.
            self._version = self.model.scoring_version
            return IndexUpdateReport(
                partitions_updated=0,
                entities_updated=int(len(dirty)),
                new_entities=0,
                drift=0.0,
                rebuild_triggered=False,
                seconds=time.perf_counter() - start,
            )

        # Pass 1: fold + re-assign every partition's dirty rows and measure
        # assignment drift, deferring all mutation so a drift-triggered
        # rebuild never leaves the index half-spliced.
        staged: list[tuple[tuple[int, str], np.ndarray, np.ndarray, int]] = []
        changed = 0
        existing_total = 0
        max_new = 0
        for key, partition in self._partitions.items():
            relation, side = key
            folded = fold_candidate_rows(self.model, relation, side, dirty)
            assignments = _nearest_cells(folded, partition.centroids, self.spill)
            old_count = int(len(partition.members)) // self.spill
            existing = dirty[dirty < old_count]
            max_new = max(max_new, int(len(dirty) - len(existing)))
            if len(existing):
                old_cells: dict[int, set[int]] = {}
                for cell_id in range(self.nlist):
                    cell = partition.cell(cell_id)
                    for entity in cell[np.isin(cell, existing)]:
                        old_cells.setdefault(int(entity), set()).add(cell_id)
                positions = np.searchsorted(dirty, existing)
                for entity, row in zip(existing, assignments[positions]):
                    if old_cells.get(int(entity), set()) != set(int(c) for c in row):
                        changed += 1
                existing_total += len(existing)
            staged.append((key, folded, assignments, old_count))

        drift = changed / existing_total if existing_total else 0.0
        if drift > drift_threshold:
            self.invalidate()
            return IndexUpdateReport(
                partitions_updated=0,
                entities_updated=int(len(dirty)),
                new_entities=max_new,
                drift=drift,
                rebuild_triggered=True,
                seconds=time.perf_counter() - start,
            )

        # Pass 2: splice.  Partitions are replaced, not written into —
        # loaded memmapped tables stay untouched on disk.
        for key, folded, assignments, old_count in staged:
            partition = self._partitions[key]
            flat = assignments.ravel()
            add_ids = np.repeat(dirty, assignments.shape[1]).astype(np.int32)
            order = np.argsort(flat, kind="stable")
            add_sorted = add_ids[order]
            add_offsets = np.concatenate(
                [[0], np.cumsum(np.bincount(flat, minlength=self.nlist))]
            ).astype(np.int64)
            cells = []
            for cell_id in range(self.nlist):
                kept = partition.cell(cell_id)
                kept = kept[~np.isin(kept, dirty)]
                adds = add_sorted[add_offsets[cell_id] : add_offsets[cell_id + 1]]
                cells.append(np.sort(np.concatenate([kept, adds])) if len(adds) else kept)
            members = (
                np.concatenate(cells) if cells else np.empty(0, dtype=np.int32)
            ).astype(np.int32, copy=False)
            offsets = np.concatenate(
                [[0], np.cumsum([len(cell) for cell in cells])]
            ).astype(np.int64)
            codes = None
            if partition.pq is not None:
                codes = np.empty(
                    (self.model.num_entities, partition.codes.shape[1]), dtype=np.uint8
                )
                codes[:old_count] = partition.codes[:old_count]
                codes[dirty] = partition.pq.encode(folded)
            self._partitions[key] = _Partition(
                partition.centroids,
                members,
                offsets,
                codes=codes,
                pq=partition.pq,
            )
        self._version = self.model.scoring_version
        return IndexUpdateReport(
            partitions_updated=len(staged),
            entities_updated=int(len(dirty)),
            new_entities=max_new,
            drift=drift,
            rebuild_triggered=False,
            seconds=time.perf_counter() - start,
        )

    # --------------------------------------------------------------- search
    def candidate_lists(
        self,
        anchors: np.ndarray,
        relations: np.ndarray,
        side: str,
        nprobe: int | None = None,
    ) -> CandidateBatch:
        """Probed candidate shortlists; see :class:`CandidateBatch`.

        Cells are ranked per query by ``anchor_flat · centroid`` — by
        linearity of the fold this is exactly the model score of the
        centroid — descending, ties toward the lower cell id.  The
        returned rows are the sorted union of the probed cells' members.
        """
        self.ensure_fresh()
        anchors = np.atleast_1d(np.asarray(anchors, dtype=np.int64))
        relations = np.atleast_1d(np.asarray(relations, dtype=np.int64))
        if anchors.shape != relations.shape or anchors.ndim != 1:
            raise ServingError("anchors and relations must be 1-D arrays of equal length")
        nprobe = self._check_nprobe(self.nprobe if nprobe is None else nprobe)
        batch = len(anchors)
        if nprobe >= self.nlist:
            return CandidateBatch(
                rows=None, covers_all=True, num_scored=batch * self.num_entities
            )
        rows: list[np.ndarray | None] = [None] * batch
        num_scored = 0
        num_scanned = 0
        pq_rows = 0
        for relation in np.unique(relations):
            partition = self._partition(int(relation), side)
            selectors = np.flatnonzero(relations == relation)
            queries = self._source.query_matrix(anchors[selectors])
            cell_scores = queries @ partition.centroids.T
            probe_order = np.argsort(-cell_scores, axis=1, kind="stable")[:, :nprobe]
            luts = (
                partition.pq.lookup_tables(queries)
                if partition.pq is not None
                else None
            )
            for position, (row_index, probed) in enumerate(zip(selectors, probe_order)):
                pieces = [partition.cell(int(c)) for c in probed]
                union = np.unique(np.concatenate(pieces)) if pieces else None
                if union is None or not len(union):
                    # Degenerate partition (all probed cells empty):
                    # fall back to the full candidate range for this row.
                    union = np.arange(self.num_entities, dtype=np.int64)
                union = union.astype(np.int64, copy=False)
                if luts is not None and len(union) > self.pq.refine:
                    # ADC coarse pass: keep the refine best by approximate
                    # score (descending, ties to the lower id — union is
                    # ascending and the sort is stable), then restore the
                    # ascending-id contract for the exact re-rank.
                    with trace_scope("index.pq_prune", candidates=len(union)):
                        approx = ProductQuantizer.adc_scores(
                            luts[position], partition.codes[union]
                        )
                        keep = np.argsort(-approx, kind="stable")[: self.pq.refine]
                    num_scanned += len(union)
                    pq_rows += 1
                    union = np.sort(union[keep])
                rows[int(row_index)] = union
                num_scored += len(union)
        if pq_rows and obs_registry.active_registry() is not None:
            # Each ADC row scanned its whole union and kept `refine` ids.
            obs_registry.inc("index.pq.rows_pruned", pq_rows)
            obs_registry.inc(
                "index.pq.candidates_pruned", num_scanned - pq_rows * self.pq.refine
            )
        return CandidateBatch(
            rows=rows,
            covers_all=False,
            num_scored=num_scored,
            num_scanned=num_scanned,
        )

    # ----------------------------------------------------------- persistence
    def _meta(self) -> dict:
        return {
            "nlist": self.nlist,
            "nprobe": self.nprobe,
            "seed": self.seed,
            "iters": self.iters,
            "spill": self.spill,
            "pq": self.pq.to_dict() if self.pq is not None else None,
            "train_sample": self.train_sample,
            "fold_cache": self._source.max_cached,
            "feature_dim": self._source.feature_dim,
            "partitions": [[relation, side] for relation, side in self.built_partitions],
        }

    def resident_arrays(self) -> list[np.ndarray]:
        """Every array this index currently references.

        Partition tables plus the folded matrices resident in the fold
        LRU — the working set a serving process actually holds.  Used by
        the memory benchmarks with
        :func:`~repro.core.memstore.array_memory` to split private bytes
        from shared file-backed mappings.
        """
        out: list[np.ndarray] = list(self._arrays().values())
        out.extend(self._source.cached_matrices())
        return out

    def _arrays(self) -> dict[str, np.ndarray]:
        arrays: dict[str, np.ndarray] = {}
        for (relation, side), partition in self._partitions.items():
            prefix = f"{side}_{relation}"
            arrays[f"{prefix}_centroids"] = partition.centroids
            arrays[f"{prefix}_members"] = partition.members
            arrays[f"{prefix}_offsets"] = partition.offsets
            if partition.pq is not None:
                arrays[f"{prefix}_codes"] = partition.codes
                arrays[f"{prefix}_codebooks"] = partition.pq.codebooks
        return arrays

    @classmethod
    def load(
        cls,
        directory,
        model: MultiEmbeddingModel,
        on_stale: str = "rebuild",
        fold_store=None,
    ) -> "IVFIndex":
        """Restore a saved IVF index against *model*.

        The persisted fingerprint must match the model's parameters;
        when it does not, ``on_stale="rebuild"`` returns an index with
        the saved hyperparameters but no partitions (they rebuild
        lazily), and ``"error"`` raises.  Memmap-layout saves come back
        as read-only mappings — partition tables stay file-backed and
        shared across every process serving the run.
        """
        meta = read_index_meta(directory)
        if meta.get("kind") != cls.kind:
            raise ServingError(f"not an IVF index directory: {directory}")
        pq_meta = meta.get("pq")
        index = cls(
            model,
            nlist=meta["nlist"],
            nprobe=meta["nprobe"],
            seed=meta["seed"],
            iters=meta["iters"],
            spill=meta["spill"],
            pq=PQConfig.from_dict(pq_meta) if pq_meta is not None else None,
            train_sample=meta.get("train_sample"),
            fold_cache=meta.get("fold_cache", 2),
            fold_store=fold_store,
            on_stale=on_stale,
        )
        if not check_loaded_meta(meta, model, on_stale):
            return index
        partitions = [tuple(entry) for entry in meta.get("partitions", [])]
        if partitions:
            arrays = read_index_arrays(directory, meta)
            try:
                for relation, side in partitions:
                    prefix = f"{side}_{relation}"
                    pq = None
                    codes = arrays.get(f"{prefix}_codes")
                    if codes is not None:
                        pq = ProductQuantizer(arrays[f"{prefix}_codebooks"])
                    index._partitions[(int(relation), side)] = _Partition(
                        arrays[f"{prefix}_centroids"],
                        arrays[f"{prefix}_members"],
                        arrays[f"{prefix}_offsets"],
                        codes=codes,
                        pq=pq,
                    )
            except KeyError as error:
                raise CorruptArtifactError(
                    f"index arrays are missing partition data ({error}): {directory}",
                    path=directory,
                ) from None
        return index

    def __repr__(self) -> str:
        pq = f", pq=m{self.pq.m}/r{self.pq.refine}" if self.pq is not None else ""
        return (
            f"IVFIndex(nlist={self.nlist}, nprobe={self.nprobe}, spill={self.spill}"
            f"{pq}, partitions={len(self._partitions)}, entities={self.num_entities})"
        )
