"""Shared contract of the approximate-retrieval subsystem.

A *candidate index* answers one narrow question for the serving layer:
given a batch of ``(anchor, relation)`` queries, which entity ids are
worth scoring exactly?  The :class:`~repro.serving.predictor.LinkPredictor`
then re-ranks that shortlist with true model scores, so an index never
changes *what* a score is — only *how many* candidates pay for one.

Contract highlights every implementation must honour:

* **Ascending rows** — each per-query candidate array is sorted by
  entity id, so the predictor's stable descending-score sort keeps the
  repository-wide lower-id tie rule.
* **Exhaustive means exact** — when a search would probe every
  partition cell, :class:`CandidateBatch.covers_all` is set and the
  predictor takes its ordinary full-sweep path, making the degenerate
  configuration (``nprobe == nlist``, or :class:`ExactIndex`)
  bit-identical to serving without an index by construction.
* **Versioned against training** — indexes remember the model's
  ``scoring_version`` at build time; :meth:`CandidateIndex.ensure_fresh`
  either rebuilds or raises :class:`~repro.errors.StaleIndexError`, so
  a resumed training run can never be silently served from a stale
  partition.  Persistence adds a content fingerprint for the same
  guarantee across process boundaries.
"""

from __future__ import annotations

import abc
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.interaction import MultiEmbeddingModel
from repro.core.memstore import STORE_META_FILE, MemStore
from repro.errors import CorruptArtifactError, ServingError, StaleIndexError
from repro.reliability.atomic import atomic_write_bytes, atomic_write_json, npz_bytes
from repro.reliability.manifest import sha256_bytes, sha256_file

#: Files that make up a saved index directory.
INDEX_META_FILE = "meta.json"
INDEX_ARRAYS_FILE = "arrays.npz"
INDEX_STORE_DIR = "store"

_FORMAT_VERSION = 1

#: Valid staleness policies.
STALE_POLICIES = ("rebuild", "error")


def model_fingerprint(model) -> str:
    """Content hash of everything the model scores with.

    ``scoring_version`` is a per-process counter and restarts at zero on
    every checkpoint load, so persisted indexes are validated against
    the parameter *bytes* instead: embedding tables plus ω.
    """
    digest = hashlib.sha256()
    for array in (
        np.ascontiguousarray(model.entity_embeddings),
        np.ascontiguousarray(model.relation_embeddings),
        np.ascontiguousarray(model.omega),
    ):
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


@dataclass
class CandidateBatch:
    """Shortlists produced by one :meth:`CandidateIndex.candidate_lists` call.

    ``rows`` holds one ascending int64 id array per query; it is ``None``
    when ``covers_all`` is set (every entity would be listed, so the
    caller should take its exact full-sweep path instead).
    ``num_scored`` counts the candidate ids the caller will score —
    the quantity the sub-linear claim is measured in.  ``num_scanned``
    counts ids the index itself examined with a cheap approximate pass
    (the PQ/ADC scan) before shortlisting; it is 0 for indexes that
    return the probed union unpruned.
    """

    rows: list[np.ndarray] | None
    covers_all: bool
    num_scored: int
    num_scanned: int = 0


@dataclass
class IndexUsageStats:
    """Per-predictor bookkeeping of what an index actually saved.

    Maintained by :class:`~repro.serving.predictor.LinkPredictor` across
    its index-served queries; ``recall_*`` fields are filled only when
    recall sampling is enabled (see ``recall_sample_every``).
    """

    num_entities: int
    queries: int = 0
    entities_scored: int = 0
    entities_scanned: int = 0
    exhaustive_queries: int = 0
    recall_checks: int = 0
    recall_total: float = 0.0
    fold_cache_hits: int = 0
    fold_cache_misses: int = 0

    @property
    def probed_fraction(self) -> float:
        """Mean fraction of the entity table scored per query (1.0 = exhaustive)."""
        if not self.queries or not self.num_entities:
            return 0.0
        return self.entities_scored / (self.queries * self.num_entities)

    @property
    def recall_estimate(self) -> float | None:
        """Mean sampled recall@k against the exact path, or None if unsampled."""
        if not self.recall_checks:
            return None
        return self.recall_total / self.recall_checks

    def to_dict(self) -> dict:
        """JSON-compatible snapshot, derived properties included."""
        return {
            "num_entities": self.num_entities,
            "queries": self.queries,
            "entities_scored": self.entities_scored,
            "entities_scanned": self.entities_scanned,
            "exhaustive_queries": self.exhaustive_queries,
            "recall_checks": self.recall_checks,
            "probed_fraction": self.probed_fraction,
            "recall_estimate": self.recall_estimate,
            "fold_cache_hits": self.fold_cache_hits,
            "fold_cache_misses": self.fold_cache_misses,
        }


@dataclass
class IndexBuildReport:
    """What an eager :meth:`CandidateIndex.build` call did."""

    partitions_built: int
    partitions_reused: int
    seconds: float
    sides: tuple[str, ...] = field(default_factory=tuple)


class CandidateIndex(abc.ABC):
    """Abstract candidate shortlist generator over one model's entities."""

    #: Registry/persistence discriminator; set by subclasses.
    kind: str = "base"

    def __init__(self, model: MultiEmbeddingModel, on_stale: str = "rebuild") -> None:
        if on_stale not in STALE_POLICIES:
            raise ServingError(
                f"on_stale must be one of {list(STALE_POLICIES)}, got {on_stale!r}"
            )
        self.model = model
        self.on_stale = on_stale
        self._version = model.scoring_version

    # ------------------------------------------------------------- interface
    @property
    def num_entities(self) -> int:
        return self.model.num_entities

    @property
    def built_version(self) -> int:
        """The model ``scoring_version`` the current index data matches."""
        return self._version

    @abc.abstractmethod
    def candidate_lists(
        self,
        anchors: np.ndarray,
        relations: np.ndarray,
        side: str,
        nprobe: int | None = None,
    ) -> CandidateBatch:
        """Ascending candidate id shortlists for a query batch."""

    def build(
        self,
        relations=None,
        sides: tuple[str, ...] = ("tail", "head"),
        workers: int | None = None,
    ) -> IndexBuildReport:
        """Eagerly materialise any precomputed data (no-op by default).

        Index kinds with nothing to precompute (:class:`ExactIndex`)
        inherit this, so pipeline code can always build-then-save an
        index regardless of its kind.
        """
        return IndexBuildReport(
            partitions_built=0, partitions_reused=0, seconds=0.0, sides=tuple(sides)
        )

    @abc.abstractmethod
    def invalidate(self) -> None:
        """Drop any precomputed data and resync to the model's current version."""

    def ensure_fresh(self) -> bool:
        """Reconcile the index with the model's current parameter version.

        Returns True when stale data was discarded (``on_stale="rebuild"``,
        the default); raises :class:`StaleIndexError` under
        ``on_stale="error"``.  Fresh indexes are a no-op.
        """
        if self.model.scoring_version == self._version:
            return False
        if self.on_stale == "error":
            raise StaleIndexError(
                f"{self.kind} index was built at model version {self._version} "
                f"but the model is now at {self.model.scoring_version}; rebuild "
                "the index or construct it with on_stale='rebuild'"
            )
        self.invalidate()
        return True

    # ----------------------------------------------------------- persistence
    def _meta(self) -> dict:
        """Subclass hook: extra JSON-compatible metadata to persist."""
        return {}

    def _arrays(self) -> dict[str, np.ndarray]:
        """Subclass hook: arrays to persist."""
        return {}

    def save(self, directory: str | Path, *, memmap: bool = False) -> Path:
        """Write the index next to a checkpoint; returns the directory.

        ``memmap=False`` packs every array into one ``arrays.npz``;
        ``memmap=True`` writes a :class:`~repro.core.memstore.MemStore`
        of plain ``.npy`` files instead, so loading maps the partition
        tables (centroids, member lists, PQ codes) read-only and every
        process serving the run shares the pages.

        Crash-safe either way: all files go through atomic writes, and
        the meta records a sha256 chain over the payload (the npz bytes,
        or the store meta — which in turn records per-file hashes) so a
        torn or bit-flipped artifact raises
        :class:`~repro.errors.CorruptArtifactError` at load time (the
        serving layer then degrades to exact sweeps instead of serving
        from a silently damaged partition table).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        meta = {
            "format_version": _FORMAT_VERSION,
            "kind": self.kind,
            "num_entities": self.num_entities,
            "fingerprint": model_fingerprint(self.model),
            "storage": "memmap" if memmap else "npz",
            **self._meta(),
        }
        arrays = self._arrays()
        if arrays and memmap:
            # begin/flush: the store meta commits once, after every
            # payload landed, so a torn rewrite never half-replaces it.
            store = MemStore.begin(directory / INDEX_STORE_DIR, extra={"kind": self.kind})
            for name, array in arrays.items():
                store.put(name, array, flush=False)
            store.flush()
            meta["store_sha256"] = sha256_file(
                directory / INDEX_STORE_DIR / STORE_META_FILE
            )
            # Don't leave a stale npz from an earlier save of the other layout.
            (directory / INDEX_ARRAYS_FILE).unlink(missing_ok=True)
        elif arrays:
            payload = npz_bytes(arrays)
            meta["arrays_sha256"] = sha256_bytes(payload)
            atomic_write_bytes(directory / INDEX_ARRAYS_FILE, payload)
        atomic_write_json(directory / INDEX_META_FILE, meta, sort_keys=True)
        return directory


def read_index_meta(directory: str | Path) -> dict:
    """The ``meta.json`` of a saved index directory.

    A meta file that exists but cannot be parsed raises
    :class:`~repro.errors.CorruptArtifactError` (torn write / bit rot),
    not a raw ``JSONDecodeError``.
    """
    directory = Path(directory)
    meta_path = directory / INDEX_META_FILE
    if not meta_path.exists():
        raise ServingError(f"not an index directory (no {INDEX_META_FILE}): {directory}")
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CorruptArtifactError(
            f"index metadata is torn or corrupt ({error}): {meta_path}", path=meta_path
        ) from None
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ServingError(
            f"unsupported index format version: {meta.get('format_version')}"
        )
    return meta


def verify_index_arrays(directory: str | Path, meta: dict) -> Path:
    """Integrity-check a saved index's arrays file against its meta.

    Returns the arrays path.  Raises
    :class:`~repro.errors.CorruptArtifactError` when the file is
    missing-but-promised or fails the sha256 recorded at save time;
    indexes saved before the hash existed skip the check.
    """
    npz_path = Path(directory) / INDEX_ARRAYS_FILE
    expected = meta.get("arrays_sha256")
    if not npz_path.exists():
        if expected is not None:
            raise CorruptArtifactError(
                f"index arrays recorded in meta.json are missing: {npz_path}",
                path=npz_path,
            )
        return npz_path
    if expected is not None and sha256_file(npz_path) != expected:
        raise CorruptArtifactError(
            "index arrays failed their integrity check (sha256 mismatch against "
            f"meta.json): {npz_path}",
            path=npz_path,
        )
    return npz_path


def read_index_arrays(directory: str | Path, meta: dict) -> dict[str, np.ndarray]:
    """Every persisted array of a saved index, dispatching on its layout.

    ``storage == "memmap"`` opens the index's array store and returns
    read-only mappings (verified against the sha256 chain rooted in
    ``meta.json``); the npz layout verifies and unpacks ``arrays.npz``
    into ordinary in-memory arrays.  Either way damage surfaces as a
    typed :class:`~repro.errors.CorruptArtifactError`, and an index
    saved with no arrays returns an empty dict.
    """
    directory = Path(directory)
    if meta.get("storage") == "memmap":
        store_dir = directory / INDEX_STORE_DIR
        store = MemStore.open(store_dir)
        expected = meta.get("store_sha256")
        if expected is not None and sha256_file(store_dir / STORE_META_FILE) != expected:
            raise CorruptArtifactError(
                "index array store meta failed its integrity check (sha256 "
                f"mismatch against {INDEX_META_FILE}): {store_dir / STORE_META_FILE}",
                path=store_dir / STORE_META_FILE,
            )
        return store.get_all()
    npz_path = verify_index_arrays(directory, meta)
    if not npz_path.exists():
        return {}
    try:
        with np.load(npz_path) as payload:
            return {name: payload[name] for name in payload.files}
    except (OSError, ValueError) as error:  # zipfile damage, bad npy headers
        raise CorruptArtifactError(
            f"index arrays are unreadable ({error}): {npz_path}", path=npz_path
        ) from None


def check_loaded_meta(meta: dict, model, on_stale: str) -> bool:
    """Validate a saved index's meta against *model*.

    Returns True when the persisted data is usable as-is; False when it
    is stale but the policy allows rebuilding.  Mismatched id spaces are
    always an error (that is the wrong model, not a stale one).
    """
    if meta.get("num_entities") != model.num_entities:
        raise ServingError(
            f"index was built over {meta.get('num_entities')} entities but the "
            f"model has {model.num_entities}; this index belongs to a different model"
        )
    if meta.get("fingerprint") == model_fingerprint(model):
        return True
    if on_stale == "error":
        raise StaleIndexError(
            "saved index fingerprint does not match the model's parameters "
            "(the model trained after the index was built); rebuild the index "
            "or load with on_stale='rebuild'"
        )
    return False


def load_index(directory: str | Path, model, on_stale: str = "rebuild", fold_store=None):
    """Load any saved index, dispatching on its persisted ``kind``.

    Stale indexes (fingerprint mismatch) come back empty under the
    ``"rebuild"`` policy — partitions are rebuilt lazily on first use —
    and raise :class:`StaleIndexError` under ``"error"``.  *fold_store*
    (a :class:`~repro.core.memstore.MemStore` of materialized folded
    matrices) is forwarded to index kinds that serve from folds, so a
    reloaded index keeps re-mapping shared pages instead of refolding.
    """
    meta = read_index_meta(directory)
    kind = meta.get("kind")
    if kind == "ivf":
        from repro.index.ivf import IVFIndex

        return IVFIndex.load(directory, model, on_stale=on_stale, fold_store=fold_store)
    if kind == "exact":
        from repro.index.exact import ExactIndex

        return ExactIndex.load(directory, model, on_stale=on_stale)
    raise ServingError(f"unknown index kind in {directory}: {kind!r}")
