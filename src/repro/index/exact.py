"""Brute-force candidate index: the equivalence oracle.

:class:`ExactIndex` implements the :class:`~repro.index.base.CandidateIndex`
interface with no data structure at all — every query's shortlist is
"all entities", flagged ``covers_all`` so the serving layer runs its
ordinary full-sweep path.  Its value is contractual, not computational:

* it pins down the semantics an approximate index must converge to
  (``IVFIndex`` with ``nprobe == nlist`` and ``ExactIndex`` are
  regression-tested bit-identical to an index-free ``LinkPredictor``);
* it lets callers flip a config between exact and approximate retrieval
  without touching any other code path;
* its trivial :meth:`candidate_lists` documents the batch contract for
  future index kinds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ServingError
from repro.index.base import CandidateBatch, CandidateIndex, check_loaded_meta, read_index_meta


class ExactIndex(CandidateIndex):
    """The identity shortlist: every entity, every query, exact serving."""

    kind = "exact"

    def candidate_lists(
        self,
        anchors: np.ndarray,
        relations: np.ndarray,
        side: str,
        nprobe: int | None = None,
    ) -> CandidateBatch:
        """All entities for every query (``covers_all`` batches)."""
        self.ensure_fresh()
        anchors = np.atleast_1d(np.asarray(anchors, dtype=np.int64))
        relations = np.atleast_1d(np.asarray(relations, dtype=np.int64))
        if anchors.shape != relations.shape or anchors.ndim != 1:
            raise ServingError("anchors and relations must be 1-D arrays of equal length")
        return CandidateBatch(
            rows=None,
            covers_all=True,
            num_scored=len(anchors) * self.num_entities,
        )

    def invalidate(self) -> None:
        """Nothing to drop — only the version watermark moves."""
        self._version = self.model.scoring_version

    def ensure_fresh(self) -> bool:
        """An exact index has no precomputed data, so it is never stale."""
        moved = self._version != self.model.scoring_version
        self._version = self.model.scoring_version
        return moved

    @classmethod
    def load(cls, directory, model, on_stale: str = "rebuild") -> "ExactIndex":
        """Restore a saved exact index (validates the model identity)."""
        meta = read_index_meta(directory)
        if meta.get("kind") != cls.kind:
            raise ServingError(f"not an exact index directory: {directory}")
        index = cls(model, on_stale=on_stale)
        # An exact index has no stale data to guard, but a fingerprint
        # mismatch under "error" still signals the checkpoint moved.
        check_loaded_meta(meta, model, on_stale)
        return index

    def __repr__(self) -> str:
        return f"ExactIndex(entities={self.num_entities})"
