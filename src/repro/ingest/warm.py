"""Warm-start delta training: grow the tables, fine-tune touched rows only.

After a delta lands, the model's embedding tables are grown in place
(:meth:`~repro.core.interaction.MultiEmbeddingModel.grow`) and only the
*touched* entities — endpoints of added/deleted triples plus freshly
created ids — are fine-tuned.  Positives are the training triples whose
endpoints are both touched; negatives are corrupted *within* the touched
pool.  Every batch therefore gathers and scatters only touched entity
rows, so the fused trainer's row-blocked sparse optimizer updates leave
all other entity embeddings bit-identical — the property that makes
incremental ingestion cheap relative to retraining.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.interaction import MultiEmbeddingModel
from repro.errors import IngestError
from repro.kg.graph import KGDataset
from repro.nn.optimizers import make_optimizer
from repro.training.trainer import TrainingConfig


@dataclass(frozen=True)
class WarmStartReport:
    """What one warm-start pass did (growth + touched-row fine-tune)."""

    grew_entities: int = 0
    grew_relations: int = 0
    triples: int = 0
    steps: int = 0
    epochs: int = 0
    final_loss: float = 0.0
    seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "grew_entities": self.grew_entities,
            "grew_relations": self.grew_relations,
            "triples": self.triples,
            "steps": self.steps,
            "epochs": self.epochs,
            "final_loss": self.final_loss,
            "seconds": self.seconds,
        }


def grow_model(
    model,
    num_entities: int,
    num_relations: int,
    *,
    seed: int = 0,
    initializer: str = "unit_normalized",
) -> tuple[int, int]:
    """Grow *model*'s tables to the delta-applied dataset's id spaces."""
    if not isinstance(model, MultiEmbeddingModel):
        raise IngestError(
            "warm-start ingestion requires a MultiEmbeddingModel, got "
            f"{type(model).__name__}"
        )
    rng = np.random.default_rng(seed)
    return model.grow(num_entities, num_relations, rng=rng, initializer=initializer)


def _corrupt_within(
    positives: np.ndarray,
    pool: np.ndarray,
    num_negatives: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniform corruption restricted to the touched-entity *pool*.

    Same head/tail coin flip and avoid-identity resampling as
    :class:`~repro.training.negatives.UniformNegativeSampler`, but
    replacements are drawn from *pool* so negative gradients also land
    only on touched rows.
    """
    negatives = np.tile(positives, (num_negatives, 1))
    corrupt_head = rng.random(len(negatives)) < 0.5
    replacements = rng.choice(pool, size=len(negatives))
    if len(pool) > 1:
        current = np.where(corrupt_head, negatives[:, 0], negatives[:, 1])
        for _ in range(10):
            clash = replacements == current
            if not clash.any():
                break
            replacements[clash] = rng.choice(pool, size=int(clash.sum()))
    negatives[corrupt_head, 0] = replacements[corrupt_head]
    negatives[~corrupt_head, 1] = replacements[~corrupt_head]
    return negatives


def fine_tune_delta(
    model: MultiEmbeddingModel,
    dataset: KGDataset,
    touched_entities: np.ndarray,
    config: TrainingConfig,
) -> WarmStartReport:
    """Fine-tune only the touched entity rows on their induced subgraph.

    The training subset is every train triple with *both* endpoints in
    *touched_entities*; with pool-restricted negatives, the sparse fused
    update path guarantees untouched entity rows stay bit-identical.
    Relations used by those triples are updated too (they are shared
    parameters — there is no per-relation isolation to preserve).
    """
    start = time.perf_counter()
    touched = np.unique(np.asarray(touched_entities, dtype=np.int64))
    if len(touched) and (touched[0] < 0 or touched[-1] >= model.num_entities):
        raise IngestError(
            f"touched entity ids out of range [0, {model.num_entities})"
        )
    if not len(touched):
        return WarmStartReport(seconds=time.perf_counter() - start)
    rows = dataset.train.array
    mask = np.isin(rows[:, 0], touched) & np.isin(rows[:, 1], touched)
    triples = rows[mask]
    if not len(triples):
        return WarmStartReport(seconds=time.perf_counter() - start)
    rng = np.random.default_rng(config.seed)
    optimizer = make_optimizer(config.optimizer, config.learning_rate)
    loss = 0.0
    steps = 0
    for _ in range(config.epochs):
        order = rng.permutation(len(triples))
        for lo in range(0, len(triples), config.batch_size):
            batch = triples[order[lo : lo + config.batch_size]]
            negatives = _corrupt_within(batch, touched, config.num_negatives, rng)
            loss = model.train_step(batch, negatives, optimizer)
            steps += 1
    model.release_training_buffers()
    return WarmStartReport(
        triples=int(len(triples)),
        steps=steps,
        epochs=config.epochs,
        final_loss=float(loss),
        seconds=time.perf_counter() - start,
    )
