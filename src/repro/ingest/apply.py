"""Transactional application of a :class:`GraphDelta` to a dataset.

:func:`apply_delta` is all-or-nothing: every name is resolved and every
conflict checked against *copies* before any output object is built, so
a failing delta leaves the input dataset untouched (it is never mutated
— datasets are immutable; application produces a successor).

The successor is constructed to be indistinguishable from a from-scratch
build: applying a delta yields exactly the dataset
:meth:`~repro.kg.graph.KGDataset.from_labeled_triples` would produce
from the final triple lists (property-tested), and an empty delta
returns the *same object*, bit-identical to the static path.  The filter
index, when the source dataset has one, is derived incrementally via
:meth:`~repro.kg.graph.FilterIndex.add_triples` /
:meth:`~repro.kg.graph.FilterIndex.remove_triples` — never rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IngestError, VocabularyError
from repro.ingest.delta import GraphDelta
from repro.kg.graph import KGDataset
from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary

_EMPTY_IDS = np.empty(0, dtype=np.int64)


def _pack(rows: np.ndarray, num_entities: int, num_relations: int) -> np.ndarray:
    """Collision-free int64 key per ``(h, t, r)`` row."""
    return (rows[:, 0] * num_entities + rows[:, 1]) * num_relations + rows[:, 2]


@dataclass(frozen=True)
class DeltaStats:
    """What one applied delta changed, in the successor's id spaces.

    ``touched_entities`` / ``touched_relations`` are the sorted unique
    ids whose embeddings the warm-start trainer should fine-tune: every
    endpoint of an added or deleted triple plus every freshly created
    id.
    """

    num_added: int
    num_deleted: int
    new_entities: int
    new_relations: int
    touched_entities: np.ndarray
    touched_relations: np.ndarray

    def to_dict(self) -> dict:
        return {
            "num_added": self.num_added,
            "num_deleted": self.num_deleted,
            "new_entities": self.new_entities,
            "new_relations": self.new_relations,
            "touched_entities": int(len(self.touched_entities)),
            "touched_relations": int(len(self.touched_relations)),
        }


def _empty_stats() -> DeltaStats:
    return DeltaStats(0, 0, 0, 0, _EMPTY_IDS, _EMPTY_IDS)


def apply_delta(
    dataset: KGDataset, delta: GraphDelta, name: str | None = None
) -> tuple[KGDataset, DeltaStats]:
    """Apply *delta* to *dataset* transactionally; returns the successor.

    An empty delta returns ``dataset`` itself (object-identical — the
    mutation path and the static construction path coincide exactly).
    Conflicts raise :class:`~repro.errors.IngestError` before anything
    is built: deleting a triple absent from train, adding a triple any
    split already contains, or duplicate vocabulary names.
    """
    if not isinstance(delta, GraphDelta):
        raise IngestError(f"expected a GraphDelta, got {type(delta).__name__}")
    if delta.is_empty:
        return dataset, _empty_stats()

    entities = Vocabulary(dataset.entities.to_list())
    relations = Vocabulary(dataset.relations.to_list())
    old_ne, old_nr = len(entities), len(relations)
    try:
        for label in delta.add_entities:
            entities.add(label)
        for label in delta.add_relations:
            relations.add(label)
    except VocabularyError as error:
        raise IngestError(f"delta vocabulary growth failed: {error}") from None

    added = np.empty((len(delta.add_triples), 3), dtype=np.int64)
    for i, (h, t, r) in enumerate(delta.add_triples):
        added[i, 0] = entities.get_or_add(h)
        added[i, 1] = entities.get_or_add(t)
        added[i, 2] = relations.get_or_add(r)
    deleted = np.empty((len(delta.delete_triples), 3), dtype=np.int64)
    for i, (h, t, r) in enumerate(delta.delete_triples):
        try:
            deleted[i, 0] = entities.index(h)
            deleted[i, 1] = entities.index(t)
            deleted[i, 2] = relations.index(r)
        except VocabularyError as error:
            raise IngestError(
                f"cannot delete {(h, t, r)!r}: {error}"
            ) from None
    ne, nr = len(entities), len(relations)

    train_set = dataset.train.as_set()
    for row, labeled in zip(deleted, delta.delete_triples):
        if (int(row[0]), int(row[1]), int(row[2])) not in train_set:
            raise IngestError(
                f"cannot delete {labeled!r}: not a training triple"
            )
    known = train_set | dataset.valid.as_set() | dataset.test.as_set()
    for row, labeled in zip(added, delta.add_triples):
        if (int(row[0]), int(row[1]), int(row[2])) in known:
            raise IngestError(
                f"cannot add {labeled!r}: the dataset already contains it"
            )

    train_arr = dataset.train.array
    if len(deleted):
        keep = ~np.isin(_pack(train_arr, ne, nr), _pack(deleted, ne, nr))
        train_arr = train_arr[keep]
    if len(added):
        train_arr = np.concatenate([train_arr, added])
    if not len(train_arr):
        raise IngestError("delta would leave the training split empty")

    # Derive the successor's filter index incrementally when the source
    # already paid for one; otherwise leave it to the lazy property (the
    # single from-scratch construction site).
    filter_index = dataset._filter_index
    if filter_index is not None:
        filter_index = filter_index.copy()
        filter_index.grow(ne, nr)
        if len(deleted):
            filter_index.remove_triples(deleted)
        if len(added):
            filter_index.add_triples(added)

    successor = KGDataset(
        entities=entities,
        relations=relations,
        train=TripleSet(train_arr, ne, nr),
        valid=TripleSet(dataset.valid.array, ne, nr),
        test=TripleSet(dataset.test.array, ne, nr),
        name=dataset.name if name is None else name,
        _filter_index=filter_index,
    )
    touched_entities = np.unique(
        np.concatenate(
            [
                added[:, :2].ravel(),
                deleted[:, :2].ravel(),
                np.arange(old_ne, ne, dtype=np.int64),
            ]
        )
    )
    touched_relations = np.unique(
        np.concatenate(
            [added[:, 2], deleted[:, 2], np.arange(old_nr, nr, dtype=np.int64)]
        )
    )
    stats = DeltaStats(
        num_added=len(added),
        num_deleted=len(deleted),
        new_entities=ne - old_ne,
        new_relations=nr - old_nr,
        touched_entities=touched_entities,
        touched_relations=touched_relations,
    )
    return successor, stats


class MutableGraph:
    """A dataset handle with transactional mutation and a version counter.

    ``graph_version`` increases monotonically with every applied
    non-empty delta — the version tag replicas key their invalidation on
    (the TransEdge framing).  An empty delta commits as a no-op without
    moving the version, so the empty transaction is bit-identical to not
    transacting at all.
    """

    def __init__(self, dataset: KGDataset, graph_version: int = 0) -> None:
        if graph_version < 0:
            raise IngestError(f"graph_version must be >= 0, got {graph_version}")
        self._dataset = dataset
        self._graph_version = int(graph_version)

    @property
    def dataset(self) -> KGDataset:
        """The current dataset snapshot (immutable; replaced by :meth:`apply`)."""
        return self._dataset

    @property
    def graph_version(self) -> int:
        """Monotonic count of applied non-empty deltas."""
        return self._graph_version

    def apply(self, delta: GraphDelta) -> DeltaStats:
        """Apply *delta*; on success the snapshot and version advance together."""
        dataset, stats = apply_delta(self._dataset, delta)
        if dataset is not self._dataset:
            self._dataset = dataset
            self._graph_version += 1
        return stats

    def __repr__(self) -> str:
        return (
            f"MutableGraph(version={self._graph_version}, "
            f"dataset={self._dataset!r})"
        )
