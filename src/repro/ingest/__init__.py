"""Incremental graph ingestion: deltas, warm-start training, index upkeep.

The mutation side of the repository's unified mutation/query API.  A
:class:`GraphDelta` names a transactional batch of graph changes;
:func:`apply_delta` lands it on an immutable
:class:`~repro.kg.graph.KGDataset` (producing a successor whose filter
index is updated incrementally, never rebuilt); :class:`MutableGraph`
tracks the monotonically increasing ``graph_version``; and
:func:`ingest_delta` runs the full warm-start pipeline — table growth,
touched-row fine-tuning, incremental IVF maintenance — that the
``ingest`` CLI command and the serving daemon's ``apply_delta`` op
share.
"""

from repro.ingest.apply import DeltaStats, MutableGraph, apply_delta
from repro.ingest.delta import GraphDelta
from repro.ingest.service import IngestOutcome, ingest_delta
from repro.ingest.warm import WarmStartReport, fine_tune_delta, grow_model

__all__ = [
    "DeltaStats",
    "GraphDelta",
    "IngestOutcome",
    "MutableGraph",
    "WarmStartReport",
    "apply_delta",
    "fine_tune_delta",
    "grow_model",
    "ingest_delta",
]
