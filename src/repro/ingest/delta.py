"""GraphDelta: an explicit, serialisable graph mutation.

Following the Transaction Logic framing (PAPERS.md), a graph update is
a first-class *event value* with well-defined apply semantics — not
ad-hoc array surgery.  A :class:`GraphDelta` names everything it does at
the label level (so a delta file is portable across id assignments),
and :func:`repro.ingest.apply.apply_delta` gives it all-or-nothing
transactional semantics against a :class:`~repro.kg.graph.KGDataset`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import IngestError

#: A ``(head, tail, relation)`` triple of vocabulary names.
NameTriple = tuple[str, str, str]


def _as_names(values, what: str) -> tuple[str, ...]:
    out = []
    for value in values:
        if not isinstance(value, str):
            raise IngestError(f"{what} entries must be strings, got {value!r}")
        out.append(value)
    return tuple(out)


def _as_name_triples(rows, what: str) -> tuple[NameTriple, ...]:
    out = []
    for row in rows:
        row = tuple(row)
        if len(row) != 3 or not all(isinstance(part, str) for part in row):
            raise IngestError(
                f"{what} entries must be (head, tail, relation) name triples, "
                f"got {row!r}"
            )
        out.append(row)
    return tuple(out)


@dataclass(frozen=True)
class GraphDelta:
    """One transactional batch of graph mutations, at the name level.

    Attributes
    ----------
    add_entities, add_relations:
        New vocabulary names to register explicitly.  Triples in
        :attr:`add_triples` may also introduce names implicitly — like
        :meth:`~repro.kg.graph.KGDataset.from_labeled_triples`, unknown
        names are appended in first-occurrence order.
    add_triples:
        ``(head, tail, relation)`` name triples appended to the training
        split.
    delete_triples:
        ``(head, tail, relation)`` name triples removed from the
        training split (every name must already exist; valid/test are
        immutable under deltas).
    """

    add_entities: tuple[str, ...] = field(default_factory=tuple)
    add_relations: tuple[str, ...] = field(default_factory=tuple)
    add_triples: tuple[NameTriple, ...] = field(default_factory=tuple)
    delete_triples: tuple[NameTriple, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "add_entities", _as_names(self.add_entities, "add_entities")
        )
        object.__setattr__(
            self, "add_relations", _as_names(self.add_relations, "add_relations")
        )
        object.__setattr__(
            self, "add_triples", _as_name_triples(self.add_triples, "add_triples")
        )
        object.__setattr__(
            self,
            "delete_triples",
            _as_name_triples(self.delete_triples, "delete_triples"),
        )
        for what, values in (
            ("add_triples", self.add_triples),
            ("delete_triples", self.delete_triples),
        ):
            if len(set(values)) != len(values):
                raise IngestError(f"delta {what} contains duplicate triples")
        conflict = set(self.add_triples) & set(self.delete_triples)
        if conflict:
            raise IngestError(
                f"delta both adds and deletes {len(conflict)} triples "
                f"(e.g. {sorted(conflict)[0]!r}); a transaction must pick one"
            )

    @property
    def is_empty(self) -> bool:
        """Whether applying this delta changes nothing."""
        return not (
            self.add_entities
            or self.add_relations
            or self.add_triples
            or self.delete_triples
        )

    # -------------------------------------------------------------- round-trip
    def to_dict(self) -> dict:
        """JSON-compatible representation (lists of lists)."""
        return {
            "add_entities": list(self.add_entities),
            "add_relations": list(self.add_relations),
            "add_triples": [list(row) for row in self.add_triples],
            "delete_triples": [list(row) for row in self.delete_triples],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GraphDelta":
        if not isinstance(data, dict):
            raise IngestError(f"delta payload must be an object, got {type(data).__name__}")
        unknown = set(data) - {
            "add_entities",
            "add_relations",
            "add_triples",
            "delete_triples",
        }
        if unknown:
            raise IngestError(f"unknown delta keys: {sorted(unknown)}")
        return cls(
            add_entities=tuple(data.get("add_entities", ())),
            add_relations=tuple(data.get("add_relations", ())),
            add_triples=_as_name_triples(data.get("add_triples", ()), "add_triples"),
            delete_triples=_as_name_triples(
                data.get("delete_triples", ()), "delete_triples"
            ),
        )

    def save(self, path: str | Path) -> Path:
        """Write the delta as JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "GraphDelta":
        """Read a delta written by :meth:`save`."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
            raise IngestError(f"cannot read delta file {path}: {error}") from None
        return cls.from_dict(data)

    def __len__(self) -> int:
        """Total mutations carried (vocab adds + triple adds/deletes)."""
        return (
            len(self.add_entities)
            + len(self.add_relations)
            + len(self.add_triples)
            + len(self.delete_triples)
        )
