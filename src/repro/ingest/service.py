"""End-to-end ingestion: one call from delta to updated model + index.

:func:`ingest_delta` is the orchestration the ``ingest`` CLI command and
the serving daemon's ``apply_delta`` op share: apply the delta to the
dataset, grow the embedding tables, fine-tune the touched rows, and
maintain the retrieval index incrementally (when one is attached).  Its
keyword knobs mirror :class:`~repro.pipeline.config.IngestSection`
field-for-field, so config-driven callers can splat the section in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.ingest.apply import DeltaStats, _empty_stats, apply_delta
from repro.ingest.delta import GraphDelta
from repro.ingest.warm import WarmStartReport, fine_tune_delta, grow_model
from repro.kg.graph import KGDataset
from repro.obs import registry as obs_registry
from repro.obs.trace import trace_scope
from repro.training.trainer import TrainingConfig


@dataclass
class IngestOutcome:
    """Everything one :func:`ingest_delta` call produced."""

    dataset: KGDataset
    stats: DeltaStats
    applied: bool
    warm: WarmStartReport | None = None
    index_update: object | None = None
    seconds: float = 0.0

    def to_dict(self) -> dict:
        """JSON-compatible receipt (the dataset itself is omitted)."""
        out = {
            "applied": self.applied,
            "seconds": self.seconds,
            **self.stats.to_dict(),
        }
        if self.warm is not None:
            out["warm"] = self.warm.to_dict()
        if self.index_update is not None:
            out["index"] = self.index_update.to_dict()
        return out


def ingest_delta(
    model,
    dataset: KGDataset,
    delta: GraphDelta,
    *,
    index=None,
    epochs: int = 2,
    batch_size: int = 256,
    learning_rate: float = 0.01,
    optimizer: str = "adam",
    num_negatives: int = 1,
    seed: int = 0,
    drift_threshold: float = 0.5,
    grow_initializer: str = "unit_normalized",
) -> IngestOutcome:
    """Apply *delta* end to end; returns the successor dataset + reports.

    ``epochs=0`` grows the tables but skips fine-tuning.  *index*, when
    given, is maintained through its ``update_entities`` hook (the IVF
    re-fold/re-assign path with drift-triggered rebuild) or, for index
    kinds without one, invalidated so it resyncs lazily.  An empty delta
    is a committed no-op: the same dataset object comes back, the model
    and index are untouched.
    """
    start = time.perf_counter()
    with trace_scope(
        "ingest.delta", adds=len(delta.add_triples), deletes=len(delta.delete_triples)
    ):
        new_dataset, stats = apply_delta(dataset, delta)
        if new_dataset is dataset:
            obs_registry.inc("ingest.noop_deltas")
            return IngestOutcome(
                dataset,
                _empty_stats(),
                applied=False,
                seconds=time.perf_counter() - start,
            )
        grew = grow_model(
            model,
            new_dataset.num_entities,
            new_dataset.num_relations,
            seed=seed,
            initializer=grow_initializer,
        )
        warm = WarmStartReport()
        if epochs > 0:
            config = TrainingConfig(
                epochs=epochs,
                batch_size=batch_size,
                learning_rate=learning_rate,
                optimizer=optimizer,
                num_negatives=num_negatives,
                seed=seed,
                validate_every=10**9,
                patience=10**9,
            )
            with trace_scope("ingest.fine_tune", epochs=epochs):
                warm = fine_tune_delta(
                    model, new_dataset, stats.touched_entities, config
                )
        warm = replace(warm, grew_entities=grew[0], grew_relations=grew[1])
        index_update = None
        if index is not None:
            with trace_scope("ingest.index_update"):
                if hasattr(index, "update_entities"):
                    index_update = index.update_entities(
                        stats.touched_entities, drift_threshold=drift_threshold
                    )
                else:
                    index.invalidate()
    elapsed = time.perf_counter() - start
    if obs_registry.active_registry() is not None:
        obs_registry.inc("ingest.deltas_applied")
        obs_registry.inc("ingest.triples_added", stats.num_added)
        obs_registry.inc("ingest.triples_deleted", stats.num_deleted)
        obs_registry.observe("ingest.delta_seconds", elapsed)
    return IngestOutcome(
        dataset=new_dataset,
        stats=stats,
        applied=True,
        warm=warm,
        index_update=index_update,
        seconds=elapsed,
    )
