"""repro.obs — the telemetry plane: metrics, tracing, exposition.

Why this package exists
-----------------------
Every subsystem grown so far — the serving daemon, the process pool,
the IVF/PQ index, ingestion — kept its own ad-hoc counters with no
shared schema, no latency distributions, and no way to answer "where
did this slow request spend its time?".  This package unifies them:

:mod:`repro.obs.registry`
    Deterministic counters, gauges, and fixed-bucket latency
    histograms.  Instrumented code calls module-level free functions
    (``inc`` / ``observe`` / ``gauge_set``) that are a ``None``-check
    no-op until :func:`install_metrics_registry` arms them — the same
    discipline as ``install_fault_injector``.  Snapshots are picklable
    and merge across process boundaries, so pool workers ship their
    metrics home alongside task results.

:mod:`repro.obs.trace`
    ``trace_scope()`` spans with explicit parent/child ids and a
    bounded in-memory ring; runs emit ``telemetry.jsonl`` (excluded
    from the artifact manifest — telemetry never changes what a run
    hashes to).

:mod:`repro.obs.expo` / :mod:`repro.obs.summary` / :mod:`repro.obs.collect`
    Read side: Prometheus-style text dump, the ``repro obs`` span-tree
    summary, and publication of cache/index tallies as first-class
    registry metrics.

Like :mod:`repro.index`, the package is lazy (PEP 562): importing
``repro.obs`` pays for nothing until an attribute is touched, and the
hot-path modules are stdlib-only.
"""

from repro._lazy import lazy_exports

_LAZY_EXPORTS = {
    "DEFAULT_BUCKETS_S": "repro.obs.registry",
    "HistogramSnapshot": "repro.obs.registry",
    "MetricsRegistry": "repro.obs.registry",
    "MetricsSnapshot": "repro.obs.registry",
    "active_registry": "repro.obs.registry",
    "gauge_max": "repro.obs.registry",
    "gauge_set": "repro.obs.registry",
    "inc": "repro.obs.registry",
    "install_metrics_registry": "repro.obs.registry",
    "merge_snapshot": "repro.obs.registry",
    "metrics_scope": "repro.obs.registry",
    "observe": "repro.obs.registry",
    "Span": "repro.obs.trace",
    "Tracer": "repro.obs.trace",
    "active_tracer": "repro.obs.trace",
    "current_span_id": "repro.obs.trace",
    "install_tracer": "repro.obs.trace",
    "telemetry_scope": "repro.obs.trace",
    "trace_scope": "repro.obs.trace",
    "prometheus_text": "repro.obs.expo",
    "publish_predictor_metrics": "repro.obs.collect",
    "TELEMETRY_FILE": "repro.obs.summary",
    "load_telemetry": "repro.obs.summary",
    "render_span_tree": "repro.obs.summary",
    "summarize_run": "repro.obs.summary",
}

__getattr__, __dir__ = lazy_exports(__name__, globals(), _LAZY_EXPORTS)

__all__ = sorted(_LAZY_EXPORTS)
