"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

The registry is the write side of the telemetry plane.  Three metric
families, all with deterministic state given a deterministic workload:

``counters``
    Monotonic integers (``inc``).  Merging snapshots sums them, so a
    counter aggregated across pool workers equals the serial count.
``gauges``
    Last-written floats (``gauge_set``) with a ``gauge_max`` variant for
    peaks.  Merging takes the max — the only order-independent choice —
    so gauges are best used for high-water marks and sampled levels.
``histograms``
    Fixed-bucket latency histograms (``observe``).  Bucket bounds are
    chosen at first observe and frozen into the snapshot; merging sums
    per-bucket counts, so quantile estimates compose across processes.

Instrumented code never talks to a registry instance directly — it
calls the module-level :func:`inc` / :func:`gauge_set` /
:func:`observe` free functions, which are a ``None``-check no-op unless
a registry has been installed with :func:`install_metrics_registry`
(exactly the :func:`repro.reliability.faults.install_fault_injector`
discipline, so the disabled path costs one global load and one
comparison).

Snapshots (:class:`MetricsSnapshot`) are frozen, picklable, and merge
with :meth:`MetricsSnapshot.merged` — the parallel pool attaches one to
each :class:`~repro.parallel.pool.TaskOutcome` and the parent folds
them back into its own registry, so cross-process aggregation needs no
shared memory.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ConfigError

#: Default histogram bounds (seconds): 100 µs … 10 s in a 1-2.5-5-ish
#: ladder, plus the implicit +inf bucket.  Wide enough for everything
#: from a cache hit to a cold sharded evaluation.
DEFAULT_BUCKETS_S: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen histogram state: bounds, per-bucket counts, sum/count/extrema.

    ``counts`` has ``len(bounds) + 1`` entries — the last bucket is
    ``+inf``.  ``counts[i]`` is the number of observations ``v`` with
    ``bounds[i-1] < v <= bounds[i]``.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    total: float = 0.0
    count: int = 0
    min_value: float | None = None
    max_value: float | None = None

    def merged(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if other.bounds != self.bounds:
            raise ConfigError(
                "cannot merge histograms with different bucket bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        lo = [v for v in (self.min_value, other.min_value) if v is not None]
        hi = [v for v in (self.max_value, other.max_value) if v is not None]
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            count=self.count + other.count,
            min_value=min(lo) if lo else None,
            max_value=max(hi) if hi else None,
        )

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Deterministic upper-bound quantile estimate.

        Returns the upper edge of the first bucket whose cumulative
        count reaches ``q * count`` (the +inf bucket reports the
        observed maximum).  An upper bound is the right bias for
        backpressure hints: it never under-estimates service time.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for position, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if position < len(self.bounds):
                    return self.bounds[position]
                return self.max_value
        return self.max_value

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
            "min": self.min_value,
            "max": self.max_value,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "HistogramSnapshot":
        return cls(
            bounds=tuple(data["bounds"]),
            counts=tuple(data["counts"]),
            total=float(data["total"]),
            count=int(data["count"]),
            min_value=data.get("min"),
            max_value=data.get("max"),
        )


class _Histogram:
    """Mutable histogram; lives inside a registry, snapshots to frozen state."""

    __slots__ = ("bounds", "counts", "total", "count", "min_value", "max_value")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS_S) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.min_value: float | None = None
        self.max_value: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(self.counts),
            total=self.total,
            count=self.count,
            min_value=self.min_value,
            max_value=self.max_value,
        )

    @classmethod
    def from_snapshot(cls, snap: HistogramSnapshot) -> "_Histogram":
        hist = cls(snap.bounds)
        hist.counts = list(snap.counts)
        hist.total = snap.total
        hist.count = snap.count
        hist.min_value = snap.min_value
        hist.max_value = snap.max_value
        return hist


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen, picklable registry state; merges across process boundaries."""

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges[name], value) if name in gauges else value
        histograms = dict(self.histograms)
        for name, snap in other.histograms.items():
            histograms[name] = (
                histograms[name].merged(snap) if name in histograms else snap
            )
        return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)

    def to_dict(self) -> dict:
        """Deterministic (sorted-key) plain-dict form for JSON emission."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsSnapshot":
        return cls(
            counters={k: int(v) for k, v in data.get("counters", {}).items()},
            gauges={k: float(v) for k, v in data.get("gauges", {}).items()},
            histograms={
                k: HistogramSnapshot.from_dict(v)
                for k, v in data.get("histograms", {}).items()
            },
        )


class MetricsRegistry:
    """One process-local (or component-local) metrics store.

    Not thread-safe for concurrent structural mutation by design — the
    serving daemon serialises hot-path writes through its event loop
    and scoring happens one micro-batch group at a time; worker
    processes each own a private registry.  Plain ``dict`` operations
    keep the enabled path cheap.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # ------------------------------------------------------------- counters
    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_counter(self, name: str, value: int) -> None:
        """Overwrite a counter (used by thin views like ``ServerStats``)."""
        self._counters[name] = int(value)

    def counter_value(self, name: str) -> int:
        return self._counters.get(name, 0)

    # --------------------------------------------------------------- gauges
    def gauge_set(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        value = float(value)
        if name not in self._gauges or value > self._gauges[name]:
            self._gauges[name] = value

    def gauge_value(self, name: str) -> float | None:
        return self._gauges.get(name)

    # ----------------------------------------------------------- histograms
    def observe(
        self, name: str, value: float, bounds: Iterable[float] | None = None
    ) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = _Histogram(tuple(bounds) if bounds is not None else DEFAULT_BUCKETS_S)
            self._histograms[name] = hist
        hist.observe(value)

    def quantile(self, name: str, q: float) -> float | None:
        hist = self._histograms.get(name)
        return hist.snapshot().quantile(q) if hist is not None else None

    def histogram_count(self, name: str) -> int:
        hist = self._histograms.get(name)
        return hist.count if hist is not None else 0

    # ------------------------------------------------------------ lifecycle
    def reset(self, name: str) -> None:
        """Drop one metric by name, whatever family it belongs to."""
        self._counters.pop(name, None)
        self._gauges.pop(name, None)
        self._histograms.pop(name, None)

    def reset_prefix(self, prefix: str) -> None:
        """Drop every metric whose name starts with *prefix* (generation scoping)."""
        for store in (self._counters, self._gauges, self._histograms):
            for name in [n for n in store if n.startswith(prefix)]:
                del store[name]

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={
                name: hist.snapshot() for name, hist in self._histograms.items()
            },
        )

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot from another process/scope into this registry."""
        for name, value in snapshot.counters.items():
            self.inc(name, value)
        for name, value in snapshot.gauges.items():
            self.gauge_max(name, value)
        for name, snap in snapshot.histograms.items():
            hist = self._histograms.get(name)
            if hist is None:
                self._histograms[name] = _Histogram.from_snapshot(snap)
            else:
                merged = hist.snapshot().merged(snap)
                self._histograms[name] = _Histogram.from_snapshot(merged)


# --------------------------------------------------------------- active scope
_ACTIVE: MetricsRegistry | None = None


def install_metrics_registry(
    registry: MetricsRegistry | None,
) -> MetricsRegistry | None:
    """Install *registry* as this process's active registry; returns the old one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


def active_registry() -> MetricsRegistry | None:
    return _ACTIVE


def inc(name: str, amount: int = 1) -> None:
    """Increment a counter on the active registry (no-op when none)."""
    if _ACTIVE is not None:
        _ACTIVE.inc(name, amount)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge on the active registry (no-op when none)."""
    if _ACTIVE is not None:
        _ACTIVE.gauge_set(name, value)


def gauge_max(name: str, value: float) -> None:
    """Raise a high-water-mark gauge on the active registry (no-op when none)."""
    if _ACTIVE is not None:
        _ACTIVE.gauge_max(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the active registry (no-op when none)."""
    if _ACTIVE is not None:
        _ACTIVE.observe(name, value)


def merge_snapshot(snapshot: MetricsSnapshot) -> None:
    """Merge *snapshot* into the active registry (no-op when none)."""
    if _ACTIVE is not None:
        _ACTIVE.merge(snapshot)


class metrics_scope:
    """Context manager installing a registry for a ``with`` block.

    >>> with metrics_scope(MetricsRegistry()) as registry:
    ...     ...  # instrumented code in this block records into `registry`
    """

    def __init__(self, registry: MetricsRegistry | None) -> None:
        self.registry = registry
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry | None:
        self._previous = install_metrics_registry(self.registry)
        return self.registry

    def __exit__(self, *exc_info) -> None:
        install_metrics_registry(self._previous)
