"""Publish component-local counters as first-class registry metrics.

The serving stack keeps several ad-hoc tallies that predate the
registry: :class:`~repro.serving.cache.LRUScoreCache` hit/miss/eviction
counts, the folded-matrix LRU inside the IVF index, and
:class:`~repro.index.base.IndexUsageStats` (probed fraction, sampled
recall).  Rather than tax every cache hit with a registry write, those
components stay as they are and this module *publishes* their current
values into a registry at exposition time — ``predict --stats`` and
the daemon ``metrics`` op both call :func:`publish_predictor_metrics`
right before snapshotting.

Everything is duck-typed on the predictor's existing surface
(``cache_stats`` / ``index_stats`` / ``index.fold_cache_stats``), so
this module imports nothing from ``repro.serving`` and stays free of
import cycles.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry


def publish_predictor_metrics(registry: MetricsRegistry, predictor) -> None:
    """Copy a ``LinkPredictor``'s cache and index tallies into *registry*.

    Published names (all under ``serving.`` / ``index.``):

    - ``serving.cache.{hits,misses,evictions,size,capacity}`` and the
      derived ``serving.cache.hit_rate`` gauge
    - ``index.fold_cache.{hits,misses,evictions,store_hits}``
    - ``index.{queries,entities_scored,entities_scanned,exhaustive_queries}``
      counters plus ``index.probed_fraction`` / ``index.recall_estimate``
      gauges (the IVF coarse-pass quality signals)
    """
    cache_stats = getattr(predictor, "cache_stats", None)
    if cache_stats is not None:
        registry.set_counter("serving.cache.hits", cache_stats.hits)
        registry.set_counter("serving.cache.misses", cache_stats.misses)
        registry.set_counter("serving.cache.evictions", cache_stats.evictions)
        registry.gauge_set("serving.cache.size", cache_stats.size)
        registry.gauge_set("serving.cache.capacity", cache_stats.capacity)
        registry.gauge_set("serving.cache.hit_rate", cache_stats.hit_rate)

    index_stats = getattr(predictor, "index_stats", None)
    if index_stats is None:
        return
    registry.set_counter("index.queries", index_stats.queries)
    registry.set_counter("index.entities_scored", index_stats.entities_scored)
    registry.set_counter("index.entities_scanned", index_stats.entities_scanned)
    registry.set_counter("index.exhaustive_queries", index_stats.exhaustive_queries)
    registry.gauge_set("index.probed_fraction", index_stats.probed_fraction)
    recall = index_stats.recall_estimate
    if recall is not None:
        registry.gauge_set("index.recall_estimate", recall)
    registry.set_counter("index.fold_cache.hits", index_stats.fold_cache_hits)
    registry.set_counter("index.fold_cache.misses", index_stats.fold_cache_misses)

    index = getattr(predictor, "index", None)
    fold = getattr(index, "fold_cache_stats", None)
    if fold is not None:
        registry.set_counter("index.fold_cache.evictions", fold.evictions)
        registry.set_counter("index.fold_cache.store_hits", fold.store_hits)
