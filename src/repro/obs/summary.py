"""Summarise a run dir's ``telemetry.jsonl``: span tree + metrics.

The emission side (:mod:`repro.pipeline.runner`) writes one JSON record
per line: ``type: "span"`` records from the run's tracer, then a final
``type: "metrics"`` record carrying the registry snapshot.  This module
is the read side, backing ``repro obs <run-dir>``.

The span tree aggregates siblings by name — thirty ``train.epoch``
spans under one parent render as a single line with count, total and
mean duration — so a real training run summarises in a screenful.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError
from repro.obs.registry import MetricsSnapshot

TELEMETRY_FILE = "telemetry.jsonl"


def load_telemetry(path: Path) -> tuple[list[dict], MetricsSnapshot | None]:
    """Parse a telemetry JSONL file into (span records, metrics snapshot)."""
    path = Path(path)
    if path.is_dir():
        path = path / TELEMETRY_FILE
    if not path.exists():
        raise ReproError(
            f"no telemetry found at {path} — run with telemetry enabled "
            "(observability.enabled in the run config, or an ambient "
            "repro.obs.telemetry_scope)"
        )
    spans: list[dict] = []
    metrics: MetricsSnapshot | None = None
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ReproError(f"{path}:{line_number}: invalid telemetry record: {error}")
        kind = record.get("type")
        if kind == "span":
            spans.append(record)
        elif kind == "metrics":
            snap = MetricsSnapshot.from_dict(record.get("metrics", {}))
            metrics = snap if metrics is None else metrics.merged(snap)
    return spans, metrics


def _format_ms(value: float | None) -> str:
    if value is None:
        return "?"
    if value >= 1000.0:
        return f"{value / 1000.0:.2f}s"
    return f"{value:.1f}ms"


def _tag_text(tags: dict) -> str:
    if not tags:
        return ""
    parts = [f"{key}={tags[key]}" for key in sorted(tags)]
    return " [" + " ".join(parts) + "]"


def render_span_tree(spans: list[dict]) -> str:
    """Indented span tree with same-name siblings aggregated."""
    if not spans:
        return "(no spans)"
    children: dict[int | None, list[dict]] = {}
    ids = {record["span"] for record in spans}
    for record in spans:
        parent = record.get("parent")
        # Ring eviction can orphan a child; hoist orphans to the root.
        key = parent if parent in ids else None
        children.setdefault(key, []).append(record)

    lines: list[str] = []

    def emit(parent: int | None, depth: int) -> None:
        group: dict[str, list[dict]] = {}
        for record in children.get(parent, []):
            group.setdefault(record["name"], []).append(record)
        pad = "  " * depth
        for name in sorted(group, key=lambda n: min(r["start_ms"] for r in group[n])):
            records = group[name]
            durations = [r["duration_ms"] for r in records if r["duration_ms"] is not None]
            total = sum(durations) if durations else None
            errors = sum(1 for r in records if r.get("status") != "ok")
            suffix = f"  !{errors} error(s)" if errors else ""
            if len(records) == 1:
                record = records[0]
                lines.append(
                    f"{pad}{name}{_tag_text(record.get('tags', {}))} "
                    f"({_format_ms(record['duration_ms'])}){suffix}"
                )
                emit(record["span"], depth + 1)
            else:
                mean = total / len(durations) if durations else None
                lines.append(
                    f"{pad}{name} x{len(records)} "
                    f"(total {_format_ms(total)}, mean {_format_ms(mean)}){suffix}"
                )
                # Aggregate the children of every sibling under one node.
                for record in records:
                    emit(record["span"], depth + 1)

    emit(None, 0)
    return "\n".join(lines)


def render_metrics(metrics: MetricsSnapshot | None) -> str:
    if metrics is None or metrics.empty:
        return "(no metrics)"
    lines: list[str] = []
    for name in sorted(metrics.counters):
        lines.append(f"{name} = {metrics.counters[name]}")
    for name in sorted(metrics.gauges):
        lines.append(f"{name} = {metrics.gauges[name]:.6g}")
    for name in sorted(metrics.histograms):
        hist = metrics.histograms[name]
        mean = hist.mean
        p90 = hist.quantile(0.9)
        lines.append(
            f"{name}: count={hist.count}"
            + (f" mean={mean * 1000.0:.2f}ms" if mean is not None else "")
            + (f" p90<={p90 * 1000.0:.2f}ms" if p90 is not None else "")
            + (
                f" max={hist.max_value * 1000.0:.2f}ms"
                if hist.max_value is not None
                else ""
            )
        )
    return "\n".join(lines)


def summarize_run(run_dir: Path) -> str:
    """Human-readable telemetry summary for ``repro obs <run-dir>``."""
    spans, metrics = load_telemetry(Path(run_dir))
    sections = [
        f"telemetry: {Path(run_dir) / TELEMETRY_FILE}",
        f"spans: {len(spans)}",
        "",
        "== span tree ==",
        render_span_tree(spans),
        "",
        "== metrics ==",
        render_metrics(metrics),
    ]
    return "\n".join(sections)
