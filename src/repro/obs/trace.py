"""Request tracing: explicit parent/child spans with a bounded ring.

A :class:`Tracer` hands out integer span ids from a process-local
counter (no randomness — two identical runs produce identical span
trees, only the timings differ) and keeps finished spans in a bounded
``deque`` ring so a long-lived serving daemon cannot grow without
bound.  Parent/child linkage is explicit: :class:`trace_scope` keeps a
per-thread stack of open spans, so nested ``with`` blocks on one
thread become child spans automatically, and code that hops threads
(the serving daemon scores micro-batches via ``asyncio.to_thread``)
passes ``parent=span.span_id`` explicitly.

Like the metrics registry (and ``install_fault_injector`` before it),
the disabled path is a ``None`` check: ``trace_scope`` with no tracer
installed allocates nothing and yields ``None``.

Spans serialise to JSONL records (``type: "span"``) via
:meth:`Tracer.to_jsonl`; the pipeline runner appends one final
``type: "metrics"`` record carrying the run's registry snapshot, and
writes the whole file atomically as ``telemetry.jsonl`` in the run
dir.  ``telemetry.jsonl`` is deliberately *not* listed in
``manifest.json`` — telemetry must never change what a run's artifacts
hash to.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field

DEFAULT_RING_SIZE = 4096


@dataclass
class Span:
    """One timed operation.  ``start_s``/``end_s`` are relative to the
    tracer's birth (``perf_counter`` deltas, not wall-clock)."""

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    end_s: float | None = None
    status: str = "ok"
    tags: dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float | None:
        return None if self.end_s is None else self.end_s - self.start_s

    def to_record(self) -> dict:
        duration = self.duration_s
        return {
            "type": "span",
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ms": round(self.start_s * 1000.0, 3),
            "duration_ms": None if duration is None else round(duration * 1000.0, 3),
            "status": self.status,
            "tags": self.tags,
        }


class Tracer:
    """Allocates spans and keeps the most recent *ring_size* finished ones."""

    def __init__(self, ring_size: int = DEFAULT_RING_SIZE) -> None:
        self._ring: deque[Span] = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self._next_id = 1
        self._clock_zero = time.perf_counter()
        self.started_at = time.time()
        self.dropped = 0

    def _now(self) -> float:
        return time.perf_counter() - self._clock_zero

    def begin(
        self,
        name: str,
        parent_id: int | None = None,
        tags: dict | None = None,
    ) -> Span:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            start_s=self._now(),
            tags=tags or {},
        )

    def end(self, span: Span, status: str = "ok") -> None:
        span.end_s = self._now()
        span.status = status
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self.dropped += 1
            self._ring.append(span)

    def spans(self) -> list[Span]:
        """Finished spans, oldest first (bounded by the ring size)."""
        with self._lock:
            return list(self._ring)

    def records(self) -> list[dict]:
        return [span.to_record() for span in self.spans()]

    def to_jsonl(self) -> str:
        lines = [json.dumps(record, sort_keys=True) for record in self.records()]
        return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------- active scope
_ACTIVE: Tracer | None = None
_STACK = threading.local()


def install_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install *tracer* as this process's active tracer; returns the old one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def active_tracer() -> Tracer | None:
    return _ACTIVE


def current_span_id() -> int | None:
    """Span id of the innermost open ``trace_scope`` on this thread."""
    stack = getattr(_STACK, "spans", None)
    return stack[-1] if stack else None


class trace_scope:
    """Span-scoped ``with`` block; a no-op ``None`` when no tracer is active.

    >>> with trace_scope("index.probe", side="tail") as span:
    ...     ...  # span is None when tracing is disabled

    ``parent`` overrides the implicit per-thread parent — required when
    the parent span lives on another thread (``asyncio.to_thread``).
    """

    __slots__ = ("name", "tags", "parent", "_tracer", "_span")

    def __init__(self, name: str, *, parent: int | None = None, **tags: object) -> None:
        self.name = name
        self.tags = tags
        self.parent = parent
        self._tracer: Tracer | None = None
        self._span: Span | None = None

    def __enter__(self) -> Span | None:
        tracer = _ACTIVE
        if tracer is None:
            return None
        parent = self.parent if self.parent is not None else current_span_id()
        self._tracer = tracer
        self._span = tracer.begin(self.name, parent_id=parent, tags=self.tags)
        stack = getattr(_STACK, "spans", None)
        if stack is None:
            stack = []
            _STACK.spans = stack
        stack.append(self._span.span_id)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._span is None:
            return
        stack = getattr(_STACK, "spans", None)
        if stack and stack[-1] == self._span.span_id:
            stack.pop()
        assert self._tracer is not None
        self._tracer.end(self._span, status="error" if exc_type else "ok")


class telemetry_scope:
    """Install a registry and a tracer together for a ``with`` block.

    The one-liner every caller of :func:`repro.pipeline.run_pipeline`
    uses to turn telemetry on ambiently without touching the run's
    config (and therefore without changing a single artifact byte):

    >>> from repro.obs import MetricsRegistry, Tracer, telemetry_scope
    >>> with telemetry_scope(MetricsRegistry(), Tracer()) as (registry, tracer):
    ...     ...  # instrumented code records into both
    """

    def __init__(self, registry=None, tracer: Tracer | None = None) -> None:
        self.registry = registry
        self.tracer = tracer
        self._previous_registry = None
        self._previous_tracer: Tracer | None = None

    def __enter__(self):
        from repro.obs.registry import install_metrics_registry

        self._previous_registry = install_metrics_registry(self.registry)
        self._previous_tracer = install_tracer(self.tracer)
        return self.registry, self.tracer

    def __exit__(self, *exc_info) -> None:
        from repro.obs.registry import install_metrics_registry

        install_metrics_registry(self._previous_registry)
        install_tracer(self._previous_tracer)
