"""Prometheus-style text exposition for metric snapshots.

Stdlib-only rendering of a :class:`~repro.obs.registry.MetricsSnapshot`
into the Prometheus text format (v0.0.4 shape: ``# TYPE`` comments,
``_bucket{le="..."}`` cumulative histogram series, ``_sum``/``_count``
companions).  Metric names are sanitised — dots and dashes become
underscores — so ``server.service_seconds`` exposes as
``repro_server_service_seconds``.

This is a *dump*, not a server: the daemon's ``metrics`` TCP op returns
the structured snapshot dict, and callers that want a scrape page call
:func:`prometheus_text` on it (or on any snapshot) themselves.
"""

from __future__ import annotations

from repro.obs.registry import HistogramSnapshot, MetricsSnapshot

_SANITIZE = str.maketrans({".": "_", "-": "_", " ": "_", "/": "_"})


def _name(raw: str, prefix: str) -> str:
    clean = raw.translate(_SANITIZE)
    return f"{prefix}_{clean}" if prefix else clean


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def _histogram_lines(name: str, hist: HistogramSnapshot) -> list[str]:
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    for bound, count in zip(hist.bounds, hist.counts):
        cumulative += count
        lines.append(f'{name}_bucket{{le="{_format_value(float(bound))}"}} {cumulative}')
    cumulative += hist.counts[-1]
    lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{name}_sum {_format_value(hist.total)}")
    lines.append(f"{name}_count {hist.count}")
    return lines


def prometheus_text(snapshot: MetricsSnapshot, prefix: str = "repro") -> str:
    """Render *snapshot* as a Prometheus text-format page (sorted, stable)."""
    lines: list[str] = []
    for raw in sorted(snapshot.counters):
        name = _name(raw, prefix)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {snapshot.counters[raw]}")
    for raw in sorted(snapshot.gauges):
        name = _name(raw, prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(snapshot.gauges[raw])}")
    for raw in sorted(snapshot.histograms):
        lines.extend(_histogram_lines(_name(raw, prefix), snapshot.histograms[raw]))
    return "\n".join(lines) + ("\n" if lines else "")
