"""Link prediction evaluator tying models, datasets and metrics together.

Implements the protocol of §5.2: for every eval triple, corrupt the tail
against all entities and the head against all entities, filter known true
triples (the *filtered* setting), rank the true entity, and aggregate
MRR / Hits@k over both sides.

The 1-vs-all sweeps stream through the serving layer's
:class:`~repro.serving.scorer.BatchedScorer` in memory-bounded chunks of
``batch_size`` eval triples, so evaluation shares one scoring path with
the :class:`~repro.serving.predictor.LinkPredictor` and never
materialises more than one ``(batch_size, num_entities)`` score matrix.
Ranking compares candidates *within* a row, where chunk boundaries
cannot reorder scores or break exact ties, so metrics are bit-identical
for any ``batch_size`` (the chunking regression test pins this down for
sizes 1, 7 and full-batch).  Folding is left off so the evaluator runs
the models' own einsum order unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import KGEModel
from repro.errors import EvaluationError
from repro.eval.metrics import DEFAULT_HITS_AT, RankingMetrics, compute_metrics, merge_metrics
from repro.eval.ranking import ranks_from_score_matrix
from repro.kg.graph import FilterIndex, KGDataset
from repro.kg.triples import TripleSet
from repro.serving.scorer import BatchedScorer


@dataclass(frozen=True)
class EvaluationResult:
    """Metrics for one evaluation run, overall and per side."""

    overall: RankingMetrics
    tail_side: RankingMetrics
    head_side: RankingMetrics
    split: str


class LinkPredictionEvaluator:
    """Filtered (or raw) ranking evaluation of a model on a dataset split.

    Parameters
    ----------
    dataset:
        Supplies the splits and the filter index over all known triples.
    batch_size:
        Number of eval triples scored per 1-vs-all sweep; bounds peak
        memory at one ``(batch_size, num_entities)`` float64 matrix.
    filtered:
        Use the filtered protocol (True, paper default) or raw ranking.
    hits_at:
        Cutoffs for Hits@k.
    tie_policy:
        Tie handling convention, see :mod:`repro.eval.ranking`.
    """

    def __init__(
        self,
        dataset: KGDataset,
        batch_size: int = 512,
        filtered: bool = True,
        hits_at: tuple[int, ...] = DEFAULT_HITS_AT,
        tie_policy: str = "average",
    ) -> None:
        if batch_size < 1:
            raise EvaluationError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.filtered = bool(filtered)
        self.hits_at = tuple(hits_at)
        self.tie_policy = tie_policy

    # ------------------------------------------------------------------ public
    def evaluate(
        self, model: KGEModel, split: str = "test", max_triples: int | None = None
    ) -> EvaluationResult:
        """Evaluate *model* on a named split of the dataset."""
        try:
            triples = self.dataset.splits[split]
        except KeyError:
            raise EvaluationError(f"unknown split {split!r}") from None
        return self.evaluate_triples(model, triples, split_name=split, max_triples=max_triples)

    def evaluate_triples(
        self,
        model: KGEModel,
        triples: TripleSet,
        split_name: str = "custom",
        max_triples: int | None = None,
    ) -> EvaluationResult:
        """Evaluate on an explicit :class:`TripleSet` (e.g. train subsample).

        ``max_triples`` caps the number of evaluated triples — used to
        report "on train" rows (paper Table 2) without sweeping the whole
        training set.
        """
        if len(triples) == 0:
            raise EvaluationError("cannot evaluate on an empty triple set")
        arr = triples.array
        if max_triples is not None and len(arr) > max_triples:
            arr = arr[:max_triples]
        filter_index = self.dataset.filter_index if self.filtered else None
        tail_ranks = self._ranks_one_side(model, arr, filter_index, side="tail")
        head_ranks = self._ranks_one_side(model, arr, filter_index, side="head")
        tail_metrics = compute_metrics(tail_ranks, self.hits_at)
        head_metrics = compute_metrics(head_ranks, self.hits_at)
        return EvaluationResult(
            overall=merge_metrics(tail_metrics, head_metrics),
            tail_side=tail_metrics,
            head_side=head_metrics,
            split=split_name,
        )

    # ----------------------------------------------------------------- helpers
    def _ranks_one_side(
        self,
        model: KGEModel,
        triples: np.ndarray,
        filter_index: FilterIndex | None,
        side: str,
    ) -> np.ndarray:
        """Ranks of the true entity for every triple, one side at a time."""
        return compute_side_ranks(
            model,
            triples,
            filter_index,
            side,
            batch_size=self.batch_size,
            tie_policy=self.tie_policy,
        )


def side_queries(
    triples: np.ndarray, filter_index: FilterIndex | None, side: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray, object]:
    """Decompose eval triples into one side's ranking queries.

    Returns ``(anchors, relations, true_indices, lookup)`` where
    ``lookup`` is the filter-index accessor for the side (or ``None``
    under the raw protocol).  Shared by the serial evaluator and the
    sharded workers so both sides of the protocol stay defined in one
    place.
    """
    if side == "tail":
        anchors, true_indices = triples[:, 0], triples[:, 1]
        lookup = filter_index.true_tails if filter_index is not None else None
    else:
        anchors, true_indices = triples[:, 1], triples[:, 0]
        lookup = filter_index.true_heads if filter_index is not None else None
    return anchors, triples[:, 2], true_indices, lookup


def compute_side_ranks(
    model: KGEModel,
    triples: np.ndarray,
    filter_index: FilterIndex | None,
    side: str,
    batch_size: int,
    tie_policy: str = "average",
) -> np.ndarray:
    """Ranks of the true entity for every triple on one side.

    Streams chunks of ``batch_size`` queries through a
    :class:`BatchedScorer`; each chunk's ``(chunk, num_entities)`` score
    matrix is ranked and discarded before the next is computed.  This is
    the serial evaluator's engine, exposed at module level so the
    sharded evaluation workers (:mod:`repro.parallel.sharded_eval`) run
    the *exact* same per-chunk computation on their triple shards.
    """
    scorer = BatchedScorer(model, folded=False, chunk_size=batch_size)
    anchors, relations, true_indices, lookup = side_queries(triples, filter_index, side)
    ranks: list[np.ndarray] = []
    for start, stop, scores in scorer.iter_all_scores(anchors, relations, side):
        filters = (
            [
                lookup(int(anchor), int(relation))
                for anchor, relation in zip(anchors[start:stop], relations[start:stop])
            ]
            if lookup is not None
            else None
        )
        ranks.append(
            ranks_from_score_matrix(scores, true_indices[start:stop], filters, tie_policy)
        )
    return np.concatenate(ranks)
