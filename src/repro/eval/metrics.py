"""Ranking metrics: MR, MRR and Hits@k (paper §5.2).

Given the rank of each true triple among its corrupted candidates
(rank 1 = best), the standard link-prediction metrics are

* ``MR``   — mean rank,
* ``MRR``  — mean reciprocal rank,
* ``Hits@k`` — fraction of true triples ranked in the top k.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import EvaluationError

#: The k values the paper reports.
DEFAULT_HITS_AT = (1, 3, 10)


@dataclass(frozen=True)
class RankingMetrics:
    """Aggregated link-prediction metrics over a set of ranks."""

    mrr: float
    mr: float
    hits: dict[int, float] = field(default_factory=dict)
    num_ranks: int = 0

    def hits_at(self, k: int) -> float:
        """Hits@k; raises if *k* was not computed."""
        try:
            return self.hits[k]
        except KeyError:
            raise EvaluationError(f"Hits@{k} was not computed; available: {sorted(self.hits)}")

    def format_row(self, label: str, label_width: int = 42) -> str:
        """One aligned table row: MRR then Hits@1/3/10, paper Table 2 style."""
        cells = [f"{self.mrr:6.3f}"]
        for k in sorted(self.hits):
            cells.append(f"{self.hits[k]:6.3f}")
        return f"{label:<{label_width}} " + " ".join(cells)

    @staticmethod
    def header_row(label: str = "Weight setting", label_width: int = 42) -> str:
        """The table header matching :meth:`format_row`."""
        cells = ["   MRR"] + [f" Hit@{k}" for k in DEFAULT_HITS_AT]
        return f"{label:<{label_width}} " + " ".join(cells)


def compute_metrics(ranks: np.ndarray, hits_at: tuple[int, ...] = DEFAULT_HITS_AT) -> RankingMetrics:
    """Aggregate raw ranks (1-based) into :class:`RankingMetrics`."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.ndim != 1 or len(ranks) == 0:
        raise EvaluationError("ranks must be a non-empty 1-D array")
    if (ranks < 1).any():
        raise EvaluationError("ranks are 1-based; found a rank < 1")
    if any(k < 1 for k in hits_at):
        raise EvaluationError("hits_at cutoffs must be >= 1")
    return RankingMetrics(
        mrr=float(np.mean(1.0 / ranks)),
        mr=float(np.mean(ranks)),
        hits={k: float(np.mean(ranks <= k)) for k in hits_at},
        num_ranks=len(ranks),
    )


def merge_metrics(first: RankingMetrics, second: RankingMetrics) -> RankingMetrics:
    """Weighted merge of two metric aggregates (e.g. head-side + tail-side)."""
    if set(first.hits) != set(second.hits):
        raise EvaluationError("cannot merge metrics with different Hits@k cutoffs")
    n1, n2 = first.num_ranks, second.num_ranks
    total = n1 + n2
    if total == 0:
        raise EvaluationError("cannot merge empty metrics")

    def blend(a: float, b: float) -> float:
        return (a * n1 + b * n2) / total

    return RankingMetrics(
        mrr=blend(first.mrr, second.mrr),
        mr=blend(first.mr, second.mr),
        hits={k: blend(first.hits[k], second.hits[k]) for k in first.hits},
        num_ranks=total,
    )
