"""Evaluation harness: filtered ranking protocol and metrics (paper §5.2)."""

from repro.eval.evaluator import EvaluationResult, LinkPredictionEvaluator
from repro.eval.per_relation import (
    PerRelationResult,
    evaluate_per_relation,
    format_per_relation_table,
    symmetry_gap,
)
from repro.eval.metrics import (
    DEFAULT_HITS_AT,
    RankingMetrics,
    compute_metrics,
    merge_metrics,
)
from repro.eval.ranking import (
    TIE_POLICIES,
    comparison_counts,
    rank_of_true,
    ranks_from_counts,
    ranks_from_score_matrix,
)

__all__ = [
    "DEFAULT_HITS_AT",
    "PerRelationResult",
    "EvaluationResult",
    "LinkPredictionEvaluator",
    "RankingMetrics",
    "TIE_POLICIES",
    "comparison_counts",
    "compute_metrics",
    "evaluate_per_relation",
    "format_per_relation_table",
    "merge_metrics",
    "rank_of_true",
    "ranks_from_counts",
    "symmetry_gap",
    "ranks_from_score_matrix",
]
