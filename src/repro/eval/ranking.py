"""Rank computation for the link prediction protocol (paper §5.2).

For each true triple ``(h, t, r)`` the model scores every entity as a
replacement for ``t`` (tail side) and for ``h`` (head side).  The rank of
the true entity among the candidates determines the metrics.

Two protocol details matter and are both implemented here:

* **Filtering** (Bordes et al. 2013): corrupted triples that are
  themselves true (in train, valid or test) are removed before ranking,
  avoiding false-negative penalties.
* **Tie handling**: candidates with a score *equal* to the true triple's
  are counted as half above / half below ("average" ranking).  This is
  the unbiased convention; "optimistic" and "pessimistic" are also
  available for sensitivity checks.  With DistMult on inverse-paired data
  ties are common, so the convention is not a technicality.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError

TIE_POLICIES = ("average", "optimistic", "pessimistic")


def rank_of_true(
    scores: np.ndarray,
    true_index: int,
    filter_out: np.ndarray | None = None,
    tie_policy: str = "average",
) -> float:
    """Rank (1-based) of ``scores[true_index]`` among all candidates.

    Parameters
    ----------
    scores:
        ``(num_entities,)`` candidate scores, higher = better.
    true_index:
        Index of the true entity.
    filter_out:
        Candidate indices to exclude (known true triples).  The true index
        itself is always kept even if listed.
    tie_policy:
        How candidates scoring exactly the true score are counted.
    """
    if tie_policy not in TIE_POLICIES:
        raise EvaluationError(f"unknown tie policy {tie_policy!r}; known: {TIE_POLICIES}")
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise EvaluationError("scores must be 1-D")
    if not 0 <= true_index < len(scores):
        raise EvaluationError(f"true_index {true_index} out of range")
    true_score = scores[true_index]

    if filter_out is not None and len(filter_out):
        mask = np.zeros(len(scores), dtype=bool)
        mask[np.asarray(filter_out, dtype=np.int64)] = True
        mask[true_index] = False
        considered = scores[~mask]
        # position of the true score inside the filtered array
        better = int(np.sum(considered > true_score))
        ties = int(np.sum(considered == true_score)) - 1  # exclude the true one
    else:
        better = int(np.sum(scores > true_score))
        ties = int(np.sum(scores == true_score)) - 1

    if tie_policy == "optimistic":
        return float(better + 1)
    if tie_policy == "pessimistic":
        return float(better + ties + 1)
    return float(better + 1) + ties / 2.0


def comparison_counts(
    score_block: np.ndarray,
    true_scores: np.ndarray,
    block_start: int,
    true_indices: np.ndarray,
    filters: list[np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-query ``(better, ties)`` counts over one candidate block.

    The shard-friendly half of :func:`rank_of_true`: given scores for the
    contiguous candidate slice ``[block_start, block_start + width)``,
    count — per query — how many *considered* candidates in the slice
    score strictly above / exactly equal to the query's true score.
    "Considered" excludes filtered candidate ids **and the true entity
    itself** (its self-comparison contributes to neither count, so the
    counts are additive across disjoint candidate shards and independent
    of which shard owns the true entity).

    Counts from shards covering the whole entity space sum to the
    ``better``/``ties - 1`` pair of :func:`rank_of_true`;
    :func:`ranks_from_counts` turns the sums back into ranks.
    """
    score_block = np.asarray(score_block, dtype=np.float64)
    true_scores = np.asarray(true_scores, dtype=np.float64)
    if score_block.ndim != 2 or len(score_block) != len(true_scores):
        raise EvaluationError("score_block must be (b, width) matching true_scores")
    if filters is not None and len(filters) != len(true_scores):
        raise EvaluationError("filters must have one entry per query")
    width = score_block.shape[1]
    block_stop = block_start + width
    considered = np.ones_like(score_block, dtype=bool)
    true_indices = np.asarray(true_indices, dtype=np.int64)
    in_block = (true_indices >= block_start) & (true_indices < block_stop)
    rows = np.nonzero(in_block)[0]
    considered[rows, true_indices[rows] - block_start] = False
    if filters is not None:
        for row, filter_out in enumerate(filters):
            if filter_out is None or len(filter_out) == 0:
                continue
            ids = np.asarray(filter_out, dtype=np.int64)
            ids = ids[(ids >= block_start) & (ids < block_stop)] - block_start
            considered[row, ids] = False
    true_column = true_scores[:, None]
    better = np.sum((score_block > true_column) & considered, axis=1)
    ties = np.sum((score_block == true_column) & considered, axis=1)
    return better.astype(np.int64), ties.astype(np.int64)


def ranks_from_counts(
    better: np.ndarray, ties: np.ndarray, tie_policy: str = "average"
) -> np.ndarray:
    """Ranks from merged :func:`comparison_counts` sums.

    ``ties`` excludes the true entity's self-comparison (the
    :func:`comparison_counts` convention), so the arithmetic reproduces
    :func:`rank_of_true` float-for-float for every tie policy.
    """
    if tie_policy not in TIE_POLICIES:
        raise EvaluationError(f"unknown tie policy {tie_policy!r}; known: {TIE_POLICIES}")
    better = np.asarray(better, dtype=np.int64)
    ties = np.asarray(ties, dtype=np.int64)
    if better.shape != ties.shape or better.ndim != 1:
        raise EvaluationError("better and ties must be matching 1-D count arrays")
    if tie_policy == "optimistic":
        return (better + 1).astype(np.float64)
    if tie_policy == "pessimistic":
        return (better + ties + 1).astype(np.float64)
    return (better + 1).astype(np.float64) + ties / 2.0


def ranks_from_score_matrix(
    score_matrix: np.ndarray,
    true_indices: np.ndarray,
    filters: list[np.ndarray] | None = None,
    tie_policy: str = "average",
) -> np.ndarray:
    """Vectorised :func:`rank_of_true` over a batch.

    Parameters
    ----------
    score_matrix:
        ``(b, num_entities)`` scores for each query.
    true_indices:
        ``(b,)`` index of the true entity per query.
    filters:
        Per-query arrays of candidate ids to exclude.
    """
    score_matrix = np.asarray(score_matrix, dtype=np.float64)
    true_indices = np.asarray(true_indices, dtype=np.int64)
    if score_matrix.ndim != 2 or len(score_matrix) != len(true_indices):
        raise EvaluationError("score_matrix must be (b, n) matching true_indices")
    if filters is not None and len(filters) != len(true_indices):
        raise EvaluationError("filters must have one entry per query")
    ranks = np.empty(len(true_indices), dtype=np.float64)
    for row in range(len(true_indices)):
        filter_out = filters[row] if filters is not None else None
        ranks[row] = rank_of_true(
            score_matrix[row], int(true_indices[row]), filter_out, tie_policy
        )
    return ranks
