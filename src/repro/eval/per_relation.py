"""Per-relation evaluation breakdown.

The paper's aggregate tables hide *where* models fail; this module
splits the link-prediction metrics by relation.  It makes the mechanism
behind Table 2 visible: DistMult's symmetric score is fine on symmetric
relations (similar_to) but cannot order the two directions of an
inverse pair (hypernym/hyponym), capping its Hits@1 — while ComplEx and
CPh handle both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import KGEModel
from repro.errors import EvaluationError
from repro.eval.evaluator import LinkPredictionEvaluator
from repro.eval.metrics import RankingMetrics, compute_metrics
from repro.kg.graph import KGDataset


@dataclass(frozen=True)
class PerRelationResult:
    """Metrics restricted to the triples of one relation."""

    relation: int
    relation_name: str
    metrics: RankingMetrics


def evaluate_per_relation(
    model: KGEModel,
    dataset: KGDataset,
    split: str = "test",
    evaluator: LinkPredictionEvaluator | None = None,
    min_triples: int = 1,
) -> list[PerRelationResult]:
    """Evaluate *model* separately on each relation's triples in *split*.

    Relations with fewer than ``min_triples`` eval triples are skipped
    (their metrics would be noise).  Results are sorted by relation id.
    """
    if min_triples < 1:
        raise EvaluationError("min_triples must be >= 1")
    evaluator = evaluator or LinkPredictionEvaluator(dataset)
    triples = dataset.splits[split]
    results = []
    for relation in range(dataset.num_relations):
        subset = triples.with_relations_filtered([relation])
        if len(subset) < min_triples:
            continue
        result = evaluator.evaluate_triples(
            model, subset, split_name=f"{split}/rel{relation}"
        )
        results.append(
            PerRelationResult(
                relation=relation,
                relation_name=dataset.relations.name(relation),
                metrics=result.overall,
            )
        )
    return results


def format_per_relation_table(results: list[PerRelationResult]) -> str:
    """Render per-relation results as an aligned text table."""
    if not results:
        raise EvaluationError("no per-relation results to format")
    width = max(len(r.relation_name) for r in results)
    width = max(width, len("relation"))
    header = f"{'relation':<{width}}  {'n':>5}    MRR  Hit@1 Hit@10"
    lines = [header, "-" * len(header)]
    for r in results:
        m = r.metrics
        lines.append(
            f"{r.relation_name:<{width}}  {m.num_ranks // 2:>5}  {m.mrr:5.3f}  "
            f"{m.hits.get(1, float('nan')):5.3f}  {m.hits.get(10, float('nan')):5.3f}"
        )
    return "\n".join(lines)


def symmetry_gap(
    model: KGEModel,
    dataset: KGDataset,
    symmetric_relations: list[int],
    split: str = "test",
) -> tuple[float, float]:
    """Mean MRR on symmetric vs non-symmetric relations.

    Returns ``(mrr_symmetric, mrr_other)``.  For DistMult the gap is
    large; for ComplEx/CPh it nearly closes — the §6.1.2
    distinguishability property in empirical form.
    """
    results = evaluate_per_relation(model, dataset, split=split)
    symmetric_set = set(symmetric_relations)
    sym = [r.metrics.mrr for r in results if r.relation in symmetric_set]
    other = [r.metrics.mrr for r in results if r.relation not in symmetric_set]
    if not sym or not other:
        raise EvaluationError("need at least one relation on each side of the gap")
    return float(np.mean(sym)), float(np.mean(other))
