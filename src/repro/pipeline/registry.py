"""String-keyed component registries.

Every pluggable component family in the library — models, ω presets,
optimizers, losses, negative samplers, dataset generators — is published
through a :class:`Registry`: a case-insensitive mapping from identifier
to component with a ``register()`` decorator for adding new entries.
The CLI and the declarative :class:`~repro.pipeline.config.RunConfig`
resolve names exclusively through these registries, so registering a new
component makes it available everywhere (command-line choices, config
validation, sweeps) without touching any orchestration code.

This module deliberately imports nothing beyond the error hierarchy so
that low-level modules (``core.models``, ``core.weights``,
``nn.optimizers``…) can host their registries without import cycles.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Callable, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")

_MISSING = object()


class UnknownComponentError(ConfigError, KeyError):
    """An unregistered name was looked up.

    Subclasses both :class:`ConfigError` (so config-resolution callers
    get the library's error hierarchy and a readable message) and
    :class:`KeyError` (so dict-style ``try/except KeyError`` code keeps
    working against a registry).
    """

    __str__ = Exception.__str__  # readable message, not KeyError's repr


class Registry(Mapping):
    """A case-insensitive ``name -> component`` mapping with registration.

    Supports the read-only :class:`~collections.abc.Mapping` protocol
    (``in``, ``len``, iteration, ``.items()``, ``sorted(...)``).  Unknown
    names raise :class:`UnknownComponentError` — a :class:`ConfigError`
    that is also a :class:`KeyError` — listing the known identifiers;
    unlike ``dict.get``, :meth:`get` raises too unless an explicit
    default is supplied.

    Usage::

        MODELS = Registry("model")

        @MODELS.register("distmult")
        def make_distmult(...): ...

        MODELS.register("adam", Adam)       # non-decorator form
        MODELS.get("DistMult")              # case-insensitive
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, object] = {}

    # ----------------------------------------------------------- registration
    def register(self, name: str, component: T | None = None) -> T | Callable[[T], T]:
        """Register *component* under *name*; usable as a decorator.

        Returns the component unchanged so decorated functions/classes
        keep their original identity.  Duplicate names raise
        :class:`ConfigError` — shadowing a component silently is how
        sweeps stop being reproducible.
        """
        key = self._normalize(name)
        if key in self._entries:
            raise ConfigError(f"duplicate {self.kind} registration: {key!r}")
        if component is not None:
            self._entries[key] = component
            return component

        def decorator(obj: T) -> T:
            if key in self._entries:
                raise ConfigError(f"duplicate {self.kind} registration: {key!r}")
            self._entries[key] = obj
            return obj

        return decorator

    # ---------------------------------------------------------------- lookup
    def get(self, name: str, default: object = _MISSING) -> object:
        """Resolve *name*; raise :class:`UnknownComponentError` (or return *default*)."""
        key = self._normalize(name)
        if key in self._entries:
            return self._entries[key]
        if default is not _MISSING:
            return default
        known = ", ".join(sorted(self._entries)) or "<none>"
        raise UnknownComponentError(f"unknown {self.kind} {name!r}; known: {known}")

    def names(self) -> list[str]:
        """All registered identifiers, sorted."""
        return sorted(self._entries)

    # ------------------------------------------------------ Mapping protocol
    def __getitem__(self, name: str) -> object:
        return self.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: object) -> bool:
        # Membership tests must never raise, even on "" / non-strings.
        if not isinstance(name, str) or not name:
            return False
        return name.lower() in self._entries

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {self.names()})"

    @staticmethod
    def _normalize(name: str) -> str:
        if not isinstance(name, str) or not name:
            raise ConfigError(f"registry names must be non-empty strings, got {name!r}")
        return name.lower()
