"""The built-in component registries, gathered in one place.

Most registries live next to the components they index (so the modules
stay self-contained); this module re-exports them under pipeline-level
names and adds the dataset-generator registry, which has no natural
lower-level home because generators span :mod:`repro.kg` submodules.

Registering a new component in any of these registries makes it
addressable from :class:`~repro.pipeline.config.RunConfig`, the CLI, and
:func:`~repro.pipeline.sweep.sweep` without touching orchestration code.
"""

from __future__ import annotations

from repro.core.models import MODEL_FACTORIES as MODELS
from repro.core.weights import PRESETS as OMEGA_PRESETS
from repro.errors import ConfigError
from repro.kg.graph import KGDataset
from repro.kg.io import load_dataset_directory
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.kg.synthetic_fb import SyntheticFBConfig, generate_synthetic_fb15k
from repro.nn.losses import LOSSES
from repro.nn.optimizers import OPTIMIZERS
from repro.pipeline.registry import Registry
from repro.training.negatives import NEGATIVE_SAMPLERS

__all__ = [
    "DATASET_GENERATORS",
    "INDEXES",
    "LOSSES",
    "MODELS",
    "NEGATIVE_SAMPLERS",
    "OMEGA_PRESETS",
    "OPTIMIZERS",
    "build_index",
]

#: Dataset generators; entries are called as ``generator(params_dict)``
#: and return a :class:`~repro.kg.graph.KGDataset`.
DATASET_GENERATORS: Registry = Registry("dataset generator")


def _build_config(cls: type, params: dict, generator: str) -> object:
    """Instantiate a config dataclass, mapping bad keys to ConfigError."""
    try:
        return cls(**params)
    except TypeError as error:
        raise ConfigError(
            f"invalid parameter for dataset generator {generator!r}: {error}"
        ) from None


@DATASET_GENERATORS.register("synthetic_wn18")
def _synthetic_wn18(params: dict) -> KGDataset:
    """The synthetic WN18-like graph (see :mod:`repro.kg.synthetic`)."""
    config = _build_config(SyntheticKGConfig, params, "synthetic_wn18")
    return generate_synthetic_kg(config)


@DATASET_GENERATORS.register("synthetic_fb15k")
def _synthetic_fb15k(params: dict) -> KGDataset:
    """The synthetic FB15k-flavoured graph (see :mod:`repro.kg.synthetic_fb`)."""
    config = _build_config(SyntheticFBConfig, params, "synthetic_fb15k")
    return generate_synthetic_fb15k(config)


#: Retrieval-index factories; entries are called as
#: ``factory(model, section, workers=0)`` with an
#: :class:`~repro.pipeline.config.IndexSection` and return a
#: :class:`~repro.index.base.CandidateIndex`.  The heavyweight index
#: modules are imported inside the factories so registering them keeps
#: ``import repro.pipeline`` cheap.
INDEXES: Registry = Registry("retrieval index")


@INDEXES.register("ivf")
def _ivf_index(model, section, workers: int = 0):
    """K-means inverted file (see :mod:`repro.index.ivf`)."""
    from repro.index.ivf import IVFIndex
    from repro.index.pq import PQConfig

    pq = None
    if section.pq_m is not None:
        pq = PQConfig(
            m=section.pq_m,
            refine=section.pq_refine,
            train_sample=(
                section.train_sample if section.train_sample is not None else 65536
            ),
            seed=section.seed,
        )
    return IVFIndex(
        model,
        nlist=section.nlist,
        nprobe=section.nprobe,
        seed=section.seed,
        iters=section.iters,
        spill=section.spill,
        pq=pq,
        train_sample=section.train_sample,
        fold_cache=section.fold_cache,
        on_stale=section.on_stale,
        workers=workers,
    )


@INDEXES.register("exact")
def _exact_index(model, section, workers: int = 0):
    """Brute-force oracle index (see :mod:`repro.index.exact`)."""
    from repro.index.exact import ExactIndex

    return ExactIndex(model, on_stale=section.on_stale)


def build_index(model, section, workers: int = 0):
    """Construct the index selected by an :class:`IndexSection`.

    Returns ``None`` for ``kind="none"``; partitions are built lazily —
    call ``index.build()`` for an eager (optionally fanned-out) build.
    """
    if not section.enabled:
        return None
    return INDEXES.get(section.kind)(model, section, workers=workers)


@DATASET_GENERATORS.register("directory")
def _directory(params: dict) -> KGDataset:
    """Load train/valid/test files from ``params["path"]`` on disk."""
    params = dict(params)
    path = params.pop("path", None)
    if path is None:
        raise ConfigError('dataset generator "directory" requires a "path" parameter')
    if params:
        raise ConfigError(
            f'unknown parameters for dataset generator "directory": {sorted(params)}'
        )
    return load_dataset_directory(path)
