"""Grid sweeps: expand a grid spec into seeded child runs.

The paper's §5.3 experiments grid-search learning rates, regularization
strengths and batch sizes per model; :func:`sweep` expresses that as a
base :class:`~repro.pipeline.config.RunConfig` plus a grid of dotted
field paths::

    sweep(base, {
        "training.learning_rate": [1e-3, 1e-4],
        "model.regularization": [1e-2, 1e-3, 0.0],
    }, seeds=[0, 1])

Expansion is deterministic (sorted keys, row-major product, seeds
outermost), every child config revalidates through ``RunConfig``, and —
because each child's RNG streams derive only from its config — running
the same grid spec twice yields bit-identical per-run metrics.  With
``workers=N`` the children execute on a process pool
(:mod:`repro.parallel.sweeps`) with crash isolation and a config-hash
result cache, still writing the exact run-dir trees a serial sweep
would.
"""

from __future__ import annotations

import itertools
import re
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import ConfigError, SweepError
from repro.eval.metrics import RankingMetrics
from repro.kg.graph import KGDataset
from repro.pipeline.config import RunConfig
from repro.pipeline.runner import RunResult, run_pipeline


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> list[dict[str, Any]]:
    """All grid points as override dicts, in deterministic order.

    Keys are dotted ``RunConfig`` field paths (``"training.epochs"``,
    ``"model.total_dim"``, ``"dataset.params.num_entities"``, or a
    top-level ``"seed"``); values are the candidate lists.  Keys are
    sorted before taking the product, so the expansion order does not
    depend on dict insertion order.
    """
    if not grid:
        return [{}]
    keys = sorted(grid)
    for key in keys:
        values = grid[key]
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise ConfigError(f"grid values for {key!r} must be a sequence of candidates")
        if len(values) == 0:
            raise ConfigError(f"grid values for {key!r} must be non-empty")
    return [
        dict(zip(keys, combo))
        for combo in itertools.product(*(grid[key] for key in keys))
    ]


def apply_overrides(config: RunConfig, overrides: Mapping[str, Any]) -> RunConfig:
    """A copy of *config* with dotted-path *overrides* applied.

    Goes through ``to_dict``/``from_dict`` so every override is
    re-validated; unknown paths raise :class:`ConfigError` naming the
    offending segment.
    """
    data = config.to_dict()
    for path, value in overrides.items():
        parts = path.split(".")
        node = data
        for depth, part in enumerate(parts[:-1]):
            if not isinstance(node, dict) or part not in node:
                raise ConfigError(
                    f"unknown config path {path!r} (no section {'.'.join(parts[: depth + 1])!r})"
                )
            node = node[part]
        leaf = parts[-1]
        # dataset.params and model.options are free-form dicts: new keys
        # are legitimate there, everywhere else the field must exist.
        free_form = parts[:-1] in (["dataset", "params"], ["model", "options"])
        if not isinstance(node, dict) or (leaf not in node and not free_form):
            raise ConfigError(f"unknown config path {path!r} (no field {leaf!r})")
        node[leaf] = value
    return RunConfig.from_dict(data)


def _slug(overrides: Mapping[str, Any], seed: int | None) -> str:
    parts = [f"{key.split('.')[-1]}={overrides[key]}" for key in sorted(overrides)]
    if seed is not None:
        parts.append(f"seed={seed}")
    text = ",".join(parts) if parts else "base"
    # Filesystem-safe: override values may contain '/', spaces, braces…
    return re.sub(r"[^A-Za-z0-9_.=,+-]+", "-", text).strip("-")[:96]


@dataclass
class SweepRun:
    """One child run of a sweep: its overrides, config, and outcome.

    ``status`` is ``"completed"``, ``"failed"`` (crash-isolated child;
    see *on_error*) or ``"cached"`` (skipped because a previous sweep
    already completed an identical config in the same ``run_root``).
    ``result`` carries the full in-memory :class:`RunResult` only for
    children executed serially in this process (``workers=0``); pool
    children and cached children expose their ``metrics`` instead.
    """

    index: int
    overrides: dict[str, Any]
    config: RunConfig
    result: RunResult | None = None
    status: str = "completed"
    error: str | None = None
    metrics: dict[str, RankingMetrics] | None = None
    run_dir: Path | None = None

    @property
    def label(self) -> str:
        return self.config.label or f"run{self.index:03d}"

    @property
    def ok(self) -> bool:
        return self.status in ("completed", "cached")

    @property
    def test_metrics(self) -> RankingMetrics | None:
        """Metrics on the child's evaluation split, however it was run."""
        if self.metrics is None:
            return None
        return self.metrics.get(self.config.evaluation.split)


@dataclass(frozen=True)
class _ChildSpec:
    """One planned child: everything needed to run (or skip) it."""

    index: int
    overrides: dict[str, Any]
    config: RunConfig
    slug: str
    run_dir: Path | None


def _plan_children(
    base: RunConfig,
    grid: Mapping[str, Sequence[Any]],
    seeds: Sequence[int] | None,
    run_root: str | Path | None,
) -> list[_ChildSpec]:
    """Expand the grid into fully-resolved child specs, in sweep order."""
    seed_list: list[int | None] = list(seeds) if seeds is not None else [None]
    if not seed_list:
        raise ConfigError("seeds must be non-empty when given")
    specs: list[_ChildSpec] = []
    index = 0
    for overrides in expand_grid(grid):
        for seed in seed_list:
            child_overrides = dict(overrides)
            if seed is not None:
                child_overrides["seed"] = seed
            config = apply_overrides(base, child_overrides)
            slug = _slug(overrides, seed)
            config = RunConfig.from_dict(
                {**config.to_dict(), "label": config.label or slug}
            )
            run_dir = (
                Path(run_root) / f"run{index:03d}-{slug}"
                if run_root is not None
                else None
            )
            specs.append(
                _ChildSpec(
                    index=index,
                    overrides=child_overrides,
                    config=config,
                    slug=slug,
                    run_dir=run_dir,
                )
            )
            index += 1
    return specs


def _run_serial_child(
    spec: _ChildSpec,
    dataset: KGDataset | None,
    dataset_cache: dict[str, KGDataset],
    on_error: str,
    retries: int = 0,
    backoff: float = 0.0,
) -> SweepRun:
    """Run one child in this process, keeping the full RunResult.

    Mirrors the pool's retry classification: a child that dies with a
    :class:`~repro.errors.TransientError` is re-run (with deterministic
    exponential backoff) up to *retries* times before being recorded as
    failed; deterministic failures fail on the first attempt.
    """
    import time as _time

    from repro.errors import TransientError
    from repro.parallel.sweeps import child_dataset, config_hash, write_status

    digest = config_hash(spec.config)
    try:
        for attempt in range(retries + 1):
            if attempt and backoff:
                _time.sleep(backoff * (2 ** (attempt - 1)))
            try:
                from repro.obs.trace import trace_scope

                built = child_dataset(spec.config, dataset_cache, pinned=dataset)
                with trace_scope(
                    "sweep.child", index=spec.index, run_dir=str(spec.run_dir)
                ):
                    result = run_pipeline(
                        spec.config, dataset=built, run_dir=spec.run_dir
                    )
                break
            except TransientError:
                if attempt >= retries:
                    raise
    except Exception:
        error = traceback.format_exc()
        if spec.run_dir is not None:
            write_status(spec.run_dir, "failed", digest, error=error)
        if on_error == "raise":
            raise
        return SweepRun(
            index=spec.index,
            overrides=spec.overrides,
            config=spec.config,
            status="failed",
            error=error,
            run_dir=spec.run_dir,
        )
    if spec.run_dir is not None:
        write_status(spec.run_dir, "completed", digest)
    return SweepRun(
        index=spec.index,
        overrides=spec.overrides,
        config=spec.config,
        result=result,
        metrics=dict(result.metrics),
        run_dir=spec.run_dir,
    )


def sweep(
    base: RunConfig,
    grid: Mapping[str, Sequence[Any]],
    seeds: Sequence[int] | None = None,
    run_root: str | Path | None = None,
    dataset: KGDataset | None = None,
    workers: int = 0,
    on_error: str | None = None,
    resume: bool = True,
    retries: int = 0,
    backoff: float = 0.0,
    task_timeout: float | None = None,
    fault_plan=None,
) -> list[SweepRun]:
    """Run every grid point (crossed with *seeds*, if given) as a child run.

    Each child is ``base`` with its grid overrides applied (and its
    ``seed`` replaced when *seeds* is given), labelled deterministically.
    With *run_root*, child ``i`` persists its artifacts under
    ``run_root/run<i>-<slug>/`` — including a ``status.json`` whose
    config hash makes completed children *resumable*: re-running the
    same sweep over the same root skips them (``status="cached"``,
    ``result=None`` — read their ``metrics``/``test_metrics`` instead).
    Pass ``resume=False`` to ignore the cache and re-execute every
    child (results are overwritten in place).

    ``workers`` dispatches children to that many worker processes
    (``0`` = serial in-process execution).  Every child's RNG streams
    derive only from its config, so worker count and scheduling cannot
    change any result — parallel and serial sweeps write identical
    run-dir trees.

    ``on_error`` controls crash isolation: ``"record"`` (default for
    ``workers >= 1``) turns a failing child into a ``status="failed"``
    entry (recorded in its run dir) and continues; ``"raise"`` (default
    for serial sweeps, matching the historical behaviour) re-raises.

    ``retries``/``backoff``/``task_timeout`` heal *transient* child
    failures (a :class:`~repro.errors.TransientError`, a hard worker
    death, a timeout) through the pool's retry machinery before the
    child is recorded as failed — deterministic failures still fail
    fast.  ``fault_plan`` arms a reproducible
    :class:`~repro.reliability.faults.FaultPlan` in every child (chaos
    testing).

    Datasets are cached per distinct ``dataset`` section — serially in
    the parent, per-process in workers — so a sweep over training
    hyperparameters builds each graph once per process.  Pass *dataset*
    to pin one shared dataset for every child regardless of config.
    """
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    if retries < 0:
        raise ConfigError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise ConfigError(f"backoff must be >= 0, got {backoff}")
    if on_error is None:
        on_error = "raise" if workers == 0 else "record"
    if on_error not in ("raise", "record"):
        raise ConfigError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    from repro.parallel import sweeps as parallel_sweeps

    specs = _plan_children(base, grid, seeds, run_root)

    runs: dict[int, SweepRun] = {}
    pending: list[_ChildSpec] = []
    for spec in specs:
        cached = (
            parallel_sweeps.load_cached_child(spec.run_dir, spec.config)
            if resume and spec.run_dir is not None
            else None
        )
        if cached is not None:
            runs[spec.index] = SweepRun(
                index=spec.index,
                overrides=spec.overrides,
                config=spec.config,
                status="cached",
                metrics=cached,
                run_dir=spec.run_dir,
            )
        else:
            pending.append(spec)

    if workers == 0:
        dataset_cache: dict[str, KGDataset] = {}
        for spec in pending:
            runs[spec.index] = _run_serial_child(
                spec, dataset, dataset_cache, on_error, retries=retries, backoff=backoff
            )
    elif pending:
        from repro.parallel.pool import run_tasks

        tasks = [
            {
                "config": spec.config.to_dict(),
                "run_dir": str(spec.run_dir) if spec.run_dir is not None else None,
            }
            for spec in pending
        ]
        outcomes = run_tasks(
            parallel_sweeps.run_sweep_child,
            tasks,
            workers=workers,
            initializer=parallel_sweeps._init_sweep_context,
            initargs=(dataset,),
            retries=retries,
            backoff=backoff,
            task_timeout=task_timeout,
            fault_plan=fault_plan,
        )
        for spec, outcome in zip(pending, outcomes):
            summary = outcome.value if outcome.ok else {"status": "failed", "error": outcome.error}
            run = SweepRun(
                index=spec.index,
                overrides=spec.overrides,
                config=spec.config,
                status=summary["status"],
                error=summary.get("error"),
                metrics=parallel_sweeps.metrics_from_summary(summary),
                run_dir=spec.run_dir,
            )
            runs[spec.index] = run
            if not run.ok and on_error == "raise":
                # The original exception object died with the worker;
                # SweepError is the dedicated carrier for its traceback.
                raise SweepError(f"sweep child {run.label!r} failed:\n{run.error}")
    ordered = [runs[index] for index in sorted(runs)]
    from repro.obs import registry as obs_registry

    obs_registry.inc("sweep.children", len(ordered))
    obs_registry.inc("sweep.cached", sum(1 for r in ordered if r.status == "cached"))
    obs_registry.inc("sweep.failed", sum(1 for r in ordered if r.status == "failed"))
    return ordered
