"""Grid sweeps: expand a grid spec into seeded child runs.

The paper's §5.3 experiments grid-search learning rates, regularization
strengths and batch sizes per model; :func:`sweep` expresses that as a
base :class:`~repro.pipeline.config.RunConfig` plus a grid of dotted
field paths::

    sweep(base, {
        "training.learning_rate": [1e-3, 1e-4],
        "model.regularization": [1e-2, 1e-3, 0.0],
    }, seeds=[0, 1])

Expansion is deterministic (sorted keys, row-major product, seeds
outermost), every child config revalidates through ``RunConfig``, and —
because each child's RNG streams derive only from its config — running
the same grid spec twice yields bit-identical per-run metrics.
"""

from __future__ import annotations

import itertools
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import ConfigError
from repro.kg.graph import KGDataset
from repro.pipeline.config import RunConfig
from repro.pipeline.runner import RunResult, run_pipeline


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> list[dict[str, Any]]:
    """All grid points as override dicts, in deterministic order.

    Keys are dotted ``RunConfig`` field paths (``"training.epochs"``,
    ``"model.total_dim"``, ``"dataset.params.num_entities"``, or a
    top-level ``"seed"``); values are the candidate lists.  Keys are
    sorted before taking the product, so the expansion order does not
    depend on dict insertion order.
    """
    if not grid:
        return [{}]
    keys = sorted(grid)
    for key in keys:
        values = grid[key]
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise ConfigError(f"grid values for {key!r} must be a sequence of candidates")
        if len(values) == 0:
            raise ConfigError(f"grid values for {key!r} must be non-empty")
    return [
        dict(zip(keys, combo))
        for combo in itertools.product(*(grid[key] for key in keys))
    ]


def apply_overrides(config: RunConfig, overrides: Mapping[str, Any]) -> RunConfig:
    """A copy of *config* with dotted-path *overrides* applied.

    Goes through ``to_dict``/``from_dict`` so every override is
    re-validated; unknown paths raise :class:`ConfigError` naming the
    offending segment.
    """
    data = config.to_dict()
    for path, value in overrides.items():
        parts = path.split(".")
        node = data
        for depth, part in enumerate(parts[:-1]):
            if not isinstance(node, dict) or part not in node:
                raise ConfigError(
                    f"unknown config path {path!r} (no section {'.'.join(parts[: depth + 1])!r})"
                )
            node = node[part]
        leaf = parts[-1]
        # dataset.params and model.options are free-form dicts: new keys
        # are legitimate there, everywhere else the field must exist.
        free_form = parts[:-1] in (["dataset", "params"], ["model", "options"])
        if not isinstance(node, dict) or (leaf not in node and not free_form):
            raise ConfigError(f"unknown config path {path!r} (no field {leaf!r})")
        node[leaf] = value
    return RunConfig.from_dict(data)


def _slug(overrides: Mapping[str, Any], seed: int | None) -> str:
    parts = [f"{key.split('.')[-1]}={overrides[key]}" for key in sorted(overrides)]
    if seed is not None:
        parts.append(f"seed={seed}")
    text = ",".join(parts) if parts else "base"
    # Filesystem-safe: override values may contain '/', spaces, braces…
    return re.sub(r"[^A-Za-z0-9_.=,+-]+", "-", text).strip("-")[:96]


@dataclass
class SweepRun:
    """One child run of a sweep: its overrides, config, and result."""

    index: int
    overrides: dict[str, Any]
    config: RunConfig
    result: RunResult

    @property
    def label(self) -> str:
        return self.config.label or f"run{self.index:03d}"


def sweep(
    base: RunConfig,
    grid: Mapping[str, Sequence[Any]],
    seeds: Sequence[int] | None = None,
    run_root: str | Path | None = None,
    dataset: KGDataset | None = None,
) -> list[SweepRun]:
    """Run every grid point (crossed with *seeds*, if given) as a child run.

    Each child is ``base`` with its grid overrides applied (and its
    ``seed`` replaced when *seeds* is given), labelled deterministically.
    With *run_root*, child ``i`` persists its artifacts under
    ``run_root/run<i>-<slug>/``.  Datasets are cached per distinct
    ``dataset`` section, so a sweep over training hyperparameters builds
    the graph once.  Pass *dataset* to pin one shared dataset for every
    child regardless of config.
    """
    seed_list: list[int | None] = list(seeds) if seeds is not None else [None]
    if not seed_list:
        raise ConfigError("seeds must be non-empty when given")
    points = expand_grid(grid)
    dataset_cache: dict[str, KGDataset] = {}
    runs: list[SweepRun] = []
    index = 0
    for overrides in points:
        for seed in seed_list:
            child_overrides = dict(overrides)
            if seed is not None:
                child_overrides["seed"] = seed
            config = apply_overrides(base, child_overrides)
            slug = _slug(overrides, seed)
            config = RunConfig.from_dict(
                {**config.to_dict(), "label": config.label or slug}
            )
            child_dataset = dataset
            if child_dataset is None:
                key = json.dumps(
                    {"generator": config.dataset.generator, "params": config.dataset.params},
                    sort_keys=True,
                    default=str,
                )
                child_dataset = dataset_cache.get(key)
                if child_dataset is None:
                    child_dataset = config.dataset.build()
                    dataset_cache[key] = child_dataset
            run_dir = (
                Path(run_root) / f"run{index:03d}-{slug}" if run_root is not None else None
            )
            result = run_pipeline(config, dataset=child_dataset, run_dir=run_dir)
            runs.append(
                SweepRun(index=index, overrides=child_overrides, config=config, result=result)
            )
            index += 1
    return runs
