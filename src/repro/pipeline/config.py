"""Declarative run configuration: the ``RunConfig`` dataclass tree.

A :class:`RunConfig` fully describes one experiment — dataset, model,
training hyperparameters, and evaluation protocol — as plain data.  It
serializes to/from JSON (``to_json``/``from_json``/``save``/``load``),
validates every field eagerly with field-named
:class:`~repro.errors.ConfigError` messages, and resolves component
names (model, optimizer, negative sampler, dataset generator) against
the pipeline registries, so a config referencing an unknown component
fails at construction time, not mid-run.

Seeding convention (matching the paper-table harness): the run-level
``seed`` drives training (shuffling + negative sampling); model
initialization uses ``seed + 1000 + model.seed_offset`` unless
``model.init_seed`` pins it explicitly.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigError
from repro.kg.graph import KGDataset
from repro.pipeline.components import DATASET_GENERATORS, MODELS, OMEGA_PRESETS
from repro.training.trainer import TrainingConfig

_EVAL_SPLITS = ("test", "valid")


def _check_keys(data: Mapping[str, Any], cls: type, context: str) -> None:
    """Reject keys that are not fields of *cls*, naming them."""
    if not isinstance(data, Mapping):
        raise ConfigError(f"{context} must be a mapping, got {type(data).__name__}")
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ConfigError(
            f"unknown {context} field(s) {unknown}; allowed: {sorted(allowed)}"
        )


def _section_from_dict(cls, data: Mapping[str, Any], context: str):
    _check_keys(data, cls, context)
    return cls(**dict(data))


@dataclass(frozen=True)
class DatasetSection:
    """Which dataset to build, and how.

    ``generator`` names an entry of the ``DATASET_GENERATORS`` registry;
    ``params`` is passed to it verbatim (e.g. ``num_entities``/``seed``
    for the synthetic generators, ``path`` for ``directory``).
    """

    generator: str = "synthetic_wn18"
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.generator not in DATASET_GENERATORS:
            raise ConfigError(
                f"dataset.generator must be one of {DATASET_GENERATORS.names()}, "
                f"got {self.generator!r}"
            )
        if not isinstance(self.params, Mapping):
            raise ConfigError(
                f"dataset.params must be a mapping, got {type(self.params).__name__}"
            )
        object.__setattr__(self, "params", dict(self.params))

    def build(self) -> KGDataset:
        """Construct the dataset (deterministic for the synthetic generators)."""
        return DATASET_GENERATORS.get(self.generator)(dict(self.params))


def _split_model_name(name: str) -> tuple[str, bool]:
    """``("cph", False)`` for registry names, ``("cph", True)`` for ``omega:cph``.

    The ``omega:`` prefix forces ω-preset resolution, reaching presets
    whose key a model factory shadows (``omega:distmult`` is the Table 1
    two-embedding derivation; plain ``distmult`` is the §5.3
    one-embedding factory).
    """
    if isinstance(name, str) and name.lower().startswith("omega:"):
        return name[len("omega:"):], True
    return name, False


@dataclass(frozen=True)
class ModelSection:
    """Which model to build, and how.

    ``name`` is resolved first against the model-factory registry
    (``distmult``, ``complex``, …, ``learned``), then against the ω
    preset registry — so Table 1/2 weight vectors are directly
    addressable (``bad_example_1``, ``uniform``, ``distmult_n1``…).
    Prefix the name with ``omega:`` to force preset resolution when a
    factory shadows the preset key (e.g. ``omega:distmult``).
    ``options`` forwards extra factory keywords (``transform``/``sparse``
    for the learned model, ``use_compiled_kernel``, a ``loss`` name…).
    """

    name: str = "complex"
    total_dim: int = 64
    regularization: float = 3e-3
    seed_offset: int = 0
    init_seed: int | None = None
    options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        name, is_preset = _split_model_name(self.name)
        known = (name in OMEGA_PRESETS) if is_preset else (
            name in MODELS or name in OMEGA_PRESETS
        )
        if not known:
            raise ConfigError(
                f"model.name must be a registered model {MODELS.names()} "
                f"or ω preset {OMEGA_PRESETS.names()} (optionally 'omega:'-"
                f"prefixed), got {self.name!r}"
            )
        if self.total_dim < 1:
            raise ConfigError(f"model.total_dim must be >= 1, got {self.total_dim}")
        if self.regularization < 0:
            raise ConfigError(
                f"model.regularization must be >= 0, got {self.regularization}"
            )
        if not isinstance(self.options, Mapping):
            raise ConfigError(
                f"model.options must be a mapping, got {type(self.options).__name__}"
            )
        object.__setattr__(self, "options", dict(self.options))


@dataclass(frozen=True)
class TrainingSection:
    """Training hyperparameters (mirrors :class:`TrainingConfig` sans seed)."""

    epochs: int = 200
    batch_size: int = 1024
    learning_rate: float = 0.02
    optimizer: str = "adam"
    num_negatives: int = 1
    negative_sampler: str = "uniform"
    validate_every: int = 50
    patience: int = 100
    verbose: bool = False

    def __post_init__(self) -> None:
        # TrainingConfig.__post_init__ carries the authoritative range and
        # registry checks; constructing one validates every field here.
        self.training_config(seed=0)

    def training_config(self, seed: int, verbose: bool | None = None) -> TrainingConfig:
        """The :class:`TrainingConfig` for one run with the given seed."""
        return TrainingConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            optimizer=self.optimizer,
            num_negatives=self.num_negatives,
            negative_sampler=self.negative_sampler,
            validate_every=self.validate_every,
            patience=self.patience,
            seed=seed,
            verbose=self.verbose if verbose is None else verbose,
        )


@dataclass(frozen=True)
class EvalSection:
    """Evaluation protocol for the run."""

    split: str = "test"
    evaluate_train: bool = False
    train_eval_triples: int = 1000
    batch_size: int | None = None

    def __post_init__(self) -> None:
        if self.split not in _EVAL_SPLITS:
            raise ConfigError(
                f"evaluation.split must be one of {list(_EVAL_SPLITS)}, got {self.split!r}"
            )
        if self.train_eval_triples < 1:
            raise ConfigError(
                f"evaluation.train_eval_triples must be >= 1, got {self.train_eval_triples}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigError(
                f"evaluation.batch_size must be >= 1 or null, got {self.batch_size}"
            )


_INDEX_KINDS = ("none", "ivf", "exact")
_STALE_POLICIES = ("rebuild", "error")


@dataclass(frozen=True)
class IndexSection:
    """Approximate-retrieval index settings for serving a run.

    ``kind="none"`` (default) serves exact full sweeps.  ``"ivf"``
    builds the k-means inverted file of :mod:`repro.index.ivf` (with
    ``nlist``/``nprobe`` defaulting from the entity count), ``"exact"``
    the brute-force oracle.  With a run directory the index is built
    after training and persisted next to the checkpoint, so
    ``serve_run``/the ``predict`` CLI can reload it without rebuilding.

    ``pq_m`` switches on the product-quantized coarse pass
    (:mod:`repro.index.pq`): probed unions are pruned to ``pq_refine``
    survivors by an ADC scan before the exact re-rank.  ``train_sample``
    bounds the k-means/codebook fitting cost at million-entity scale,
    and ``fold_cache`` sizes the folded-matrix LRU the builds stream
    through.
    """

    kind: str = "none"
    nlist: int | None = None
    nprobe: int | None = None
    seed: int = 0
    iters: int = 10
    spill: int = 2
    pq_m: int | None = None
    pq_refine: int = 64
    train_sample: int | None = None
    fold_cache: int = 2
    on_stale: str = "rebuild"

    def __post_init__(self) -> None:
        if self.kind not in _INDEX_KINDS:
            raise ConfigError(
                f"index.kind must be one of {list(_INDEX_KINDS)}, got {self.kind!r}"
            )
        if self.nlist is not None and self.nlist < 1:
            raise ConfigError(f"index.nlist must be >= 1 or null, got {self.nlist}")
        if self.nprobe is not None and self.nprobe < 1:
            raise ConfigError(f"index.nprobe must be >= 1 or null, got {self.nprobe}")
        if (
            self.nlist is not None
            and self.nprobe is not None
            and self.nprobe > self.nlist
        ):
            # Catch the typo at config time, not after an hours-long
            # training run when the index finally builds.
            raise ConfigError(
                f"index.nprobe must be <= index.nlist, got {self.nprobe} > {self.nlist}"
            )
        if self.seed < 0:
            raise ConfigError(f"index.seed must be >= 0, got {self.seed}")
        if self.iters < 1:
            raise ConfigError(f"index.iters must be >= 1, got {self.iters}")
        if self.spill < 1:
            raise ConfigError(f"index.spill must be >= 1, got {self.spill}")
        if self.pq_m is not None and self.pq_m < 1:
            raise ConfigError(f"index.pq_m must be >= 1 or null, got {self.pq_m}")
        if self.pq_refine < 1:
            raise ConfigError(f"index.pq_refine must be >= 1, got {self.pq_refine}")
        if self.train_sample is not None and self.train_sample < 1:
            raise ConfigError(
                f"index.train_sample must be >= 1 or null, got {self.train_sample}"
            )
        if self.fold_cache < 1:
            raise ConfigError(f"index.fold_cache must be >= 1, got {self.fold_cache}")
        if self.on_stale not in _STALE_POLICIES:
            raise ConfigError(
                f"index.on_stale must be one of {list(_STALE_POLICIES)}, "
                f"got {self.on_stale!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this section selects any index at all."""
        return self.kind != "none"


_STORAGE_DTYPES = ("float64", "float32", "float16")


@dataclass(frozen=True)
class StorageSection:
    """How the run directory stores its model checkpoint.

    ``memmap=True`` writes the checkpoint as a directory of plain
    ``.npy`` files (:mod:`repro.core.memstore`) instead of one
    ``weights.npz``; loading then memory-maps the tables read-only, so
    eval workers and the serving daemon share OS pages instead of
    private copies.  ``dtype`` optionally downcasts the embedding tables
    (``float32`` halves, ``float16`` quarters the footprint); the save
    refuses any downcast whose serving-path score deviation on seeded
    probe triples exceeds ``equivalence_tol`` (``null`` disables the
    gate — explicitly accepting lossy storage).

    ``float64`` + ``memmap`` is bit-identical to the npz layout; a lossy
    ``dtype`` changes stored parameters and therefore re-evaluation
    results, which is why it is opt-in and gated.
    """

    memmap: bool = False
    dtype: str = "float64"
    equivalence_tol: float | None = 1e-6

    def __post_init__(self) -> None:
        if not isinstance(self.memmap, bool):
            raise ConfigError(
                f"storage.memmap must be a boolean, got {self.memmap!r}"
            )
        if self.dtype not in _STORAGE_DTYPES:
            raise ConfigError(
                f"storage.dtype must be one of {list(_STORAGE_DTYPES)}, "
                f"got {self.dtype!r}"
            )
        if self.equivalence_tol is not None and not self.equivalence_tol > 0:
            raise ConfigError(
                f"storage.equivalence_tol must be > 0 or null, "
                f"got {self.equivalence_tol}"
            )


_SHARD_AXES = ("triples", "entities")


@dataclass(frozen=True)
class ParallelSection:
    """Parallel-execution settings for the run's evaluation phase.

    ``eval_shards`` splits every ranking evaluation into that many
    shards along ``shard_axis``; ``eval_workers`` scores the shards in
    that many worker processes (``0`` = in-process).  These knobs are
    meant to change wall-clock time and peak memory, never results:
    the ``"triples"`` axis (default) is bit-identical to the serial
    evaluator *by construction*, the ``"entities"`` axis by regression
    contract (see :mod:`repro.parallel.sharded_eval` for the exact
    guarantee each axis carries).
    """

    eval_shards: int = 1
    eval_workers: int = 0
    shard_axis: str = "triples"

    def __post_init__(self) -> None:
        if self.eval_shards < 1:
            raise ConfigError(
                f"parallel.eval_shards must be >= 1, got {self.eval_shards}"
            )
        if self.eval_workers < 0:
            raise ConfigError(
                f"parallel.eval_workers must be >= 0, got {self.eval_workers}"
            )
        if self.shard_axis not in _SHARD_AXES:
            raise ConfigError(
                f"parallel.shard_axis must be one of {list(_SHARD_AXES)}, "
                f"got {self.shard_axis!r}"
            )

    @property
    def is_serial(self) -> bool:
        """Whether this section selects the plain serial evaluator."""
        return self.eval_shards == 1 and self.eval_workers == 0


_SERVING_INDEX_MODES = ("none", "auto", "require")


@dataclass(frozen=True)
class ServingSection:
    """Serving-daemon settings for a run (the ``serve`` CLI command).

    Knobs of the micro-batching loop in :mod:`repro.serving.server`:
    ``max_batch`` requests are drained per tick, a tick waits at most
    ``max_wait_ms`` for stragglers, and requests beyond ``queue_depth``
    fast-fail with a retry-after hint instead of queueing unboundedly.
    ``index`` selects how the daemon attaches the run's retrieval index
    (``"auto"`` uses a persisted one when present, ``"require"`` builds
    one if missing, ``"none"`` serves exact sweeps); stale persisted
    indexes are always *refused* at swap time, never rebuilt on the
    request path.  ``port=0`` binds an ephemeral port.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 64
    max_wait_ms: float = 2.0
    queue_depth: int = 1024
    default_k: int = 10
    index: str = "auto"

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ConfigError(f"serving.host must be a nonempty string, got {self.host!r}")
        if not 0 <= self.port <= 65535:
            raise ConfigError(f"serving.port must be in [0, 65535], got {self.port}")
        if self.max_batch < 1:
            raise ConfigError(f"serving.max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ConfigError(
                f"serving.max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.queue_depth < 1:
            raise ConfigError(
                f"serving.queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.default_k < 1:
            raise ConfigError(f"serving.default_k must be >= 1, got {self.default_k}")
        if self.index not in _SERVING_INDEX_MODES:
            raise ConfigError(
                f"serving.index must be one of {list(_SERVING_INDEX_MODES)}, "
                f"got {self.index!r}"
            )

    @property
    def index_mode(self) -> str | None:
        """The ``serve_run``/daemon index argument (None for ``"none"``)."""
        return None if self.index == "none" else self.index


@dataclass(frozen=True)
class IngestSection:
    """Incremental-ingestion settings (the ``ingest`` CLI command and the
    serving daemon's ``apply_delta`` op).

    Field-for-field these mirror the keyword knobs of
    :func:`repro.ingest.ingest_delta`, so ``dataclasses.asdict`` of this
    section splats straight into it.  ``epochs`` is the warm-start
    fine-tuning budget per delta (``0`` grows tables without training);
    ``drift_threshold`` is the fraction of re-assigned dirty entities
    past which incremental IVF maintenance gives up and triggers a full
    rebuild; ``grow_initializer`` names how fresh embedding rows are
    drawn (:mod:`repro.nn.initializers`).
    """

    epochs: int = 2
    batch_size: int = 256
    learning_rate: float = 0.01
    optimizer: str = "adam"
    num_negatives: int = 1
    seed: int = 0
    drift_threshold: float = 0.5
    grow_initializer: str = "unit_normalized"

    def __post_init__(self) -> None:
        from repro.nn.initializers import INITIALIZERS
        from repro.nn.optimizers import OPTIMIZERS

        if self.epochs < 0:
            raise ConfigError(f"ingest.epochs must be >= 0, got {self.epochs}")
        if self.batch_size < 1:
            raise ConfigError(f"ingest.batch_size must be >= 1, got {self.batch_size}")
        if not self.learning_rate > 0:
            raise ConfigError(
                f"ingest.learning_rate must be > 0, got {self.learning_rate}"
            )
        if self.optimizer not in OPTIMIZERS:
            raise ConfigError(
                f"ingest.optimizer must be one of {OPTIMIZERS.names()}, "
                f"got {self.optimizer!r}"
            )
        if self.num_negatives < 1:
            raise ConfigError(
                f"ingest.num_negatives must be >= 1, got {self.num_negatives}"
            )
        if self.seed < 0:
            raise ConfigError(f"ingest.seed must be >= 0, got {self.seed}")
        if not 0 < self.drift_threshold <= 1:
            raise ConfigError(
                f"ingest.drift_threshold must be in (0, 1], "
                f"got {self.drift_threshold}"
            )
        if self.grow_initializer not in INITIALIZERS:
            raise ConfigError(
                f"ingest.grow_initializer must be one of {sorted(INITIALIZERS)}, "
                f"got {self.grow_initializer!r}"
            )

    def ingest_kwargs(self) -> dict:
        """The keyword arguments for :func:`repro.ingest.ingest_delta`."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ObservabilitySection:
    """Telemetry settings (:mod:`repro.obs`).

    ``enabled`` turns on per-run telemetry in the pipeline runner: a
    metrics registry and tracer are installed for the run's duration
    and the span stream lands in ``<run_dir>/telemetry.jsonl`` (never
    listed in ``manifest.json`` — telemetry must not change what a run
    hashes to).  Telemetry can equally be enabled *ambiently* with
    :class:`repro.obs.telemetry_scope`, which leaves the config — and
    therefore every artifact byte — untouched.  ``slow_query_ms`` is
    the serving daemon's slow-query threshold (micro-batch groups whose
    per-request service time exceeds it are logged and ring-buffered);
    ``ring_size`` bounds the in-memory span ring.
    """

    enabled: bool = False
    slow_query_ms: float = 250.0
    ring_size: int = 4096

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            raise ConfigError(
                f"observability.enabled must be a bool, got {self.enabled!r}"
            )
        if not self.slow_query_ms > 0:
            raise ConfigError(
                f"observability.slow_query_ms must be > 0, got {self.slow_query_ms}"
            )
        if self.ring_size < 1:
            raise ConfigError(
                f"observability.ring_size must be >= 1, got {self.ring_size}"
            )


@dataclass(frozen=True)
class RunConfig:
    """A complete, serializable description of one training/eval run."""

    dataset: DatasetSection = field(default_factory=DatasetSection)
    model: ModelSection = field(default_factory=ModelSection)
    training: TrainingSection = field(default_factory=TrainingSection)
    evaluation: EvalSection = field(default_factory=EvalSection)
    parallel: ParallelSection = field(default_factory=ParallelSection)
    index: IndexSection = field(default_factory=IndexSection)
    serving: ServingSection = field(default_factory=ServingSection)
    storage: StorageSection = field(default_factory=StorageSection)
    ingest: IngestSection = field(default_factory=IngestSection)
    observability: ObservabilitySection = field(default_factory=ObservabilitySection)
    seed: int = 0
    label: str | None = None

    def __post_init__(self) -> None:
        for name, cls in (
            ("dataset", DatasetSection),
            ("model", ModelSection),
            ("training", TrainingSection),
            ("evaluation", EvalSection),
            ("parallel", ParallelSection),
            ("index", IndexSection),
            ("serving", ServingSection),
            ("storage", StorageSection),
            ("ingest", IngestSection),
            ("observability", ObservabilitySection),
        ):
            if not isinstance(getattr(self, name), cls):
                raise ConfigError(f"RunConfig.{name} must be a {cls.__name__}")

    @property
    def model_init_seed(self) -> int:
        """Seed of the model-initialization RNG stream."""
        if self.model.init_seed is not None:
            return self.model.init_seed
        return self.seed + 1000 + self.model.seed_offset

    # ------------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """Plain-data form (JSON-compatible)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunConfig":
        """Build from plain data; unknown fields raise :class:`ConfigError`."""
        _check_keys(data, cls, "run config")
        seed = data.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ConfigError(f"run config field 'seed' must be an integer, got {seed!r}")
        return cls(
            dataset=_section_from_dict(
                DatasetSection, data.get("dataset", {}), "dataset"
            ),
            model=_section_from_dict(ModelSection, data.get("model", {}), "model"),
            training=_section_from_dict(
                TrainingSection, data.get("training", {}), "training"
            ),
            evaluation=_section_from_dict(
                EvalSection, data.get("evaluation", {}), "evaluation"
            ),
            parallel=_section_from_dict(
                ParallelSection, data.get("parallel", {}), "parallel"
            ),
            index=_section_from_dict(IndexSection, data.get("index", {}), "index"),
            serving=_section_from_dict(
                ServingSection, data.get("serving", {}), "serving"
            ),
            storage=_section_from_dict(
                StorageSection, data.get("storage", {}), "storage"
            ),
            ingest=_section_from_dict(IngestSection, data.get("ingest", {}), "ingest"),
            observability=_section_from_dict(
                ObservabilitySection, data.get("observability", {}), "observability"
            ),
            seed=seed,
            label=data.get("label"),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError(f"run config is not valid JSON: {error}") from None
        return cls.from_dict(data)

    def save(self, path: str | Path) -> Path:
        """Write the config as JSON to *path*, crash-safely (parent dirs created)."""
        from repro.reliability.atomic import atomic_write_text

        return atomic_write_text(Path(path), self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "RunConfig":
        """Read a JSON config written by :meth:`save` (or by hand)."""
        path = Path(path)
        if not path.exists():
            raise ConfigError(f"run config file does not exist: {path}")
        return cls.from_json(path.read_text(encoding="utf-8"))
