"""Unified run pipeline: registries, declarative configs, run artifacts.

This package is the one orchestration layer over the library.  It
provides

* :class:`~repro.pipeline.registry.Registry` — string-keyed component
  registries with a ``register()`` decorator.  The built-in families
  (models, ω presets, optimizers, losses, negative samplers, dataset
  generators) are collected in :mod:`repro.pipeline.components`.
* :class:`~repro.pipeline.config.RunConfig` — a declarative, JSON-
  serializable description of a complete run (dataset → model →
  training → evaluation), validated against the registries.
* :func:`~repro.pipeline.runner.run_pipeline` — the driver: builds the
  components, trains, evaluates, and optionally writes a resumable run
  directory (config + checkpoint + history + metrics) that can later be
  re-evaluated (:func:`~repro.pipeline.runner.evaluate_run`) or served
  (:func:`~repro.pipeline.runner.serve_run`) without retraining.
* :func:`~repro.pipeline.sweep.sweep` — grid expansion into seeded
  child runs for hyperparameter search.

Submodules are imported lazily (PEP 562) so that low-level modules can
host their registries via ``repro.pipeline.registry`` without import
cycles.
"""

from __future__ import annotations

from repro._lazy import lazy_exports
from repro.pipeline.registry import Registry

_LAZY_EXPORTS = {
    "DATASET_GENERATORS": "repro.pipeline.components",
    "INDEXES": "repro.pipeline.components",
    "LOSSES": "repro.pipeline.components",
    "MODELS": "repro.pipeline.components",
    "NEGATIVE_SAMPLERS": "repro.pipeline.components",
    "OMEGA_PRESETS": "repro.pipeline.components",
    "OPTIMIZERS": "repro.pipeline.components",
    "DatasetSection": "repro.pipeline.config",
    "EvalSection": "repro.pipeline.config",
    "IndexSection": "repro.pipeline.config",
    "IngestSection": "repro.pipeline.config",
    "ModelSection": "repro.pipeline.config",
    "ObservabilitySection": "repro.pipeline.config",
    "ParallelSection": "repro.pipeline.config",
    "RunConfig": "repro.pipeline.config",
    "ServingSection": "repro.pipeline.config",
    "TrainingSection": "repro.pipeline.config",
    "LoadedRun": "repro.pipeline.runner",
    "RunResult": "repro.pipeline.runner",
    "build_run_index": "repro.pipeline.runner",
    "evaluate_run": "repro.pipeline.runner",
    "load_run": "repro.pipeline.runner",
    "load_run_index": "repro.pipeline.runner",
    "run_pipeline": "repro.pipeline.runner",
    "serve_run": "repro.pipeline.runner",
    "train_and_evaluate": "repro.pipeline.runner",
    "SweepRun": "repro.pipeline.sweep",
    "apply_overrides": "repro.pipeline.sweep",
    "expand_grid": "repro.pipeline.sweep",
    "sweep": "repro.pipeline.sweep",
}

__all__ = ["Registry", *sorted(_LAZY_EXPORTS)]

__getattr__, __dir__ = lazy_exports(__name__, globals(), _LAZY_EXPORTS)
