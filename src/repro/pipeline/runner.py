"""The pipeline driver: config in, trained/evaluated run (+ artifacts) out.

:func:`run_pipeline` is the single orchestration path used by the CLI,
the paper tables, and the benchmarks: build the dataset and model from a
:class:`~repro.pipeline.config.RunConfig`, train, evaluate, and — when a
run directory is requested — persist everything needed to come back
later::

    run-dir/
      config.json      the RunConfig (reloadable, re-runnable)
      checkpoint/      model weights via repro.core.serialization
      history.json     per-epoch losses + validation MRRs, stop info
      metrics.json     final metrics per evaluated split

A written run directory is *resumable*: :func:`load_run` restores the
model and config, :func:`evaluate_run` recomputes metrics (bit-identical
to the original run), and :func:`serve_run` hands the checkpoint
directly to :class:`~repro.serving.LinkPredictor` without retraining.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.base import KGEModel
from repro.core.interaction import MultiEmbeddingModel
from repro.core.models import make_model
from repro.core.serialization import load_model, save_model
from repro.errors import ConfigError, CorruptArtifactError, MissingArtifactError, ModelError
from repro.eval.evaluator import LinkPredictionEvaluator
from repro.eval.metrics import RankingMetrics
from repro.kg.graph import KGDataset
from repro.nn.losses import make_loss
from repro.obs import registry as obs_registry
from repro.obs import trace as obs_trace
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer, telemetry_scope, trace_scope
from repro.pipeline.components import MODELS, OMEGA_PRESETS
from repro.pipeline.config import RunConfig, _split_model_name
from repro.reliability.atomic import atomic_write_text
from repro.reliability.manifest import (
    read_manifest,
    sha256_bytes,
    verify_artifact,
    write_manifest,
)
from repro.serving import LinkPredictor
from repro.training.trainer import Trainer, TrainingResult

_CONFIG_FILE = "config.json"
_CHECKPOINT_DIR = "checkpoint"
_HISTORY_FILE = "history.json"
_METRICS_FILE = "metrics.json"
_INDEX_DIR = "index"
#: Telemetry stream written next to the artifacts.  Deliberately NOT
#: hashed into manifest.json: telemetry must never change what a run's
#: artifacts verify to, so enabled-vs-disabled runs stay bit-identical
#: modulo this one file.
_TELEMETRY_FILE = "telemetry.jsonl"


@dataclass
class RunResult:
    """Everything produced by one pipeline run."""

    config: RunConfig
    dataset: KGDataset
    model: KGEModel
    training: TrainingResult
    metrics: dict[str, RankingMetrics]
    run_dir: Path | None = None

    @property
    def test_metrics(self) -> RankingMetrics:
        """Metrics on the configured evaluation split."""
        return self.metrics[self.config.evaluation.split]

    @property
    def train_metrics(self) -> RankingMetrics | None:
        """Training-subsample metrics, if ``evaluation.evaluate_train``."""
        return self.metrics.get("train")

    @property
    def epochs_run(self) -> int:
        return self.training.epochs_run


@dataclass
class LoadedRun:
    """A run directory restored from disk (see :func:`load_run`)."""

    run_dir: Path
    config: RunConfig
    model: MultiEmbeddingModel
    metrics: dict[str, RankingMetrics] = field(default_factory=dict)
    history: dict = field(default_factory=dict)

    def build_dataset(self) -> KGDataset:
        """Regenerate/reload the dataset described by the stored config."""
        return self.config.dataset.build()


# --------------------------------------------------------------- construction
def build_model(config: RunConfig, dataset: KGDataset) -> KGEModel:
    """Build the configured model with its seeded init RNG.

    ``model.name`` resolves against the model-factory registry first,
    then against the ω presets; an explicit ``omega:`` prefix skips the
    factories, reaching presets a factory name shadows (e.g.
    ``omega:distmult`` is Table 1's two-embedding derivation, while the
    ``distmult`` factory is the paper's §5.3 one-embedding full-budget
    model).  A ``loss`` entry in ``model.options`` is resolved through
    the loss registry.
    """
    section = config.model
    rng = np.random.default_rng(config.model_init_seed)
    options = dict(section.options)
    loss_name = options.pop("loss", None)
    if loss_name is not None:
        loss = make_loss(str(loss_name))
        if not hasattr(loss, "grad_score"):
            # Fail at construction, not deep inside epoch 1: train_step
            # needs the value/grad_score interface (margin ranking is
            # pair-based and only fits the TransE baseline's loop).
            raise ConfigError(
                f"loss {loss_name!r} does not provide the value/grad_score "
                "interface required by multi-embedding training"
            )
        options["loss"] = loss
    common = dict(
        total_dim=section.total_dim,
        rng=rng,
        regularization=section.regularization,
        **options,
    )
    name, is_preset = _split_model_name(section.name)
    if not is_preset and name in MODELS:
        factory = MODELS.get(name)
        return factory(dataset.num_entities, dataset.num_relations, **common)
    preset = OMEGA_PRESETS.get(name)
    return make_model(preset, dataset.num_entities, dataset.num_relations, **common)


def _evaluate(
    config: RunConfig, dataset: KGDataset, model: KGEModel
) -> dict[str, RankingMetrics]:
    """The run's evaluation protocol; shared by training and reloading.

    ``config.parallel`` selects between the serial evaluator and the
    sharded/multi-process one; both produce bit-identical metrics, so
    the choice never changes what a run dir records.
    """
    section = config.evaluation
    kwargs = {} if section.batch_size is None else {"batch_size": section.batch_size}
    if config.parallel.is_serial:
        evaluator = LinkPredictionEvaluator(dataset, **kwargs)
    else:
        from repro.parallel.sharded_eval import ShardedEvaluator

        evaluator = ShardedEvaluator(
            dataset,
            shards=config.parallel.eval_shards,
            workers=config.parallel.eval_workers,
            shard_axis=config.parallel.shard_axis,
            **kwargs,
        )
    with trace_scope("pipeline.evaluate", split=section.split):
        metrics = {
            section.split: evaluator.evaluate(model, split=section.split).overall
        }
    if section.evaluate_train:
        with trace_scope("pipeline.evaluate", split="train"):
            train_result = evaluator.evaluate_triples(
                model,
                dataset.train,
                split_name="train",
                max_triples=section.train_eval_triples,
            )
        metrics["train"] = train_result.overall
    return metrics


def _write_telemetry(run_dir: Path, tracer: Tracer, registry: MetricsRegistry) -> None:
    """Emit the run's span stream + final metrics snapshot as JSONL."""
    lines = [json.dumps(record, sort_keys=True) for record in tracer.records()]
    lines.append(
        json.dumps(
            {"type": "metrics", "metrics": registry.snapshot().to_dict()},
            sort_keys=True,
        )
    )
    atomic_write_text(Path(run_dir) / _TELEMETRY_FILE, "\n".join(lines) + "\n")


def _train_and_evaluate_inner(
    config: RunConfig,
    dataset: KGDataset,
    model: KGEModel,
    run_dir: str | Path | None,
) -> RunResult:
    trainer = Trainer(dataset, config.training.training_config(seed=config.seed))
    with trace_scope("pipeline.train"):
        training = trainer.train(model)
    metrics = _evaluate(config, dataset, model)
    result = RunResult(
        config=config,
        dataset=dataset,
        model=model,
        training=training,
        metrics=metrics,
    )
    if run_dir is not None:
        with trace_scope("pipeline.persist"):
            result.run_dir = write_run_dir(result, run_dir)
        if config.index.enabled:
            # Persist the retrieval index next to the checkpoint so
            # serve_run / `predict --index` can reload it without a
            # rebuild.  Metrics above are unaffected: evaluation always
            # ranks exactly.
            from repro.pipeline.components import build_index

            with trace_scope("pipeline.index_build", kind=config.index.kind):
                index = build_index(
                    result.model, config.index, workers=config.parallel.eval_workers
                )
                index.build(workers=config.parallel.eval_workers)
                index.save(
                    result.run_dir / _INDEX_DIR, memmap=config.storage.memmap
                )
    return result


def train_and_evaluate(
    config: RunConfig,
    dataset: KGDataset,
    model: KGEModel,
    run_dir: str | Path | None = None,
) -> RunResult:
    """Train a pre-built *model* per *config* and evaluate it.

    This is the engine under :func:`run_pipeline`; it also backs the
    legacy :func:`repro.experiments.run_experiment_row` shim, which
    supplies externally-constructed models (e.g. the baselines).

    Telemetry: when ``config.observability.enabled`` is set *or* an
    ambient registry/tracer is installed (:class:`repro.obs.telemetry_scope`),
    the run gets its own registry + tracer, pool workers ship their
    metric snapshots home through :func:`repro.parallel.pool.run_tasks`,
    and the span stream lands in ``<run_dir>/telemetry.jsonl``.  The
    run registry is merged into the ambient one afterwards, so sweeps
    aggregate across children.  Telemetry never touches the numerics:
    enabled and disabled runs are bit-identical modulo the telemetry
    file itself.
    """
    ambient_registry = obs_registry.active_registry()
    ambient_tracer = obs_trace.active_tracer()
    telemetry = (
        config.observability.enabled
        or ambient_registry is not None
        or ambient_tracer is not None
    )
    if not telemetry:
        return _train_and_evaluate_inner(config, dataset, model, run_dir)
    registry = MetricsRegistry()
    tracer = Tracer(ring_size=config.observability.ring_size)
    with telemetry_scope(registry, tracer):
        with trace_scope(
            "pipeline.run", label=config.label or "", seed=config.seed
        ):
            result = _train_and_evaluate_inner(config, dataset, model, run_dir)
        registry.inc("pipeline.runs")
    if ambient_registry is not None:
        ambient_registry.merge(registry.snapshot())
    if result.run_dir is not None:
        _write_telemetry(result.run_dir, tracer, registry)
    return result


def run_pipeline(
    config: RunConfig,
    dataset: KGDataset | None = None,
    run_dir: str | Path | None = None,
) -> RunResult:
    """Execute one run end-to-end: dataset → model → train → evaluate.

    Pass *dataset* to reuse an already-built dataset across runs (the
    paper tables train every row on one shared graph); otherwise it is
    built from ``config.dataset``.  With *run_dir*, the run's artifacts
    are persisted for later reloading/serving.
    """
    if dataset is None:
        dataset = config.dataset.build()
    model = build_model(config, dataset)
    return train_and_evaluate(config, dataset, model, run_dir=run_dir)


# ------------------------------------------------------------------ artifacts
def _metrics_to_dict(metrics: RankingMetrics) -> dict:
    return {
        "mrr": metrics.mrr,
        "mr": metrics.mr,
        "hits": {str(k): v for k, v in metrics.hits.items()},
        "num_ranks": metrics.num_ranks,
    }


def _metrics_from_dict(data: dict) -> RankingMetrics:
    return RankingMetrics(
        mrr=data["mrr"],
        mr=data["mr"],
        hits={int(k): v for k, v in data.get("hits", {}).items()},
        num_ranks=data.get("num_ranks", 0),
    )


def _history_to_dict(training: TrainingResult) -> dict:
    return {
        "records": [
            {
                "epoch": record.epoch,
                "loss": record.loss,
                "validation_mrr": record.validation_mrr,
            }
            for record in training.history.records
        ],
        "stopped_early": training.stopped_early,
        "epochs_run": training.epochs_run,
    }


def write_run_dir(result: RunResult, run_dir: str | Path) -> Path:
    """Persist *result* as a resumable run directory; returns its path.

    Every file is written crash-safely (tempfile + fsync + rename), and
    a ``manifest.json`` records the sha256 of each artifact so
    :func:`load_run` (and sweep resume) can tell a good run dir from a
    torn or bit-rotted one.
    """
    if not isinstance(result.model, MultiEmbeddingModel):
        raise ConfigError(
            "run directories require a checkpointable multi-embedding model, "
            f"got {type(result.model).__name__}"
        )
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    hashes: dict[str, str] = {}

    config_text = result.config.to_json() + "\n"
    atomic_write_text(run_dir / _CONFIG_FILE, config_text)
    hashes[_CONFIG_FILE] = sha256_bytes(config_text.encode("utf-8"))

    storage = result.config.storage
    checkpoint_hashes = save_model(
        result.model,
        run_dir / _CHECKPOINT_DIR,
        memmap=storage.memmap,
        dtype=None if storage.dtype == "float64" else storage.dtype,
        equivalence_tol=storage.equivalence_tol,
    )
    for name, digest in checkpoint_hashes.items():
        hashes[f"{_CHECKPOINT_DIR}/{name}"] = digest

    history_text = json.dumps(_history_to_dict(result.training), indent=2) + "\n"
    atomic_write_text(run_dir / _HISTORY_FILE, history_text)
    hashes[_HISTORY_FILE] = sha256_bytes(history_text.encode("utf-8"))

    metrics_text = (
        json.dumps(
            {split: _metrics_to_dict(m) for split, m in result.metrics.items()},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    atomic_write_text(run_dir / _METRICS_FILE, metrics_text)
    hashes[_METRICS_FILE] = sha256_bytes(metrics_text.encode("utf-8"))

    write_manifest(run_dir, hashes)
    return run_dir


def _read_json_artifact(
    run_dir: Path, name: str, manifest: dict[str, str] | None
):
    """Read an optional JSON artifact with integrity checking.

    Returns ``None`` when the file is absent *and* no manifest promises
    it (pre-manifest run dirs stay loadable).  A file the manifest
    records but the directory lacks raises
    :class:`~repro.errors.MissingArtifactError`; a file that fails its
    hash or cannot be parsed raises
    :class:`~repro.errors.CorruptArtifactError` — both name the path,
    neither leaks a raw ``JSONDecodeError``/``FileNotFoundError``.
    """
    path = run_dir / name
    if not path.exists():
        if manifest is not None and name in manifest:
            raise MissingArtifactError(
                f"run artifact {name!r} is recorded in the manifest but missing: {path}",
                path=path,
            )
        return None
    verify_artifact(run_dir, name, manifest)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CorruptArtifactError(
            f"run artifact {name!r} is torn or corrupt ({error}): {path}", path=path
        ) from None


def load_run(run_dir: str | Path) -> LoadedRun:
    """Restore a run directory written by :func:`write_run_dir`.

    Artifacts are verified against the run's sha256 manifest when one
    exists; damage surfaces as a typed
    :class:`~repro.errors.ArtifactError` naming the offending file
    rather than a raw decode traceback.
    """
    run_dir = Path(run_dir)
    config_path = run_dir / _CONFIG_FILE
    checkpoint = run_dir / _CHECKPOINT_DIR
    if not config_path.exists() or not checkpoint.exists():
        raise ModelError(
            f"not a pipeline run directory (need {_CONFIG_FILE} + {_CHECKPOINT_DIR}/): "
            f"{run_dir}"
        )
    manifest = read_manifest(run_dir)
    verify_artifact(run_dir, _CONFIG_FILE, manifest)
    verify_artifact(run_dir, f"{_CHECKPOINT_DIR}/meta.json", manifest)
    if manifest is not None:
        # Verify whichever checkpoint layout was written: one weights.npz,
        # or the memmap store's .npy files + store.json — every manifest
        # entry under checkpoint/ is checked, so a torn mapped table is
        # caught here, before any page of it is ever scored from.
        for relative in sorted(manifest):
            if relative.startswith(f"{_CHECKPOINT_DIR}/") and relative != (
                f"{_CHECKPOINT_DIR}/meta.json"
            ):
                verify_artifact(run_dir, relative, manifest)
    config = RunConfig.load(config_path)
    model = load_model(checkpoint)
    metrics: dict[str, RankingMetrics] = {}
    stored = _read_json_artifact(run_dir, _METRICS_FILE, manifest)
    if stored is not None:
        metrics = {split: _metrics_from_dict(m) for split, m in stored.items()}
    history = _read_json_artifact(run_dir, _HISTORY_FILE, manifest) or {}
    return LoadedRun(
        run_dir=run_dir, config=config, model=model, metrics=metrics, history=history
    )


def evaluate_run(
    run_dir: str | Path, dataset: KGDataset | None = None
) -> dict[str, RankingMetrics]:
    """Re-evaluate a stored run without retraining.

    The dataset is rebuilt from the stored config unless given; for the
    deterministic synthetic generators the recomputed metrics are
    bit-identical to the ones recorded at training time.
    """
    loaded = load_run(run_dir)
    if dataset is None:
        dataset = loaded.build_dataset()
    return _evaluate(loaded.config, dataset, loaded.model)


def build_run_index(
    run_dir: str | Path,
    section=None,
    workers: int = 0,
    sides: tuple[str, ...] = ("tail", "head"),
):
    """Build (and persist) the retrieval index of a stored run.

    *section* overrides the stored config's index section; when neither
    selects an index kind, an IVF index with default knobs is built.
    Returns the built :class:`~repro.index.base.CandidateIndex`.
    """
    from repro.pipeline.components import build_index
    from repro.pipeline.config import IndexSection

    loaded = load_run(run_dir)
    if section is None:
        section = loaded.config.index
    if not section.enabled:
        section = IndexSection(kind="ivf")
    index = build_index(loaded.model, section, workers=workers)
    index.build(sides=sides, workers=workers)
    index.save(Path(run_dir) / _INDEX_DIR, memmap=loaded.config.storage.memmap)
    return index


def load_run_index(run_dir: str | Path, model, on_stale: str = "rebuild"):
    """Load the persisted index of a run directory, or None if absent."""
    index_dir = Path(run_dir) / _INDEX_DIR
    if not index_dir.exists():
        return None
    from repro.index import load_index

    return load_index(index_dir, model, on_stale=on_stale)


def serve_run(
    run_dir: str | Path,
    dataset: KGDataset | None = None,
    index: object = None,
    on_stale: str | None = None,
    **predictor_kwargs: object,
) -> LinkPredictor:
    """Stand up a :class:`LinkPredictor` from a stored run directory.

    ``index="auto"`` attaches the run's persisted index when one exists
    (approximate serving); ``index="require"`` additionally builds one
    (per the stored config, or IVF defaults) when none was saved.  The
    default ``None`` serves exact full sweeps.  ``on_stale`` overrides
    the stored config's staleness policy for the persisted index — the
    serving daemon passes ``"error"`` so a hot-swap can *refuse* an
    index whose fingerprint no longer matches the checkpoint instead of
    silently rebuilding it on the request path.
    """
    loaded = load_run(run_dir)
    if dataset is None:
        dataset = loaded.build_dataset()
    resolved = None
    if index == "auto" or index == "require":
        resolved = load_run_index(
            run_dir, loaded.model, on_stale=on_stale or loaded.config.index.on_stale
        )
        if resolved is None and index == "require":
            from repro.pipeline.components import build_index
            from repro.pipeline.config import IndexSection

            section = loaded.config.index
            if not section.enabled:
                section = IndexSection(kind="ivf")
            resolved = build_index(loaded.model, section)
    elif index is not None:
        raise ConfigError(
            'serve_run index must be None, "auto" or "require"; pass a prebuilt '
            "index directly to LinkPredictor instead"
        )
    return LinkPredictor(loaded.model, dataset, index=resolved, **predictor_kwargs)
