"""repro.serving — batched link-prediction serving.

Why this package exists
-----------------------
The evaluation protocol of §5.2 — score *every* entity as a candidate
head/tail for a triple — is exactly the hot path a production
link-prediction service runs per request.  Training-oriented code paths
(``score_all_tails`` consumed one eval batch at a time) leave easy
factor-of-N wins on the table for a serving workload, where the same
entities and relations are queried over and over and latency matters.
This package is the serving side of the repository: a read-only,
batched, cached view over any trained :class:`~repro.core.base.KGEModel`.

Architecture
------------
Three layers, each usable on its own:

``RelationFoldedScorer`` (:mod:`repro.serving.folded`)
    For the multi-embedding model (Eq. 8), folds the interaction tensor
    ω into a per-relation mixing tensor ``W_r[i,j,d] = Σ_k ω_ijk r^(k)_d``
    **once**, then scores all candidates of any query with a single
    smaller einsum — the same shape of fast path RESCAL gets natively
    from its per-relation matrix.  Rebuilt automatically when the model
    trains (tracked via ``KGEModel.scoring_version``).

``BatchedScorer`` (:mod:`repro.serving.scorer`)
    Memory-bounded chunked sweeps: 1-vs-all score matrices are produced
    in row chunks derived from an element budget, so arbitrarily large
    query batches (or eval splits) stream through constant memory.  The
    :class:`~repro.eval.evaluator.LinkPredictionEvaluator` runs on this
    same scorer, so evaluation and serving share one code path.

``LinkPredictor`` (:mod:`repro.serving.predictor`)
    The request-level API: one unified ``top_k(side="tail"|"head"|
    "relation")`` entry point over id batches with shared knobs (``k``,
    ``filtered``, ``exact``) — ``top_k_tails`` / ``top_k_heads`` /
    ``top_k_relations`` remain as thin delegating wrappers — plus
    name-level ``predict`` for single queries, optional *filtered*
    masking of already-known true triples (reusing
    :class:`~repro.kg.graph.FilterIndex`), explicit candidate sets via
    the models' ``score_candidates`` fast paths, and an
    :class:`~repro.serving.cache.LRUScoreCache` of score vectors keyed
    on ``(entity, relation, side)`` that is invalidated whenever the
    model's parameters change.

Ties are always broken toward the lower candidate id, so repeated,
batched and cached queries rank deterministically and agree with a
brute-force per-triple ranking.

Quickstart
----------
>>> import numpy as np
>>> from repro import generate_synthetic_kg, SyntheticKGConfig, make_complex
>>> from repro.serving import LinkPredictor
>>> dataset = generate_synthetic_kg(SyntheticKGConfig(num_entities=200, seed=1))
>>> model = make_complex(dataset.num_entities, dataset.num_relations,
...                      total_dim=32, rng=np.random.default_rng(1))
>>> predictor = LinkPredictor(model, dataset)
>>> top = predictor.top_k_tails(heads=[0, 1], relations=[0, 0], k=5, filtered=True)
>>> top.ids.shape, top.scores.shape
((2, 5), (2, 5))
>>> predictor.predict(head=dataset.entities.name(0),
...                   relation=dataset.relations.name(0), k=3)  # doctest: +SKIP
[('entity_17', 4.2), ('entity_3', 3.9), ('entity_88', 3.1)]

See ``examples/serving_quickstart.py`` for an end-to-end script and
``benchmarks/bench_serving_latency.py`` for the latency/throughput
numbers behind the design.
"""

from repro.serving.cache import CacheStats, LRUScoreCache
from repro.serving.folded import RelationFoldedScorer
from repro.serving.predictor import LinkPredictor, TopKResult
from repro.serving.scorer import BatchedScorer
from repro.serving.server import (
    Deployment,
    PredictionServer,
    ServedTopK,
    serve_forever,
    start_tcp_server,
)

__all__ = [
    "BatchedScorer",
    "CacheStats",
    "Deployment",
    "LRUScoreCache",
    "LinkPredictor",
    "PredictionServer",
    "RelationFoldedScorer",
    "ServedTopK",
    "TopKResult",
    "serve_forever",
    "start_tcp_server",
]
