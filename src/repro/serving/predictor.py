"""Batched top-k link prediction over a trained model.

:class:`LinkPredictor` is the serving entry point: given a trained
:class:`~repro.core.base.KGEModel` it answers *"which tails complete
(h, ?, r)?"*, *"which heads complete (?, t, r)?"* and *"which relations
connect (h, t)?"* for whole batches of queries at once, with

* the relation-folded einsum fast path for multi-embedding models,
* an LRU cache of 1-vs-all score vectors keyed on
  ``(entity, relation, side)``, invalidated automatically when the
  model's parameters change,
* optional filtered-candidate masking that pushes already-known true
  triples out of the top-k (the serving twin of the evaluation
  protocol's filtered setting),
* optional explicit candidate sets served through the models'
  ``score_candidates`` fast paths, and
* optional **approximate retrieval** through a
  :class:`~repro.index.base.CandidateIndex`: the index proposes a
  per-query shortlist (O(num_probed) instead of O(num_entities)) and
  the predictor re-ranks it with true model scores, tracking probed
  fraction and (sampled) recall in :attr:`LinkPredictor.index_stats`.

Ties are broken deterministically in favour of the lower entity id
(stable sort on descending score), so repeated and batched calls always
agree with a brute-force per-triple ranking.  The index path keeps the
same tie rule (shortlists arrive id-ascending); a shortlist shorter than
``k`` pads its result rows with id ``-1`` / score ``-inf``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import KGEModel
from repro.errors import ServingError
from repro.kg.graph import FilterIndex, KGDataset
from repro.obs.trace import trace_scope
from repro.serving.cache import CacheStats, LRUScoreCache
from repro.serving.scorer import BatchedScorer


@dataclass(frozen=True)
class TopKResult:
    """Top-k candidate ids and scores for a batch of queries.

    ``ids`` and ``scores`` both have shape ``(b, k)``; row ``i`` is
    sorted by descending score (ties by ascending id).  Candidates masked
    by filtering carry ``-inf`` scores and sort last.
    """

    ids: np.ndarray
    scores: np.ndarray

    @property
    def k(self) -> int:
        """Number of candidates returned per query."""
        return self.ids.shape[1]

    def labeled(self, names) -> list[list[tuple[str, float]]]:
        """Resolve ids through a vocabulary-like ``names(ids)`` callable
        or :class:`~repro.kg.vocab.Vocabulary`; one list per query.

        Pad ids (``-1``, produced by index-served shortlists shorter
        than ``k``) carry no candidate to name and are dropped from
        every row, so a padded row simply comes back shorter — they are
        never resolved through the vocabulary (where ``-1`` would
        silently name the *last* entity).
        """
        resolve = names.names if hasattr(names, "names") else names
        labeled_rows = []
        for row_ids, row_scores in zip(self.ids, self.scores):
            keep = row_ids >= 0
            labeled_rows.append(
                list(
                    zip(
                        resolve([int(i) for i in row_ids[keep]]),
                        [float(s) for s in row_scores[keep]],
                    )
                )
            )
        return labeled_rows


class LinkPredictor:
    """Batched top-k tail/head/relation prediction with caching.

    Parameters
    ----------
    model:
        Any trained :class:`KGEModel`.
    dataset:
        Optional dataset; supplies the filter index for ``filtered=True``
        queries and the vocabularies for name-based prediction.
    filter_index:
        Explicit filter index (overrides the dataset's).
    folded:
        Passed to :class:`BatchedScorer`: ``"auto"`` folds ω for
        multi-embedding models.
    cache_size:
        Capacity of the LRU score cache; ``0`` disables caching.
    chunk_size:
        Max query rows per underlying sweep (memory bound); ``None``
        derives it from the scorer's element budget.
    index:
        Optional :class:`~repro.index.base.CandidateIndex` built over
        this same model.  Full-sweep entity queries (no explicit
        candidates) are then answered from the index's shortlists with
        exact re-ranking; a shortlist that covers every entity (e.g.
        ``nprobe == nlist``) takes the ordinary full-sweep path and is
        bit-identical to serving without an index.
    recall_sample_every:
        When an index is active and this is ``> 0``, every Nth
        approximate query is additionally answered exactly and the
        recall@k overlap recorded in :attr:`index_stats` (``0`` — the
        default — disables sampling; each sampled query pays one full
        sweep).
    """

    def __init__(
        self,
        model: KGEModel,
        dataset: KGDataset | None = None,
        *,
        filter_index: FilterIndex | None = None,
        folded: bool | str = "auto",
        cache_size: int = 4096,
        chunk_size: int | None = None,
        index=None,
        recall_sample_every: int = 0,
    ) -> None:
        if cache_size < 0:
            raise ServingError("cache_size must be >= 0")
        if recall_sample_every < 0:
            raise ServingError("recall_sample_every must be >= 0")
        self.model = model
        self.dataset = dataset
        self.scorer = BatchedScorer(model, folded=folded, chunk_size=chunk_size)
        self._filter_index = filter_index
        self.cache = LRUScoreCache(cache_size) if cache_size else None
        self._model_version = model.scoring_version
        self.index = index
        self.recall_sample_every = int(recall_sample_every)
        self._index_stats = None
        if index is not None:
            if index.model is not model:
                raise ServingError(
                    "index was built over a different model instance; build the "
                    "index from the same model the predictor serves"
                )
            from repro.index.base import IndexUsageStats

            self._index_stats = IndexUsageStats(num_entities=model.num_entities)

    # ------------------------------------------------------------- plumbing
    @property
    def filter_index(self) -> FilterIndex:
        if self._filter_index is not None:
            return self._filter_index
        if self.dataset is not None:
            return self.dataset.filter_index
        raise ServingError(
            "filtered prediction needs a dataset or an explicit filter_index"
        )

    @property
    def cache_stats(self) -> CacheStats | None:
        """LRU cache counters, or None when caching is disabled."""
        return self.cache.stats if self.cache is not None else None

    @property
    def index_stats(self):
        """Index usage counters (:class:`~repro.index.base.IndexUsageStats`),
        or None when no index is attached."""
        self._sync_fold_stats()
        return self._index_stats

    def _sync_fold_stats(self) -> None:
        """Mirror the index's fold-cache counters into the usage stats.

        The counters live on the index's folded source (they move during
        builds, not queries), so they are copied — not accumulated —
        whenever the stats are read or updated.
        """
        stats = self._index_stats
        fold = getattr(self.index, "fold_cache_stats", None)
        if stats is None or fold is None:
            return
        stats.fold_cache_hits = fold.hits
        stats.fold_cache_misses = fold.misses

    def index_stats_dict(self) -> dict | None:
        """JSON-compatible index usage snapshot for ops surfaces.

        ``None`` without an index; otherwise the usage counters plus the
        folded-matrix cache counters (hits/misses/evictions/store hits)
        when the index exposes them — the observable that turns "serving
        is slow" into "the fold cache is thrashing".
        """
        stats = self.index_stats
        if stats is None:
            return None
        out = stats.to_dict()
        fold = getattr(self.index, "fold_cache_stats", None)
        if fold is not None:
            out["fold_cache"] = fold.to_dict()
        return out

    def clear_cache(self) -> None:
        """Drop cached scores, folded tensors and index partitions.

        Training invalidates all of them automatically via
        ``scoring_version``; this is the recovery path for in-place
        parameter edits that bypass ``train_step`` and therefore never
        bump the version.
        """
        if self.cache is not None:
            self.cache.clear()
        self.scorer.refresh()
        if self.index is not None:
            self.index.invalidate()
        self._model_version = self.model.scoring_version

    @property
    def model_version(self) -> int:
        """The model ``scoring_version`` this predictor last synced to.

        Every query path syncs before answering, so after any
        ``top_k_*``/``predict`` call this equals the version the answer
        was computed at — the serving daemon tags responses with it.
        """
        return self._model_version

    def _sync_version(self) -> None:
        """Reconcile with the model's current ``scoring_version``.

        Runs at the top of every query path — including with caching
        disabled, so ``model_version`` bookkeeping never drifts after
        training (``cache_size=0`` used to skip it entirely).
        """
        version = self.model.scoring_version
        if version != self._model_version:
            if self.cache is not None:
                self.cache.clear()
            self._model_version = version

    def _full_scores(self, anchors: np.ndarray, relations: np.ndarray, side: str) -> np.ndarray:
        """(b, num_entities) sweep, served from the cache where possible.

        Cached vectors are always the *raw* scores; filtering masks a
        copy, so the same cache serves filtered and unfiltered queries.
        Callers have already synced the model version (every public
        query path starts with ``_sync_version``).
        """
        if self.cache is None:
            return self.scorer.all_scores(anchors, relations, side)
        out = np.empty((len(anchors), self.model.num_entities), dtype=np.float64)
        missing: dict[tuple[int, int, str], list[int]] = {}
        for row in range(len(anchors)):
            key = (int(anchors[row]), int(relations[row]), side)
            hit = self.cache.get(key)
            if hit is not None:
                out[row] = hit
            else:
                missing.setdefault(key, []).append(row)
        if missing:
            keys = list(missing)
            scores = self.scorer.all_scores(
                np.array([key[0] for key in keys], dtype=np.int64),
                np.array([key[1] for key in keys], dtype=np.int64),
                side,
            )
            for key, vector in zip(keys, scores):
                self.cache.put(key, vector)
                out[missing[key]] = vector
        return out

    def _mask_known(
        self,
        scores: np.ndarray,
        anchors: np.ndarray,
        relations: np.ndarray,
        side: str,
        candidates: np.ndarray | None = None,
    ) -> None:
        """Set known-true entries of *scores* to ``-inf`` in place.

        Columns are entity ids for full sweeps, or positions into the
        per-row *candidates* array when one is given.
        """
        lookup = (
            self.filter_index.true_tails if side == "tail" else self.filter_index.true_heads
        )
        for row in range(len(scores)):
            known = lookup(int(anchors[row]), int(relations[row]))
            if not len(known):
                continue
            if candidates is None:
                scores[row, known] = -np.inf
            else:
                scores[row, np.isin(candidates[row], known)] = -np.inf

    @staticmethod
    def _select_top_k(scores: np.ndarray, k: int) -> TopKResult:
        """Top-k columns per row: descending score, ties by ascending
        candidate position — the documented tie policy.

        ``argpartition`` + a k-wide sort instead of a full row sort:
        O(N + k log k) per row, which is what lets a serving micro-batch
        amortise — a full ``argsort`` over ``(b, N)`` dominated batched
        latency.  ``argpartition`` splits ties *at* the k-th value
        arbitrarily, so rows whose boundary value also occurs outside
        the kept set are repaired to keep the lowest positions before
        ordering; everything else is exact by construction.
        """
        num_cols = scores.shape[1]
        if k >= num_cols:
            order = np.argsort(-scores, axis=1, kind="stable")[:, :k]
            return TopKResult(
                ids=order, scores=np.take_along_axis(scores, order, axis=1)
            )
        kept = np.argpartition(-scores, k - 1, axis=1)[:, :k]
        kept_scores = np.take_along_axis(scores, kept, axis=1)
        threshold = kept_scores.min(axis=1)
        tied = scores == threshold[:, None]
        ambiguous = np.flatnonzero(
            tied.sum(axis=1) != (kept_scores == threshold[:, None]).sum(axis=1)
        )
        for row in ambiguous:
            above = kept[row][kept_scores[row] > threshold[row]]
            ties = np.flatnonzero(tied[row])  # ascending position
            kept[row, : len(above)] = above
            kept[row, len(above):] = ties[: k - len(above)]
        # Ascending-position order first, then a stable descending-score
        # sort: ties therefore resolve toward the lower position.
        kept.sort(axis=1)
        kept_scores = np.take_along_axis(scores, kept, axis=1)
        order = np.argsort(-kept_scores, axis=1, kind="stable")
        return TopKResult(
            ids=np.take_along_axis(kept, order, axis=1),
            scores=np.take_along_axis(kept_scores, order, axis=1),
        )

    def _full_top_k(
        self, anchors: np.ndarray, relations: np.ndarray, side: str, filtered: bool, k: int
    ) -> TopKResult:
        """Exact top-k over every entity (the index-free reference path)."""
        # _full_scores always returns a fresh matrix (cached rows are
        # copied into it), so masking in place is safe — no extra copy.
        scores = self._full_scores(anchors, relations, side)
        if filtered:
            self._mask_known(scores, anchors, relations, side)
        return self._select_top_k(scores, min(k, self.model.num_entities))

    def _top_k_via_index(
        self, anchors: np.ndarray, relations: np.ndarray, k: int, side: str, filtered: bool
    ) -> TopKResult:
        """Index-served top-k: probe, exact re-rank, keep the tie rule.

        Shortlists arrive id-ascending, so the stable descending-score
        sort breaks ties toward the lower id exactly like the full
        sweep.  Batches flagged ``covers_all`` (``nprobe == nlist``,
        :class:`~repro.index.exact.ExactIndex`) are delegated to the
        full-sweep path and therefore bit-identical to it.
        """
        stats = self._index_stats
        with trace_scope("index.probe", queries=len(anchors), side=side):
            batch = self.index.candidate_lists(anchors, relations, side)
        first_query = stats.queries
        stats.queries += len(anchors)
        stats.entities_scored += batch.num_scored
        stats.entities_scanned += batch.num_scanned
        self._sync_fold_stats()
        if batch.covers_all:
            stats.exhaustive_queries += len(anchors)
            return self._full_top_k(anchors, relations, side, filtered, k)
        num_entities = self.model.num_entities
        k_out = min(k, num_entities)
        out_ids = np.full((len(anchors), k_out), -1, dtype=np.int64)
        out_scores = np.full((len(anchors), k_out), -np.inf, dtype=np.float64)
        chunk = self.scorer.effective_chunk_size()
        with trace_scope(
            "index.rerank", queries=len(anchors), candidates=int(batch.num_scored)
        ):
            for start in range(0, len(anchors), chunk):
                stop = min(start + chunk, len(anchors))
                rows = batch.rows[start:stop]
                lengths = np.array([len(row) for row in rows], dtype=np.int64)
                width = int(lengths.max()) if len(lengths) else 0
                if width == 0:
                    # Every shortlist in this chunk is empty (degenerate
                    # partitions): the output rows stay all-pad (-1/-inf).
                    continue
                cands = np.empty((len(rows), width), dtype=np.int64)
                for i, row in enumerate(rows):
                    cands[i, : len(row)] = row
                    if len(row) < width:
                        # Pad with a valid id so scoring never indexes out
                        # of range; an empty row has no last id, so fall
                        # back to id 0.  Pad columns are masked to -inf
                        # below either way.
                        cands[i, len(row):] = row[-1] if len(row) else 0
                scores = np.asarray(
                    self.scorer.score_candidates(
                        anchors[start:stop], relations[start:stop], cands, side
                    ),
                    dtype=np.float64,
                )
                pad_mask = np.arange(width)[None, :] >= lengths[:, None]
                scores[pad_mask] = -np.inf
                if filtered:
                    self._mask_known(
                        scores, anchors[start:stop], relations[start:stop], side, cands
                    )
                picked = self._select_top_k(scores, min(k_out, width))
                ids = np.take_along_axis(cands, picked.ids, axis=1)
                ids[np.take_along_axis(pad_mask, picked.ids, axis=1)] = -1
                out_ids[start:stop, : ids.shape[1]] = ids
                out_scores[start:stop, : ids.shape[1]] = picked.scores
        result = TopKResult(ids=out_ids, scores=out_scores)
        if self.recall_sample_every:
            self._sample_recall(
                anchors, relations, side, filtered, k_out, result, first_query
            )
        return result

    def _sample_recall(
        self, anchors, relations, side, filtered, k_out, result, first_query
    ) -> None:
        """Exact-check every Nth approximate query and record recall@k."""
        stats = self._index_stats
        for row in range(len(anchors)):
            if (first_query + row) % self.recall_sample_every:
                continue
            exact = self._full_top_k(
                anchors[row : row + 1], relations[row : row + 1], side, filtered, k_out
            )
            approx_ids = result.ids[row]
            overlap = np.intersect1d(approx_ids[approx_ids >= 0], exact.ids[0]).size
            stats.recall_checks += 1
            stats.recall_total += overlap / exact.ids.shape[1]

    def _top_k_one_side(
        self,
        anchors,
        relations,
        k: int,
        side: str,
        filtered: bool,
        candidates,
        exact: bool = False,
    ) -> TopKResult:
        if k < 1:
            raise ServingError("k must be >= 1")
        self._sync_version()
        anchors = np.atleast_1d(np.asarray(anchors, dtype=np.int64))
        relations = np.atleast_1d(np.asarray(relations, dtype=np.int64))
        if anchors.shape != relations.shape or anchors.ndim != 1:
            raise ServingError("anchors and relations must be 1-D arrays of equal length")
        if candidates is not None:
            candidates = np.asarray(candidates, dtype=np.int64)
            scores = np.asarray(
                self.scorer.score_candidates(anchors, relations, candidates, side),
                dtype=np.float64,
            )
            if candidates.ndim == 1:
                candidates = np.broadcast_to(candidates, scores.shape)
            if filtered:
                self._mask_known(scores, anchors, relations, side, candidates)
            # Reorder each row by candidate id first so the stable sort in
            # _select_top_k breaks ties toward the lower id, matching the
            # full-sweep path regardless of the caller's candidate order.
            by_id = np.argsort(candidates, axis=1, kind="stable")
            candidates = np.take_along_axis(candidates, by_id, axis=1)
            scores = np.take_along_axis(scores, by_id, axis=1)
            picked = self._select_top_k(scores, min(k, scores.shape[1]))
            return TopKResult(
                ids=np.take_along_axis(candidates, picked.ids, axis=1),
                scores=picked.scores,
            )
        if self.index is not None and not exact:
            return self._top_k_via_index(anchors, relations, k, side, filtered)
        return self._full_top_k(anchors, relations, side, filtered, k)

    def _top_k_relations(self, heads, tails, k: int) -> TopKResult:
        self._sync_version()
        heads = np.atleast_1d(np.asarray(heads, dtype=np.int64))
        tails = np.atleast_1d(np.asarray(tails, dtype=np.int64))
        if heads.shape != tails.shape or heads.ndim != 1:
            raise ServingError("heads and tails must be 1-D arrays of equal length")
        num_relations = self.model.num_relations
        all_relations = np.arange(num_relations, dtype=np.int64)
        # One vectorised (rows * R) sweep per memory-bounded row chunk:
        # the folded backend then sees R groups of `rows` triples each
        # instead of degenerate single-row groups.
        rows_per_chunk = max(1, self.scorer.max_chunk_elements // num_relations)
        scores = np.empty((len(heads), num_relations), dtype=np.float64)
        for start in range(0, len(heads), rows_per_chunk):
            stop = min(start + rows_per_chunk, len(heads))
            block = stop - start
            scores[start:stop] = self.scorer.score_triples(
                np.repeat(heads[start:stop], num_relations),
                np.repeat(tails[start:stop], num_relations),
                np.tile(all_relations, block),
            ).reshape(block, num_relations)
        return self._select_top_k(scores, min(k, num_relations))

    # --------------------------------------------------------------- queries
    def top_k(
        self,
        anchors,
        others,
        *,
        side: str = "tail",
        k: int = 10,
        filtered: bool = False,
        candidates=None,
        exact: bool = False,
    ) -> TopKResult:
        """Unified top-k query: one entry point, the missing slot as *side*.

        * ``side="tail"`` — *anchors* are heads, *others* relations;
          best tail completions of ``(h, ?, r)``.
        * ``side="head"`` — *anchors* are tails, *others* relations;
          best head completions of ``(?, t, r)``.
        * ``side="relation"`` — *anchors* are heads, *others* tails;
          best relation completions of ``(h, ?, t)``.

        Shared knobs: ``filtered=True`` pushes known true entities to
        the bottom (score ``-inf``); ``candidates`` restricts entity
        queries to an explicit ``(c,)`` or ``(b, c)`` id set via the
        model's fast path; ``exact=True`` bypasses any attached index
        and answers with the full-sweep reference path — the serving
        daemon's degraded-mode escape hatch when an index turns out
        stale or corrupt (relation queries are always exact, so the flag
        is a no-op there).  Relation queries reject ``filtered`` and
        ``candidates``: the filter index and the candidate fast paths
        are entity-keyed.
        """
        if k < 1:
            raise ServingError("k must be >= 1")
        if side in ("tail", "head"):
            return self._top_k_one_side(
                anchors, others, k, side, filtered, candidates, exact=exact
            )
        if side == "relation":
            if filtered:
                raise ServingError(
                    "filtered=True is not supported for side='relation'; the "
                    "filter index is entity-keyed"
                )
            if candidates is not None:
                raise ServingError(
                    "candidates are not supported for side='relation'"
                )
            return self._top_k_relations(anchors, others, k)
        raise ServingError(
            f"unknown side {side!r}; expected 'tail', 'head' or 'relation'"
        )

    def top_k_tails(
        self,
        heads,
        relations,
        k: int = 10,
        filtered: bool = False,
        candidates=None,
        exact: bool = False,
    ) -> TopKResult:
        """Best tail completions of ``(h, ?, r)``; delegates to :meth:`top_k`."""
        return self.top_k(
            heads,
            relations,
            side="tail",
            k=k,
            filtered=filtered,
            candidates=candidates,
            exact=exact,
        )

    def top_k_heads(
        self,
        tails,
        relations,
        k: int = 10,
        filtered: bool = False,
        candidates=None,
        exact: bool = False,
    ) -> TopKResult:
        """Best head completions of ``(?, t, r)``; delegates to :meth:`top_k`."""
        return self.top_k(
            tails,
            relations,
            side="head",
            k=k,
            filtered=filtered,
            candidates=candidates,
            exact=exact,
        )

    def top_k_relations(self, heads, tails, k: int = 10) -> TopKResult:
        """Best relation completions of ``(h, ?, t)``; delegates to :meth:`top_k`."""
        return self.top_k(heads, tails, side="relation", k=k)

    def warm_cache(self, anchors, relations, side: str = "tail") -> None:
        """Precompute and cache the sweeps for the given queries."""
        if self.cache is None:
            raise ServingError("warm_cache needs caching enabled (cache_size > 0)")
        self._sync_version()
        anchors = np.atleast_1d(np.asarray(anchors, dtype=np.int64))
        relations = np.atleast_1d(np.asarray(relations, dtype=np.int64))
        self._full_scores(anchors, relations, side)

    # ---------------------------------------------------------- name queries
    def _vocabs(self):
        if self.dataset is None:
            raise ServingError("name-based prediction needs a dataset with vocabularies")
        return self.dataset.entities, self.dataset.relations

    def predict(
        self,
        head: str | None = None,
        relation: str | None = None,
        tail: str | None = None,
        k: int = 10,
        filtered: bool = True,
    ) -> list[tuple[str, float]]:
        """Name-level prediction for exactly one missing triple slot.

        Give two of ``head``/``relation``/``tail``; the missing one is
        predicted and returned as ``[(name, score), ...]`` best-first.
        ``filtered`` applies to entity prediction only — relation
        queries are always raw (the filter index is entity-keyed).
        """
        entities, relations_vocab = self._vocabs()
        given = [slot is not None for slot in (head, relation, tail)]
        if sum(given) != 2:
            raise ServingError(
                "predict needs exactly two of head/relation/tail, got "
                f"{sum(given)}"
            )
        if relation is None:
            result = self.top_k(
                [entities.index(head)], [entities.index(tail)], side="relation", k=k
            )
            return result.labeled(relations_vocab)[0]
        rel_id = relations_vocab.index(relation)
        if tail is None:
            result = self.top_k(
                [entities.index(head)], [rel_id], side="tail", k=k, filtered=filtered
            )
        else:
            result = self.top_k(
                [entities.index(tail)], [rel_id], side="head", k=k, filtered=filtered
            )
        # labeled() drops index-shortlist pad ids (-1) from every row.
        return result.labeled(entities)[0]
