"""Micro-batched asyncio serving daemon over :class:`LinkPredictor`.

The library's serving layer already amortises the folded matmul across
*batched* calls — but production traffic arrives as many small
concurrent requests, not as pre-assembled batches.  This module closes
that gap with a stdlib-only asyncio service:

``PredictionServer``
    The core loop.  Concurrent ``top_k_tails``/``top_k_heads``/
    ``top_k_relations`` awaits land in one bounded queue; a batcher task
    drains up to ``max_batch`` requests per tick (waiting at most
    ``max_wait_ms`` for stragglers), groups them by
    ``(side, filtered, k-bucket)`` and dispatches **one**
    :class:`~repro.serving.predictor.LinkPredictor` call per group —
    exactly the way :class:`~repro.serving.scorer.BatchedScorer` batches
    evaluation.  Each request's future resolves to a
    :class:`ServedTopK` carrying the answer plus the deployment
    generation and model ``scoring_version`` it was computed at.

    *Admission control*: when the queue is at ``queue_depth`` the
    request fast-fails with :class:`~repro.errors.ServerOverloadedError`
    and a ``retry_after_ms`` hint (clamped to a sane floor/ceiling even
    when the service-time EMA has been polluted by a pathological
    batch), instead of queueing unboundedly.

    *Deadlines*: each request may carry a ``deadline_ms`` budget (or
    inherit the server's ``default_deadline_ms``); a request still
    queued when its budget runs out fails with
    :class:`~repro.errors.DeadlineExceededError` instead of occupying a
    batch slot it can no longer use.

    *Degraded mode*: when the active deployment's candidate index turns
    out stale or corrupt **at serving time**, the affected micro-batch
    group is transparently re-answered by the exact full-sweep path
    (``exact=True``), the response is tagged ``degraded`` and the
    server's sticky degraded flag is raised until a successful swap —
    availability over latency, never over correctness.  The same
    applies at load time: :meth:`PredictionServer.load_run` falls back
    to serving without an index when the persisted one fails its
    integrity check.

    *Hot-swap*: :meth:`PredictionServer.load_run` builds a new
    predictor from a run directory **off the event loop**, refuses
    persisted indexes whose fingerprint no longer matches the
    checkpoint (``on_stale="error"``), waits for the in-flight
    micro-batch to finish, and flips the active deployment atomically —
    no response ever mixes old and new model versions, and the old
    deployment keeps serving until the instant of the flip.

    *Live ingestion*: :meth:`PredictionServer.apply_delta` hot-applies a
    :class:`~repro.ingest.GraphDelta` to the active deployment under the
    same swap lock dispatch scoring holds — dataset apply, embedding
    growth, warm-start fine-tuning and incremental index maintenance all
    land atomically between micro-batches, and every subsequent response
    carries the advanced ``graph_version``.

    *Shutdown*: :meth:`PredictionServer.close` stops admission, drains
    queued requests (or fails them fast with
    :class:`~repro.errors.ServerClosedError` when ``drain=False``) and
    retires the batcher task.

``start_tcp_server`` / ``serve_forever``
    A newline-delimited-JSON TCP front-end and the blocking entry point
    behind the ``repro-kge serve`` CLI command.  Protocol: one JSON
    object per line with an ``op`` of ``top_k``, ``stats``, ``health``,
    ``ping``, ``metrics``, ``swap``, ``apply_delta`` or ``shutdown``;
    responses echo the request ``id`` and
    carry either the payload (``ok: true``) or a structured error with
    a machine-readable ``code`` (``ok: false``).  Filtered-out
    candidates' ``-inf`` scores are transported as ``null``.

*Telemetry*: every server owns a :class:`~repro.obs.MetricsRegistry`.
:class:`ServerStats` is now a thin *view* over it — the counter names
(``server.submitted`` …) live in the registry, the attribute/dict
surface is unchanged — and the hot path additionally feeds three
latency histograms (``server.service_seconds`` per request,
``server.dispatch_seconds`` per micro-batch group,
``server.wait_seconds`` queueing delay).  The ``metrics`` wire op
dumps the registry (plus the predictor's cache/index tallies via
:func:`repro.obs.publish_predictor_metrics`) and the slow-query ring;
:meth:`PredictionServer.metrics_text` renders the same snapshot in
Prometheus text format.  Tracing is opt-in: span scopes throughout the
dispatch path are no-ops until a tracer is installed
(:func:`repro.obs.install_tracer` — the daemon entry point arms one).

Everything here is plain CPython stdlib (asyncio + json + numpy already
required by the library); there is no third-party server framework.
"""

from __future__ import annotations

import asyncio
import collections
import json
import logging
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import (
    CorruptArtifactError,
    DeadlineExceededError,
    ReproError,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
    StaleIndexError,
)
from repro.obs.collect import publish_predictor_metrics
from repro.obs.expo import prometheus_text
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import current_span_id, trace_scope
from repro.reliability import faults
from repro.serving.predictor import LinkPredictor

_LOG = logging.getLogger("repro.serving")

#: Fault-injection site fired once per micro-batch group dispatch.
DISPATCH_SITE = "server.dispatch"

#: Clamp bounds for the per-request service-time EMA (seconds).  A
#: single pathological batch (GC pause, page-in, injected slow fault)
#: would otherwise poison the retry-after hint for many requests.
SERVICE_EMA_FLOOR_S = 1e-4
SERVICE_EMA_CEILING_S = 5.0

#: Clamp bounds for the overload hint itself (milliseconds).
RETRY_AFTER_FLOOR_MS = 1.0
RETRY_AFTER_CEILING_MS = 10_000.0

#: Default wall-clock threshold (ms) above which a micro-batch group's
#: scoring call lands in the slow-query ring; overridable per server and
#: via a run's ``observability.slow_query_ms`` config knob.
DEFAULT_SLOW_QUERY_MS = 250.0

#: How many slow-query records the in-memory ring keeps.
SLOW_QUERY_RING = 64


def k_bucket(k: int) -> int:
    """The power-of-two bucket a requested ``k`` coalesces into.

    Requests whose k rounds up to the same bucket share one predictor
    call; each answer is sliced back to its own k afterwards (a top-k
    prefix of a larger top-k is exact under the stable tie rule).
    """
    if k < 1:
        raise ServingError("k must be >= 1")
    return 1 << (int(k) - 1).bit_length()


_SIDES = ("tail", "head", "relation")

#: Keyword knobs the wire ``apply_delta`` op may forward to
#: :func:`repro.ingest.ingest_delta` (mirrors ``IngestSection``).
_INGEST_KNOBS = frozenset(
    {
        "epochs",
        "batch_size",
        "learning_rate",
        "optimizer",
        "num_negatives",
        "seed",
        "drift_threshold",
        "grow_initializer",
    }
)


@dataclass(frozen=True)
class Deployment:
    """One warm, servable model: a predictor plus its identity tags.

    ``degraded`` marks deployments that came up without their persisted
    index (it failed an integrity or freshness check at load time) —
    answers are exact but pay full sweeps.
    """

    predictor: LinkPredictor
    generation: int
    run_dir: str | None = None
    label: str | None = None
    degraded: bool = False
    #: Monotonic count of graph deltas hot-applied to this serving line
    #: (see :meth:`PredictionServer.apply_delta`); 0 for a fresh deploy.
    graph_version: int = 0

    @property
    def scoring_version(self) -> int:
        return self.predictor.model.scoring_version


@dataclass(frozen=True)
class ServedTopK:
    """One request's answer, tagged with the deployment that served it.

    ``ids``/``scores`` are 1-D arrays of length ≤ k (index-served
    shortlists may pad with ``-1``/``-inf``; see
    :class:`~repro.serving.predictor.TopKResult`).  ``generation`` and
    ``scoring_version`` identify the deployment snapshot — a hot-swap
    test can assert no response mixes versions.  ``coalesced`` is the
    size of the predictor call that served this request (how much
    micro-batching actually happened) and ``waited_ms`` the time the
    request spent queued before dispatch.  ``degraded`` is set when the
    answer came from the exact full-sweep fallback because the
    deployment's index was stale/corrupt (the answer itself is exact —
    degraded refers to latency, not quality).
    """

    ids: np.ndarray
    scores: np.ndarray
    generation: int
    scoring_version: int
    coalesced: int
    waited_ms: float
    degraded: bool = False
    graph_version: int = 0


class _CounterField:
    """A :class:`ServerStats` attribute backed by a registry counter.

    Reads and writes go straight to ``stats.registry`` under the name
    ``server.<attr>`` — so ``stats.submitted += 1`` keeps working while
    the value itself lives in the shared metrics registry (and therefore
    shows up in the ``metrics`` wire op / Prometheus dump for free).
    """

    __slots__ = ("name",)

    def __set_name__(self, owner, attr: str) -> None:
        self.name = "server." + attr

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj.registry.counter_value(self.name)

    def __set__(self, obj, value: int) -> None:
        obj.registry.set_counter(self.name, int(value))


class ServerStats:
    """Monotonic counters exposed by :meth:`PredictionServer.stats`.

    Historically a plain dataclass of ints; now a thin view over a
    :class:`~repro.obs.MetricsRegistry` (one counter per field, named
    ``server.<field>``) so the same numbers feed ``stats_dict`` and the
    telemetry exposition paths without double bookkeeping.  The
    attribute surface — including augmented assignment — is unchanged.
    """

    submitted = _CounterField()
    served = _CounterField()
    rejected = _CounterField()
    failed = _CounterField()
    cancelled = _CounterField()
    batches = _CounterField()
    dispatch_calls = _CounterField()
    coalesced_total = _CounterField()
    coalesced_max = _CounterField()
    swaps = _CounterField()
    peak_depth = _CounterField()
    degraded = _CounterField()
    deadline_expired = _CounterField()
    deltas_applied = _CounterField()
    slow_queries = _CounterField()

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    @property
    def mean_coalesced(self) -> float:
        """Mean requests per predictor call (the amortisation factor)."""
        if not self.dispatch_calls:
            return 0.0
        return self.coalesced_total / self.dispatch_calls


@dataclass
class _Pending:
    side: str
    first: int
    second: int
    k: int
    filtered: bool
    future: asyncio.Future
    enqueued_at: float
    deadline_at: float | None = None
    bucket: int = field(init=False)

    def __post_init__(self) -> None:
        self.bucket = k_bucket(self.k)


class PredictionServer:
    """Coalesce concurrent top-k requests into micro-batched sweeps.

    Parameters
    ----------
    predictor:
        The initial deployment, or ``None`` to start empty (deploy later
        via :meth:`swap_predictor`/:meth:`load_run`).
    max_batch:
        Most requests drained into one micro-batch per tick.
    max_wait_ms:
        How long a tick waits for stragglers once it has at least one
        request but fewer than ``max_batch``.  ``0`` dispatches
        immediately — with a single closed-loop client that degenerates
        to request-at-a-time serving (the benchmark's baseline).
    queue_depth:
        Admission cap; requests beyond it fast-fail with
        :class:`~repro.errors.ServerOverloadedError`.
    label:
        Optional deployment label echoed in :meth:`stats`.
    default_deadline_ms:
        Deadline budget applied to requests that do not carry their own
        ``deadline_ms``; ``None`` (the default) means requests wait
        indefinitely for dispatch.
    slow_query_ms:
        Wall-clock threshold above which a micro-batch group's scoring
        call is recorded in the slow-query ring (and logged at WARNING).
        ``None`` adopts :data:`DEFAULT_SLOW_QUERY_MS` — or, under
        :meth:`load_run`, the run's ``observability.slow_query_ms``.
    """

    def __init__(
        self,
        predictor: LinkPredictor | None = None,
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        queue_depth: int = 1024,
        label: str | None = None,
        default_deadline_ms: float | None = None,
        slow_query_ms: float | None = None,
    ) -> None:
        if max_batch < 1:
            raise ServingError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ServingError("max_wait_ms must be >= 0")
        if queue_depth < 1:
            raise ServingError("queue_depth must be >= 1")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ServingError("default_deadline_ms must be > 0 (or None)")
        if slow_query_ms is not None and slow_query_ms <= 0:
            raise ServingError("slow_query_ms must be > 0 (or None)")
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.queue_depth = int(queue_depth)
        self.default_deadline_ms = (
            float(default_deadline_ms) if default_deadline_ms is not None else None
        )
        #: None means "not explicitly configured" — load_run may adopt
        #: the run's observability.slow_query_ms before falling back to
        #: the module default.
        self._slow_query_ms_explicit = slow_query_ms is not None
        self.slow_query_ms = (
            float(slow_query_ms) if slow_query_ms is not None else DEFAULT_SLOW_QUERY_MS
        )
        self.metrics = MetricsRegistry()
        self.stats = ServerStats(self.metrics)
        self._slow_queries: collections.deque[dict] = collections.deque(
            maxlen=SLOW_QUERY_RING
        )
        self._pending: collections.deque[_Pending] = collections.deque()
        self._wake = asyncio.Event()
        self._swap_lock = asyncio.Lock()
        self._task: asyncio.Task | None = None
        self._closing = False
        self._closed = False
        self._generation = 0
        self._active: Deployment | None = None
        #: EMA of per-request service seconds; feeds the retry-after hint.
        self._service_ema: float | None = None
        #: Sticky until the next successful swap: the server answered at
        #: least one request (or came up) without its index.
        self._degraded = False
        if predictor is not None:
            self._generation = 1
            self._active = Deployment(predictor, 1, label=label)

    # ---------------------------------------------------------------- state
    @property
    def deployment(self) -> Deployment | None:
        """The currently active deployment (None before the first deploy)."""
        return self._active

    @property
    def generation(self) -> int:
        """Monotonic deployment counter; bumps on every hot-swap."""
        return self._generation

    @property
    def queue_len(self) -> int:
        return len(self._pending)

    @property
    def closing(self) -> bool:
        return self._closing

    @property
    def degraded(self) -> bool:
        """True once any answer (or the deployment itself) bypassed the
        index because it was stale/corrupt; reset by a successful swap."""
        return self._degraded

    def health_dict(self) -> dict:
        """Liveness/degradation summary for the wire ``health`` op.

        ``status`` is ``"empty"`` (nothing deployed), ``"closing"``,
        ``"degraded"`` (serving exact fallbacks) or ``"ok"``.
        """
        active = self._active
        if self._closing or self._closed:
            status = "closing"
        elif active is None:
            status = "empty"
        elif self._degraded:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "degraded": self._degraded,
            "generation": self._generation,
            "graph_version": active.graph_version if active else None,
            "queue_len": len(self._pending),
            "queue_depth": self.queue_depth,
            "degraded_served": self.stats.degraded,
            "deadline_expired": self.stats.deadline_expired,
            "index_attached": bool(active and active.predictor.index is not None),
        }

    def stats_dict(self) -> dict:
        """JSON-compatible snapshot of the server's counters and state."""
        active = self._active
        return {
            "generation": self._generation,
            "graph_version": active.graph_version if active else None,
            "scoring_version": active.scoring_version if active else None,
            "run_dir": active.run_dir if active else None,
            "label": active.label if active else None,
            "queue_len": len(self._pending),
            "queue_depth": self.queue_depth,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "closing": self._closing,
            "submitted": self.stats.submitted,
            "served": self.stats.served,
            "rejected": self.stats.rejected,
            "failed": self.stats.failed,
            "cancelled": self.stats.cancelled,
            "batches": self.stats.batches,
            "dispatch_calls": self.stats.dispatch_calls,
            "mean_coalesced": self.stats.mean_coalesced,
            "coalesced_max": self.stats.coalesced_max,
            "swaps": self.stats.swaps,
            "peak_depth": self.stats.peak_depth,
            "degraded": self._degraded,
            "degraded_served": self.stats.degraded,
            "deadline_expired": self.stats.deadline_expired,
            "deltas_applied": self.stats.deltas_applied,
            "index": active.predictor.index_stats_dict() if active else None,
        }

    def metrics_dict(self) -> dict:
        """Full registry snapshot for the wire ``metrics`` op.

        Queue/generation gauges and the predictor's cache/index tallies
        (:func:`repro.obs.publish_predictor_metrics`) are published at
        exposition time, not on the hot path — reading this is the only
        moment they need to be current.
        """
        registry = self.metrics
        registry.gauge_set("server.queue_len", len(self._pending))
        registry.gauge_set("server.queue_depth", self.queue_depth)
        registry.gauge_set("server.generation", self._generation)
        registry.gauge_set("server.slow_query_ms", self.slow_query_ms)
        active = self._active
        if active is not None:
            publish_predictor_metrics(registry, active.predictor)
        return {
            "generation": self._generation,
            "graph_version": active.graph_version if active else None,
            "slow_query_ms": self.slow_query_ms,
            "metrics": registry.snapshot().to_dict(),
            "slow_queries": list(self._slow_queries),
        }

    def metrics_text(self) -> str:
        """The same snapshot as :meth:`metrics_dict`, Prometheus-style."""
        self.metrics_dict()  # refresh gauges + predictor tallies
        return prometheus_text(self.metrics.snapshot())

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> "PredictionServer":
        """Spawn the batcher task on the running loop; idempotent."""
        if self._closed:
            raise ServerClosedError("server already closed")
        if self._task is None:
            self._task = asyncio.create_task(self._batch_loop(), name="repro-batcher")
        return self

    async def close(self, drain: bool = True) -> None:
        """Stop admission, then drain (default) or fail queued requests."""
        if self._closed:
            return
        self._closing = True
        if not drain:
            while self._pending:
                request = self._pending.popleft()
                if not request.future.done():
                    request.future.set_exception(
                        ServerClosedError("server shut down before dispatch")
                    )
                    self.stats.failed += 1
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        self._closed = True

    async def __aenter__(self) -> "PredictionServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------- hot swap
    async def swap_predictor(
        self,
        predictor: LinkPredictor,
        *,
        run_dir: str | None = None,
        label: str | None = None,
        degraded: bool = False,
    ) -> Deployment:
        """Atomically flip serving to *predictor*.

        Waits for the in-flight micro-batch (the dispatch lock), so a
        batch is always answered entirely by the deployment it started
        under.  A stale attached index (``on_stale="error"``) raises
        :class:`~repro.errors.StaleIndexError` *before* the flip — the
        old deployment keeps serving.  A successful swap clears the
        server's sticky degraded flag unless the new deployment is
        itself *degraded* (came up without its persisted index).
        """
        if predictor.index is not None:
            # Surface staleness now, not lazily on the first request.
            predictor.index.ensure_fresh()
        async with self._swap_lock:
            self._generation += 1
            self._active = Deployment(
                predictor,
                self._generation,
                run_dir=run_dir,
                label=label,
                degraded=degraded,
            )
            self.stats.swaps += 1
            self._degraded = bool(degraded)
            # A new deployment has a new latency profile.  Carrying the
            # old model's service times across the swap mis-prices the
            # retry-after hint for every overloaded client until the EMA
            # drifts back — e.g. swapping an exact-sweep deployment for
            # an indexed one kept quoting sweep-sized backoffs.  Reset
            # both the EMA and the service-time histogram so the hint is
            # rebuilt from post-swap measurements only.
            self._service_ema = None
            self.metrics.reset("server.service_seconds")
            self.metrics.gauge_set("server.generation", self._generation)
            return self._active

    async def load_run(
        self,
        run_dir: str | Path,
        *,
        index: str | None = "auto",
        label: str | None = None,
        **predictor_kwargs,
    ) -> Deployment:
        """Load a run directory in the background and hot-swap onto it.

        The checkpoint/dataset/index load happens in a worker thread —
        in-flight and newly arriving requests keep being served by the
        current deployment throughout.  Persisted indexes are loaded
        with ``on_stale="error"``: under ``index="auto"`` a stale or
        corrupt saved index **degrades** the deployment (it comes up
        serving exact full sweeps, tagged in :meth:`health_dict`)
        instead of refusing to serve; ``index="require"`` keeps the
        strict behaviour and raises.
        """

        def _build() -> tuple[LinkPredictor, bool]:
            from repro.pipeline.runner import serve_run

            try:
                return (
                    serve_run(
                        str(run_dir), index=index, on_stale="error", **predictor_kwargs
                    ),
                    False,
                )
            except (StaleIndexError, CorruptArtifactError):
                if index != "auto":
                    raise
                # Availability over latency: serve the checkpoint with
                # exact sweeps rather than refuse the deploy outright.
                return (
                    serve_run(str(run_dir), index=None, **predictor_kwargs),
                    True,
                )

        predictor, degraded = await asyncio.to_thread(_build)
        if not self._slow_query_ms_explicit:
            # Adopt the run's observability threshold unless the caller
            # pinned one on the server itself.
            try:
                config = json.loads(
                    (Path(run_dir) / "config.json").read_text(encoding="utf-8")
                )
                threshold = config.get("observability", {}).get("slow_query_ms")
                if isinstance(threshold, (int, float)) and threshold > 0:
                    self.slow_query_ms = float(threshold)
            except (OSError, json.JSONDecodeError):
                pass
        return await self.swap_predictor(
            predictor, run_dir=str(run_dir), label=label, degraded=degraded
        )

    # ------------------------------------------------------------- ingestion
    async def apply_delta(self, delta, **ingest_kwargs) -> dict:
        """Hot-apply a :class:`~repro.ingest.GraphDelta` to the active line.

        The full ingest pipeline — transactional dataset apply,
        embedding-table growth, touched-row fine-tuning, incremental
        index maintenance (:func:`repro.ingest.ingest_delta`) — runs in
        a worker thread **while holding the swap lock**, the same lock
        every micro-batch dispatch holds while scoring.  No response is
        ever computed against a half-applied delta: queries either see
        the pre-delta deployment or the post-delta one, whose
        ``graph_version`` (echoed on every :class:`ServedTopK`) has
        advanced by one.  *delta* may be a :class:`GraphDelta` or its
        ``to_dict`` payload; keyword knobs are forwarded to
        :func:`~repro.ingest.ingest_delta`.  An empty delta is a no-op:
        the receipt reports ``applied: false`` and neither the
        generation nor the graph version moves.
        """
        from repro.ingest import GraphDelta, ingest_delta

        if isinstance(delta, dict):
            delta = GraphDelta.from_dict(delta)
        if not isinstance(delta, GraphDelta):
            raise ServingError(
                f"apply_delta needs a GraphDelta or its dict form; got "
                f"{type(delta).__name__}"
            )
        if self._closing:
            raise ServerClosedError("server is shutting down; request refused")
        async with self._swap_lock:
            deployment = self._active
            if deployment is None:
                raise ServingError(
                    "no model deployed; call load_run/swap_predictor first"
                )
            predictor = deployment.predictor
            if predictor.dataset is None:
                raise ServingError(
                    "apply_delta needs a deployment backed by a dataset"
                )

            def _apply():
                return ingest_delta(
                    predictor.model,
                    predictor.dataset,
                    delta,
                    index=predictor.index,
                    **ingest_kwargs,
                )

            outcome = await asyncio.to_thread(_apply)
            receipt = outcome.to_dict()
            if not outcome.applied:
                receipt["generation"] = deployment.generation
                receipt["graph_version"] = deployment.graph_version
                return receipt
            # Mutate the predictor in place: version-keyed caches resync
            # on the next query, and the spliced index must NOT be
            # invalidated (clear_cache would discard the splice).
            predictor.dataset = outcome.dataset
            if predictor._filter_index is not None:
                predictor._filter_index = outcome.dataset.filter_index
            if predictor._index_stats is not None:
                predictor._index_stats.num_entities = predictor.model.num_entities
            self._generation += 1
            self._active = Deployment(
                predictor,
                self._generation,
                run_dir=deployment.run_dir,
                label=deployment.label,
                degraded=deployment.degraded,
                graph_version=deployment.graph_version + 1,
            )
            self.stats.deltas_applied += 1
            receipt["generation"] = self._active.generation
            receipt["graph_version"] = self._active.graph_version
            receipt["scoring_version"] = self._active.scoring_version
            return receipt

    # ------------------------------------------------------------- requests
    def _submit(
        self,
        side: str,
        first: int,
        second: int,
        k: int,
        filtered: bool,
        deadline_ms: float | None = None,
    ) -> asyncio.Future:
        if side not in _SIDES:
            raise ServingError(f"unknown side {side!r}; known: {_SIDES}")
        if k < 1:
            raise ServingError("k must be >= 1")
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        elif deadline_ms <= 0:
            raise ServingError("deadline_ms must be > 0 (or None)")
        if self._closing:
            raise ServerClosedError("server is shutting down; request refused")
        if self._active is None:
            raise ServingError("no model deployed; call load_run/swap_predictor first")
        if len(self._pending) >= self.queue_depth:
            self.stats.rejected += 1
            raise ServerOverloadedError(
                f"request queue at admission cap ({self.queue_depth}); retry later",
                retry_after_ms=self._retry_after_ms(),
            )
        loop = asyncio.get_running_loop()
        now = loop.time()
        request = _Pending(
            side=side,
            first=int(first),
            second=int(second),
            k=int(k),
            filtered=bool(filtered),
            future=loop.create_future(),
            enqueued_at=now,
            deadline_at=now + deadline_ms / 1000.0 if deadline_ms else None,
        )
        self._pending.append(request)
        self.stats.submitted += 1
        self.stats.peak_depth = max(self.stats.peak_depth, len(self._pending))
        self._wake.set()
        return request.future

    def _observe_service_time(self, per_request: float) -> None:
        """Fold one per-request service measurement into the EMA.

        The sample is clamped to ``[SERVICE_EMA_FLOOR_S,
        SERVICE_EMA_CEILING_S]`` first: one pathological measurement
        (page-in, GC pause, injected slow fault) must not balloon the
        retry-after hint handed to every rejected client afterwards, and
        a sub-microsecond fluke must not collapse it to nothing.
        """
        sample = min(max(per_request, SERVICE_EMA_FLOOR_S), SERVICE_EMA_CEILING_S)
        self.metrics.observe("server.service_seconds", sample)
        self._service_ema = (
            sample
            if self._service_ema is None
            else 0.8 * self._service_ema + 0.2 * sample
        )

    def _retry_after_ms(self) -> float:
        # Prefer the p90 of the (generation-scoped) service-time
        # histogram: unlike the EMA it is robust to a recent burst of
        # fast or slow outliers and prices the hint off what a typical
        # slow request actually costs.  Falls back to the EMA, then to a
        # 50ms guess, while no measurements exist yet.
        service = self.metrics.quantile("server.service_seconds", 0.9)
        if service is None:
            service = self._service_ema if self._service_ema is not None else 0.05
        backlog = len(self._pending) * service / max(1, self.max_batch)
        hint = 1000.0 * backlog + self.max_wait_ms
        return min(max(hint, RETRY_AFTER_FLOOR_MS), RETRY_AFTER_CEILING_MS)

    async def top_k_tails(
        self,
        head: int,
        relation: int,
        *,
        k: int = 10,
        filtered: bool = False,
        deadline_ms: float | None = None,
    ) -> ServedTopK:
        """Await the best tail completions of ``(head, ?, relation)``."""
        return await self._submit("tail", head, relation, k, filtered, deadline_ms)

    async def top_k_heads(
        self,
        tail: int,
        relation: int,
        *,
        k: int = 10,
        filtered: bool = False,
        deadline_ms: float | None = None,
    ) -> ServedTopK:
        """Await the best head completions of ``(?, tail, relation)``."""
        return await self._submit("head", tail, relation, k, filtered, deadline_ms)

    async def top_k_relations(
        self, head: int, tail: int, *, k: int = 10, deadline_ms: float | None = None
    ) -> ServedTopK:
        """Await the best relation completions of ``(head, ?, tail)``."""
        return await self._submit("relation", head, tail, k, False, deadline_ms)

    # -------------------------------------------------------------- batcher
    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._pending:
                if self._closing:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            # Tick: wait (bounded) for the batch to fill before dispatch.
            if (
                not self._closing
                and self.max_wait_ms > 0
                and len(self._pending) < self.max_batch
            ):
                deadline = loop.time() + self.max_wait_ms / 1000.0
                while not self._closing and len(self._pending) < self.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    self._wake.clear()
                    try:
                        await asyncio.wait_for(self._wake.wait(), remaining)
                    except asyncio.TimeoutError:
                        break
            batch = [
                self._pending.popleft()
                for _ in range(min(self.max_batch, len(self._pending)))
            ]
            await self._dispatch(batch, loop)

    async def _dispatch(self, batch: list[_Pending], loop) -> None:
        self.stats.batches += 1
        now = loop.time()
        groups: dict[tuple[str, bool, int], list[_Pending]] = {}
        for request in batch:
            if request.future.cancelled():
                self.stats.cancelled += 1
                continue
            if request.deadline_at is not None and now >= request.deadline_at:
                # The budget is gone before any scoring started; failing
                # fast here keeps dead requests from occupying batch
                # slots that live ones could use.
                request.future.set_exception(
                    DeadlineExceededError(
                        f"request waited {1000.0 * (now - request.enqueued_at):.1f}ms "
                        "in queue, past its deadline; retry with a larger "
                        "deadline_ms or when the server is less loaded"
                    )
                )
                self.stats.deadline_expired += 1
                self.stats.failed += 1
                continue
            key = (request.side, request.filtered, request.bucket)
            groups.setdefault(key, []).append(request)
        # Hold the dispatch lock across the whole micro-batch: a swap can
        # only land between batches, so every response in this batch comes
        # from one deployment snapshot.
        async with self._swap_lock:
            deployment = self._active
            with trace_scope("server.batch", size=len(batch), groups=len(groups)):
                for (side, filtered, bucket), requests in groups.items():
                    await self._dispatch_group(
                        deployment, side, filtered, bucket, requests, loop
                    )

    async def _dispatch_group(
        self,
        deployment: Deployment,
        side: str,
        filtered: bool,
        bucket: int,
        requests: list[_Pending],
        loop,
    ) -> None:
        predictor = deployment.predictor
        first = np.array([r.first for r in requests], dtype=np.int64)
        second = np.array([r.second for r in requests], dtype=np.int64)
        # _score runs on a worker thread, where the tracer's thread-local
        # parent stack is empty — pass the dispatch span id explicitly so
        # predictor/index spans still nest under this group.
        group_span = current_span_id()

        def _score(exact: bool = False):
            with trace_scope(
                "server.dispatch",
                parent=group_span,
                side=side,
                bucket=bucket,
                coalesced=len(requests),
                generation=deployment.generation,
                exact=exact,
            ):
                faults.fire(DISPATCH_SITE, context=f"side:{side};bucket:{bucket}")
                # One entry point for every side: the predictor's unified
                # top_k.  Relation groups are admitted with filtered=False
                # (the filter index is entity-keyed), so the shared knobs
                # pass through unchanged.
                return predictor.top_k(
                    first, second, side=side, k=bucket, filtered=filtered, exact=exact
                )

        started = loop.time()
        degraded = False
        try:
            # Score off the event loop so admission/IO stay responsive
            # while numpy sweeps; the dispatch lock still serialises
            # scoring with hot-swaps.
            result = await asyncio.to_thread(_score)
        except (StaleIndexError, CorruptArtifactError):
            # The deployment's index failed at serving time.  Re-answer
            # this group with the exact full-sweep path — correct but
            # slower — and mark the server degraded until the next swap.
            try:
                result = await asyncio.to_thread(_score, True)
            except BaseException as error:  # noqa: BLE001 — forwarded to callers
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(error)
                        self.stats.failed += 1
                return
            degraded = True
            self._degraded = True
        except BaseException as error:  # noqa: BLE001 — forwarded to callers
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(error)
                    self.stats.failed += 1
            return
        elapsed = loop.time() - started
        self._observe_service_time(elapsed / len(requests))
        self.metrics.observe("server.dispatch_seconds", elapsed)
        self.stats.dispatch_calls += 1
        self.stats.coalesced_total += len(requests)
        self.stats.coalesced_max = max(self.stats.coalesced_max, len(requests))
        if elapsed * 1000.0 >= self.slow_query_ms:
            self._record_slow_query(
                deployment, side, bucket, len(requests), elapsed, degraded
            )
        degraded = degraded or deployment.degraded
        now = loop.time()
        for row, request in enumerate(requests):
            if request.future.done():
                self.stats.cancelled += 1
                continue
            width = min(request.k, result.ids.shape[1])
            self.metrics.observe(
                "server.wait_seconds", max(0.0, now - request.enqueued_at)
            )
            request.future.set_result(
                ServedTopK(
                    ids=result.ids[row, :width].copy(),
                    scores=result.scores[row, :width].copy(),
                    generation=deployment.generation,
                    scoring_version=deployment.scoring_version,
                    coalesced=len(requests),
                    waited_ms=1000.0 * (now - request.enqueued_at),
                    degraded=degraded,
                    graph_version=deployment.graph_version,
                )
            )
            self.stats.served += 1
            if degraded:
                self.stats.degraded += 1

    def _record_slow_query(
        self,
        deployment: Deployment,
        side: str,
        bucket: int,
        coalesced: int,
        elapsed: float,
        degraded: bool,
    ) -> None:
        """Ring-buffer (and log) one over-threshold micro-batch group."""
        entry = {
            "side": side,
            "bucket": bucket,
            "coalesced": coalesced,
            "elapsed_ms": round(elapsed * 1000.0, 3),
            "per_request_ms": round(elapsed * 1000.0 / max(1, coalesced), 3),
            "generation": deployment.generation,
            "graph_version": deployment.graph_version,
            "degraded": bool(degraded or deployment.degraded),
        }
        self._slow_queries.append(entry)
        self.stats.slow_queries += 1
        _LOG.warning(
            "slow query: side=%s bucket=%d coalesced=%d took %.1fms "
            "(threshold %.1fms, generation %d%s)",
            side,
            bucket,
            coalesced,
            entry["elapsed_ms"],
            self.slow_query_ms,
            deployment.generation,
            ", degraded" if entry["degraded"] else "",
        )


# ------------------------------------------------------------------ TCP layer
_ERROR_CODES = {
    ServerOverloadedError: "overloaded",
    ServerClosedError: "closed",
    DeadlineExceededError: "deadline",
    StaleIndexError: "stale_index",
    CorruptArtifactError: "corrupt_artifact",
}


def _error_payload(error: Exception) -> dict:
    code = "internal"
    for cls, name in _ERROR_CODES.items():
        if isinstance(error, cls):
            code = name
            break
    else:
        if isinstance(error, ReproError):
            code = "bad_request"
    payload = {"code": code, "message": str(error)}
    if isinstance(error, ServerOverloadedError):
        payload["retry_after_ms"] = error.retry_after_ms
    return payload


def _json_scores(scores: np.ndarray) -> list:
    """Scores as JSON numbers; non-finite (filtered/pad -inf) become null."""
    return [float(s) if math.isfinite(s) else None for s in scores]


async def _handle_top_k(server: PredictionServer, message: dict) -> dict:
    side = message.get("side", "tail")
    k = message.get("k", 10)
    filtered = bool(message.get("filtered", False))
    deadline_ms = message.get("deadline_ms")
    if not isinstance(k, int) or isinstance(k, bool):
        raise ServingError("k must be an integer")
    if deadline_ms is not None and (
        not isinstance(deadline_ms, (int, float)) or isinstance(deadline_ms, bool)
    ):
        raise ServingError("deadline_ms must be a number (milliseconds)")
    fields = {"tail": ("head", "relation"), "head": ("tail", "relation"),
              "relation": ("head", "tail")}
    if side not in fields:
        raise ServingError(f"unknown side {side!r}; known: {sorted(fields)}")
    names = fields[side]
    values = []
    for name in names:
        value = message.get(name)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ServingError(f"top_k side={side!r} needs integer {names[0]!r} and "
                               f"{names[1]!r} ids")
        values.append(value)
    if side == "tail":
        served = await server.top_k_tails(
            values[0], values[1], k=k, filtered=filtered, deadline_ms=deadline_ms
        )
    elif side == "head":
        served = await server.top_k_heads(
            values[0], values[1], k=k, filtered=filtered, deadline_ms=deadline_ms
        )
    else:
        served = await server.top_k_relations(
            values[0], values[1], k=k, deadline_ms=deadline_ms
        )
    return {
        "ids": [int(i) for i in served.ids],
        "scores": _json_scores(served.scores),
        "generation": served.generation,
        "scoring_version": served.scoring_version,
        "graph_version": served.graph_version,
        "coalesced": served.coalesced,
        "waited_ms": served.waited_ms,
        "degraded": served.degraded,
    }


async def _handle_message(
    server: PredictionServer, message: dict, shutdown: asyncio.Event | None
) -> dict:
    op = message.get("op", "top_k")
    if op == "top_k":
        return await _handle_top_k(server, message)
    if op == "stats":
        return {"stats": server.stats_dict()}
    if op == "health":
        return {"health": server.health_dict()}
    if op == "metrics":
        return {"metrics": server.metrics_dict()}
    if op == "ping":
        return {"pong": True, "generation": server.generation}
    if op == "swap":
        run_dir = message.get("run_dir")
        if not isinstance(run_dir, str) or not run_dir:
            raise ServingError("swap needs a run_dir string")
        deployment = await server.load_run(
            run_dir, index=message.get("index", "auto")
        )
        return {
            "generation": deployment.generation,
            "scoring_version": deployment.scoring_version,
            "run_dir": deployment.run_dir,
        }
    if op == "apply_delta":
        delta = message.get("delta")
        if not isinstance(delta, dict):
            raise ServingError("apply_delta needs a delta object")
        knobs = message.get("ingest", {})
        if not isinstance(knobs, dict):
            raise ServingError("ingest knobs must be a JSON object")
        unknown = set(knobs) - _INGEST_KNOBS
        if unknown:
            raise ServingError(
                f"unknown ingest knobs {sorted(unknown)}; known: "
                f"{sorted(_INGEST_KNOBS)}"
            )
        return {"ingest": await server.apply_delta(delta, **knobs)}
    if op == "shutdown":
        if shutdown is None:
            raise ServingError("shutdown is not enabled on this frontend")
        shutdown.set()
        return {"closing": True}
    raise ServingError(
        f"unknown op {op!r}; known: top_k, stats, health, ping, metrics, swap, "
        "apply_delta, shutdown"
    )


async def _serve_connection(
    server: PredictionServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    shutdown: asyncio.Event | None,
) -> None:
    write_lock = asyncio.Lock()
    tasks: set[asyncio.Task] = set()

    async def respond(request_id, coro) -> None:
        try:
            payload = {"id": request_id, "ok": True, **await coro}
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 — wire errors are structured
            payload = {"id": request_id, "ok": False, "error": _error_payload(error)}
        line = json.dumps(payload) + "\n"
        async with write_lock:
            writer.write(line.encode("utf-8"))
            try:
                await writer.drain()
            except ConnectionError:
                pass

    try:
        while True:
            try:
                line = await reader.readline()
            except ConnectionError:
                break
            if not line:
                break
            text = line.decode("utf-8").strip()
            if not text:
                continue
            try:
                message = json.loads(text)
                if not isinstance(message, dict):
                    raise ServingError("requests must be JSON objects")
            except json.JSONDecodeError as error:
                await respond(None, _raise_async(ServingError(f"invalid JSON: {error}")))
                continue
            except ServingError as error:
                await respond(None, _raise_async(error))
                continue
            # Each request runs concurrently so one connection can keep
            # many in flight — that concurrency is what the batcher
            # coalesces.
            task = asyncio.create_task(
                respond(message.get("id"), _handle_message(server, message, shutdown))
            )
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
    except asyncio.CancelledError:
        # Daemon teardown cancels handlers still parked in readline();
        # exiting normally keeps the streams connection_made callback
        # from logging the cancellation as an error.
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass


async def _raise_async(error: Exception):
    raise error


async def start_tcp_server(
    server: PredictionServer,
    host: str = "127.0.0.1",
    port: int = 0,
    shutdown: asyncio.Event | None = None,
) -> asyncio.AbstractServer:
    """Expose *server* over newline-delimited JSON on ``host:port``.

    ``port=0`` binds an ephemeral port — read the real one off
    ``tcp.sockets[0].getsockname()``.  When a *shutdown* event is given,
    the wire op ``{"op": "shutdown"}`` sets it (used by
    :func:`serve_forever` for clean remote shutdown).
    """
    await server.start()
    return await asyncio.start_server(
        lambda reader, writer: _serve_connection(server, reader, writer, shutdown),
        host=host,
        port=port,
    )


async def _serve_forever_async(
    run_dir: str,
    *,
    host: str,
    port: int,
    max_batch: int,
    max_wait_ms: float,
    queue_depth: int,
    index: str | None,
    slow_query_ms: float | None,
) -> None:
    import signal

    from repro.obs.trace import Tracer, install_tracer

    # Arm a bounded in-memory tracer for the daemon's lifetime so the
    # dispatch/predictor span scopes actually record; the ring is only
    # read in-process (it never leaves unless a future op exposes it).
    install_tracer(Tracer())
    server = PredictionServer(
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        queue_depth=queue_depth,
        slow_query_ms=slow_query_ms,
    )
    await server.load_run(run_dir, index=index)
    shutdown = asyncio.Event()
    tcp = await start_tcp_server(server, host=host, port=port, shutdown=shutdown)
    bound_host, bound_port = tcp.sockets[0].getsockname()[:2]
    # Machine-parseable readiness line (the CI smoke script greps for it).
    print(
        f"REPRO-SERVE READY host={bound_host} port={bound_port} "
        f"run_dir={run_dir} generation={server.generation}",
        flush=True,
    )
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, shutdown.set)
        except (NotImplementedError, RuntimeError):  # non-Unix event loops
            pass
    await shutdown.wait()
    tcp.close()
    await tcp.wait_closed()
    await server.close(drain=True)
    print("REPRO-SERVE STOPPED", flush=True)


def serve_forever(
    run_dir: str,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch: int = 64,
    max_wait_ms: float = 2.0,
    queue_depth: int = 1024,
    index: str | None = "auto",
    slow_query_ms: float | None = None,
) -> None:
    """Blocking daemon entry point (the ``repro-kge serve`` command).

    Loads the run directory, serves until SIGINT/SIGTERM or a wire
    ``shutdown`` op, then drains gracefully.
    """
    asyncio.run(
        _serve_forever_async(
            str(run_dir),
            host=host,
            port=port,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            queue_depth=queue_depth,
            index=index,
            slow_query_ms=slow_query_ms,
        )
    )
