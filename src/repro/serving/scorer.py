"""Memory-bounded batched scoring shared by serving and evaluation.

:class:`BatchedScorer` is the one place where 1-vs-all score matrices
are produced: the :class:`~repro.serving.predictor.LinkPredictor` uses
it to answer top-k requests and the
:class:`~repro.eval.evaluator.LinkPredictionEvaluator` streams its eval
triples through it.  It adds two things on top of a raw model:

* **chunking** — a ``(b, num_entities)`` float64 score matrix for a big
  batch can dwarf RAM, so sweeps are computed in row chunks whose size
  is derived from an element budget (or fixed by the caller);
* **backend selection** — for the multi-embedding model it can swap in
  the :class:`~repro.serving.folded.RelationFoldedScorer` fast path,
  transparently refreshed when the model trains.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.base import CANDIDATE_SIDES, KGEModel
from repro.core.interaction import MultiEmbeddingModel
from repro.errors import ServingError
from repro.serving.folded import RelationFoldedScorer

#: Default budget: at most this many float64 score-matrix elements live at once.
DEFAULT_CHUNK_ELEMENTS = 1 << 24


class BatchedScorer:
    """Chunked 1-vs-all / candidate scoring over any :class:`KGEModel`.

    Parameters
    ----------
    model:
        The scorer to wrap.
    folded:
        ``"auto"`` (fold ω when the model is a multi-embedding one),
        ``True`` (require folding, error otherwise) or ``False`` (always
        call the model directly).  The folded path re-associates float
        operations, so callers needing bit-identical parity with the
        model's own einsum order — the evaluator — pass ``False``.
    chunk_size:
        Fixed number of query rows per backend call, or ``None`` to
        derive it from ``max_chunk_elements``.
    max_chunk_elements:
        Element budget for one ``(chunk, num_entities)`` score matrix.
    """

    def __init__(
        self,
        model: KGEModel,
        folded: bool | str = "auto",
        chunk_size: int | None = None,
        max_chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
    ) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ServingError("chunk_size must be >= 1")
        if max_chunk_elements < 1:
            raise ServingError("max_chunk_elements must be >= 1")
        self.model = model
        if folded == "auto":
            folded = isinstance(model, MultiEmbeddingModel)
        self._folded_scorer = RelationFoldedScorer(model) if folded else None
        self.chunk_size = int(chunk_size) if chunk_size is not None else None
        self.max_chunk_elements = int(max_chunk_elements)

    @property
    def uses_folding(self) -> bool:
        """Whether the relation-folded fast path is active."""
        return self._folded_scorer is not None

    def refresh(self) -> None:
        """Force-rebuild folded tensors from the model's current weights.

        Needed after in-place parameter surgery that bypasses
        ``train_step`` (and therefore never bumps ``scoring_version``).
        """
        if self._folded_scorer is not None:
            self._folded_scorer.refresh(force=True)

    @property
    def _backend(self) -> KGEModel | RelationFoldedScorer:
        if self._folded_scorer is not None:
            self._folded_scorer.refresh()
            return self._folded_scorer
        return self.model

    def effective_chunk_size(self) -> int:
        """Rows per chunk after applying the element budget."""
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, self.max_chunk_elements // max(1, self.model.num_entities))

    # ------------------------------------------------------------- sweeps
    def iter_all_scores(
        self, anchors: np.ndarray, relations: np.ndarray, side: str
    ) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(start, stop, scores)`` chunks of the 1-vs-all sweep.

        ``scores`` has shape ``(stop - start, num_entities)``.  Chunk
        boundaries affect values at most at the last-ulp level (BLAS
        kernels vary with batch size); *within* a row the relative order
        and exact ties of candidates are unaffected, which is what rank
        metrics and top-k depend on — the evaluator's chunking regression
        test pins metrics bit-identical across chunk sizes.
        """
        if side not in CANDIDATE_SIDES:
            raise ServingError(f"unknown side {side!r}; known: {CANDIDATE_SIDES}")
        anchors = np.asarray(anchors, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        if anchors.ndim != 1 or anchors.shape != relations.shape:
            raise ServingError("anchors and relations must be 1-D arrays of equal length")
        backend = self._backend
        sweep = backend.score_all_tails if side == "tail" else backend.score_all_heads
        chunk = self.effective_chunk_size()
        for start in range(0, len(anchors), chunk):
            stop = min(start + chunk, len(anchors))
            yield start, stop, sweep(anchors[start:stop], relations[start:stop])

    def iter_candidate_scores(
        self,
        anchors: np.ndarray,
        relations: np.ndarray,
        side: str,
        candidates: np.ndarray,
    ) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(start, stop, scores)`` chunks over a fixed candidate set.

        The candidate-shard analogue of :meth:`iter_all_scores`: every
        query row is scored against the same ``(c,)`` candidate ids,
        chunked over query rows with the same chunk geometry.  Sharded
        evaluation workers use this to sweep one entity shard while
        reusing the serving layer's chunking and backend selection.
        """
        if side not in CANDIDATE_SIDES:
            raise ServingError(f"unknown side {side!r}; known: {CANDIDATE_SIDES}")
        anchors = np.asarray(anchors, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        candidates = np.asarray(candidates, dtype=np.int64)
        if anchors.ndim != 1 or anchors.shape != relations.shape:
            raise ServingError("anchors and relations must be 1-D arrays of equal length")
        if candidates.ndim != 1:
            raise ServingError("candidates must be a shared 1-D id array")
        backend = self._backend
        chunk = self.effective_chunk_size()
        for start in range(0, len(anchors), chunk):
            stop = min(start + chunk, len(anchors))
            yield start, stop, backend.score_candidates(
                anchors[start:stop], relations[start:stop], candidates, side
            )

    def all_scores(self, anchors: np.ndarray, relations: np.ndarray, side: str) -> np.ndarray:
        """The full ``(b, num_entities)`` sweep, assembled from chunks."""
        anchors = np.asarray(anchors, dtype=np.int64)
        out = np.empty((len(anchors), self.model.num_entities), dtype=np.float64)
        for start, stop, scores in self.iter_all_scores(anchors, relations, side):
            out[start:stop] = scores
        return out

    # --------------------------------------------------------- point scores
    def score_triples(self, heads, tails, relations) -> np.ndarray:
        """Batch triple scores through the active backend."""
        return self._backend.score_triples(heads, tails, relations)

    def score_candidates(self, anchors, relations, candidates, side="tail") -> np.ndarray:
        """Candidate-set scores through the active backend."""
        return self._backend.score_candidates(anchors, relations, candidates, side)
