"""Relation-folded scoring for the multi-embedding model.

Eq. 8 scores ``S(h, t, r) = Σ_{ijk} ω_ijk ⟨h^(i), t^(j), r^(k)⟩``.  The
training-time einsum re-contracts ω with the relation embeddings on
*every* call, even though a serving workload scores the same relations
over and over.  Folding ω into a per-relation mixing tensor once,

    W_r[i, j, d] = Σ_k ω_ijk · r^(k)_d             (shape R × n_e × n_e × D)

removes the ``k`` axis from the per-query contraction — the same shape
of fast path RESCAL gets natively from its per-relation matrix ``W_r``
(diagonal in ``d`` here, so the cost stays linear in D).  For an
``n``-embedding model this cuts the inner-contraction flops by roughly
a factor ``n_r`` (4x for the quaternion model, 2x for ComplEx).

Queries are processed in per-relation groups so each group contracts
against one small ``(n_e, n_e, D)`` tensor; gathering ``folded[r]`` per
row would copy a ``(b, n_e, n_e, D)`` block and give the win back to
memory traffic.  Batches from a serving queue are heavily skewed toward
few relations, which makes the grouping essentially free.

The folded tensor is rebuilt lazily whenever the model's
``scoring_version`` changes, so a train step between requests can never
serve stale scores.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.interaction import MultiEmbeddingModel
from repro.errors import ServingError


class RelationFoldedScorer:
    """Drop-in scorer over a :class:`MultiEmbeddingModel` with ω pre-folded.

    Exposes the same scoring surface as the model (``score_triples``,
    ``score_all_tails``, ``score_all_heads``, ``score_candidates``) and
    produces scores equal to the model's up to float re-association.
    """

    def __init__(self, model: MultiEmbeddingModel) -> None:
        if not isinstance(model, MultiEmbeddingModel):
            raise ServingError(
                "relation folding requires a MultiEmbeddingModel; got "
                f"{type(model).__name__}"
            )
        self.model = model
        self.num_entities = model.num_entities
        self.num_relations = model.num_relations
        self._folded: np.ndarray | None = None
        self._version: int | None = None
        self.refresh()

    # ------------------------------------------------------------- folding
    @property
    def folded(self) -> np.ndarray:
        """The per-relation mixing tensor, shape ``(R, n_e, n_e, D)``."""
        self.refresh()
        assert self._folded is not None
        return self._folded

    def refresh(self, force: bool = False) -> bool:
        """Rebuild the folded tensor if the model's parameters changed.

        Returns True when a rebuild happened.
        """
        version = self.model.scoring_version
        if not force and self._folded is not None and version == self._version:
            return False
        # The compiled kernel folds from ω's nonzero terms only (the dense
        # kernel keeps the einsum, with its contraction path cached).
        self._folded = self.model.kernel.fold_relations(self.model.relation_embeddings)
        self._version = version
        # Ingested deltas grow the tables in place (always with a version
        # bump), so the cached id-space sizes resync here too.
        self.num_entities = self.model.num_entities
        self.num_relations = self.model.num_relations
        return True

    def _entity_flat(self) -> np.ndarray:
        return self.model.entity_embeddings.reshape(self.num_entities, -1)

    @staticmethod
    def _relation_groups(relations: np.ndarray) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(relation id, row indices)`` per distinct relation."""
        order = np.argsort(relations, kind="stable")
        ordered = relations[order]
        boundaries = np.flatnonzero(np.diff(ordered)) + 1
        for rows in np.split(order, boundaries):
            if len(rows):
                yield int(relations[rows[0]]), rows

    #: Below this mean rows-per-relation, the grouped loop's einsum setup
    #: overhead outweighs the gather copy and the batched form wins.
    _MIN_GROUP_ROWS = 8

    def _combine(self, vecs: np.ndarray, relations: np.ndarray, axis_spec: str) -> np.ndarray:
        """Contract anchor vectors with the folded tensor, grouped by relation.

        ``axis_spec`` is ``"ijd,bid->bjd"`` (anchor = head, mixing toward
        the tail slot) or ``"ijd,bjd->bid"`` (anchor = tail).  Batches too
        diverse in relations to amortise the group loop fall back to one
        gathered einsum over ``folded[relations]``.
        """
        folded = self.folded
        num_unique = len(np.unique(relations))
        if num_unique and len(relations) < self._MIN_GROUP_ROWS * num_unique:
            return np.einsum("b" + axis_spec, folded[relations], vecs, optimize=True)
        combined = np.empty_like(vecs)
        for relation, rows in self._relation_groups(relations):
            combined[rows] = np.einsum(
                axis_spec, folded[relation], vecs[rows], optimize=True
            )
        return combined

    # ------------------------------------------------------------- scoring
    def score_triples(self, heads, tails, relations) -> np.ndarray:
        """Eq. 8 scores via the folded tensor; shape ``(b,)``."""
        heads = np.asarray(heads, dtype=np.int64)
        tails = np.asarray(tails, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        entities = self.model.entity_embeddings
        folded = self.folded
        scores = np.empty(len(relations), dtype=np.float64)
        for relation, rows in self._relation_groups(relations):
            scores[rows] = np.einsum(
                "ijd,bid,bjd->b",
                folded[relation],
                entities[heads[rows]],
                entities[tails[rows]],
                optimize=True,
            )
        return scores

    def score_all_tails(self, heads, relations) -> np.ndarray:
        """All-entity tail sweep; shape ``(b, num_entities)``."""
        heads = np.asarray(heads, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        h_vecs = self.model.entity_embeddings[heads]
        combined = self._combine(h_vecs, relations, "ijd,bid->bjd")
        return combined.reshape(len(heads), -1) @ self._entity_flat().T

    def score_all_heads(self, tails, relations) -> np.ndarray:
        """All-entity head sweep; shape ``(b, num_entities)``."""
        tails = np.asarray(tails, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        t_vecs = self.model.entity_embeddings[tails]
        combined = self._combine(t_vecs, relations, "ijd,bjd->bid")
        return combined.reshape(len(tails), -1) @ self._entity_flat().T

    def score_candidates(self, anchors, relations, candidates, side="tail") -> np.ndarray:
        """Candidate-set scores via the folded tensor; shape ``(b, c)``."""
        anchors, relations, candidates = self.model._validate_candidate_query(
            anchors, relations, candidates, side
        )
        anchor_vecs = self.model.entity_embeddings[anchors]
        spec = "ijd,bid->bjd" if side == "tail" else "ijd,bjd->bid"
        combined = self._combine(anchor_vecs, relations, spec)
        flat = combined.reshape(len(anchors), -1)
        return np.einsum(
            "bf,bcf->bc", flat, self._entity_flat()[candidates], optimize=True
        )
