"""LRU cache for 1-vs-all score vectors.

A production link-prediction service sees highly skewed query
distributions (popular entities and relations repeat constantly), so
caching the ``(num_entities,)`` score vector of a ``(entity, relation,
side)`` query amortises the scoring cost across requests.  The cache is
a plain ordered-dict LRU with hit/miss/eviction counters; invalidation
is the caller's job (the :class:`~repro.serving.predictor.LinkPredictor`
clears it whenever the model's ``scoring_version`` changes).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import ServingError

#: Cache key: (entity id, relation id, side).
CacheKey = tuple[int, int, str]


@dataclass(frozen=True)
class CacheStats:
    """Counters accumulated over the lifetime of one cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUScoreCache:
    """Least-recently-used cache mapping query keys to score vectors.

    Stored vectors are marked read-only so a cached array handed to one
    request cannot be corrupted by another.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ServingError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: OrderedDict[CacheKey, np.ndarray] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: CacheKey) -> np.ndarray | None:
        """The cached vector for *key* (refreshing its recency), or None."""
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return entry

    def put(self, key: CacheKey, scores: np.ndarray) -> None:
        """Insert (or refresh) *key*, evicting the oldest entry when full."""
        frozen = np.array(scores, dtype=np.float64, copy=True)
        frozen.setflags(write=False)
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1
        self._entries[key] = frozen

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe the lifetime)."""
        self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        """A snapshot of the hit/miss/eviction counters."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._entries),
            capacity=self.capacity,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"LRUScoreCache(size={s.size}/{s.capacity}, hits={s.hits}, "
            f"misses={s.misses}, evictions={s.evictions})"
        )
