"""Sharded link-prediction evaluation with optional worker processes.

The serial :class:`~repro.eval.evaluator.LinkPredictionEvaluator` ranks
every eval triple against every entity on one core.  This module splits
that work into shards, scores the shards (in-process or in a pool of
worker processes that rebuild the model from a
:class:`~repro.parallel.payload.ModelPayload`), and merges per-shard
rank statistics into an :class:`~repro.eval.evaluator.EvaluationResult`
whose metrics are **bit-identical** to the serial evaluator's.

Two shard axes are supported:

* ``"triples"`` (default) — partition the eval triple set into
  contiguous blocks whose boundaries are aligned to the evaluator's
  ``batch_size``.  Every worker then issues *exactly* the per-chunk
  score sweeps the serial evaluator would (same arrays, same shapes,
  same BLAS calls), so the merged ranks are equal float-for-float by
  construction, for any shard and worker count.
* ``"entities"`` — partition the candidate entity space into contiguous
  id ranges.  Workers count, per query, how many candidates in their
  range score strictly above / exactly equal to the true score
  (:func:`~repro.eval.ranking.comparison_counts`); the counts are
  integers, so merging is order-invariant and the reassembled ranks are
  identical for any shard count.  Equality with the *serial* evaluator
  additionally relies on per-shard matmuls ordering candidates exactly
  as the full-width sweep does — guaranteed for exact ties that stem
  from exact arithmetic (identical inputs, zero ω terms) and pinned by
  the regression suite for every model family in the repo; prefer the
  ``"triples"`` axis when provable bit-exactness matters more than the
  smaller per-worker score matrices.

``workers=0`` executes the same shard plan in-process (no subprocesses,
no payload), which is both the portable fallback and the reference the
multi-worker paths are tested against.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.base import KGEModel
from repro.errors import EvaluationError
from repro.eval.evaluator import EvaluationResult, compute_side_ranks, side_queries
from repro.eval.metrics import DEFAULT_HITS_AT, compute_metrics, merge_metrics
from repro.eval.ranking import TIE_POLICIES, comparison_counts, ranks_from_counts
from repro.kg.graph import FilterIndex, KGDataset
from repro.kg.triples import TripleSet
from repro.parallel.payload import (
    ModelPayload,
    describe_shipping,
    model_from_payload,
    model_to_payload,
)
from repro.obs import registry as obs_registry
from repro.obs.trace import trace_scope
from repro.parallel.pool import in_worker_process, run_tasks
from repro.serving.scorer import BatchedScorer

logger = logging.getLogger(__name__)

SHARD_AXES = ("triples", "entities")


@dataclass(frozen=True)
class ShardPlan:
    """A partition of ``total`` items into contiguous shards.

    ``bounds`` has ``num_shards + 1`` ascending entries with
    ``bounds[0] == 0`` and ``bounds[-1] == total``; shard ``i`` covers
    ``[bounds[i], bounds[i + 1])``.  Shards may be empty when there are
    fewer alignment units than shards.
    """

    axis: str
    bounds: tuple[int, ...]

    @property
    def num_shards(self) -> int:
        return len(self.bounds) - 1

    @property
    def total(self) -> int:
        return self.bounds[-1]

    def slices(self) -> list[tuple[int, int]]:
        """Non-empty ``(start, stop)`` shard ranges, in order."""
        return [
            (start, stop)
            for start, stop in zip(self.bounds[:-1], self.bounds[1:])
            if stop > start
        ]


def plan_shards(total: int, num_shards: int, axis: str, align: int = 1) -> ShardPlan:
    """Partition ``total`` items into ``num_shards`` aligned shards.

    Boundaries are multiples of *align* (except the final bound), spread
    as evenly as the alignment allows.  For the ``"triples"`` axis the
    alignment is the evaluator batch size, which is what makes worker
    chunk geometry identical to the serial evaluator's.
    """
    if axis not in SHARD_AXES:
        raise EvaluationError(f"unknown shard axis {axis!r}; known: {SHARD_AXES}")
    if num_shards < 1:
        raise EvaluationError(f"shards must be >= 1, got {num_shards}")
    if align < 1:
        raise EvaluationError(f"alignment must be >= 1, got {align}")
    if total < 0:
        raise EvaluationError(f"total must be >= 0, got {total}")
    units = -(-total // align)  # number of align-sized blocks, last may be ragged
    bounds = [min(align * ((units * i) // num_shards), total) for i in range(num_shards)]
    bounds.append(total)
    return ShardPlan(axis=axis, bounds=tuple(bounds))


# ----------------------------------------------------------------- worker side
@dataclass
class _EvalContext:
    """Everything a shard task needs, rebuilt once per worker process.

    ``true_scores`` and ``filters`` are entity-axis precomputations
    (keyed by side) done once in the parent so every shard compares and
    filters against identical data instead of redoing per-query work
    per shard.
    """

    model: KGEModel
    triples: np.ndarray
    filter_index: FilterIndex | None
    batch_size: int
    tie_policy: str
    true_scores: Mapping[str, np.ndarray]
    filters: Mapping[str, list | None]


_EVAL_CTX: _EvalContext | None = None


def _init_eval_context(
    model_or_payload: KGEModel | ModelPayload,
    triples: np.ndarray,
    filter_index: FilterIndex | None,
    batch_size: int,
    tie_policy: str,
    true_scores: Mapping[str, np.ndarray],
    filters: Mapping[str, list | None],
) -> None:
    """Pool initializer: set up this process's evaluation context.

    Runs once per worker (or once in-process for ``workers=0``, where
    the live model object is passed instead of a payload).
    """
    global _EVAL_CTX
    model = (
        model_from_payload(model_or_payload)
        if isinstance(model_or_payload, ModelPayload)
        else model_or_payload
    )
    _EVAL_CTX = _EvalContext(
        model=model,
        triples=triples,
        filter_index=filter_index,
        batch_size=batch_size,
        tie_policy=tie_policy,
        true_scores=true_scores,
        filters=filters,
    )


def _clear_eval_context() -> None:
    """Drop the module-global context (frees model/filter references)."""
    global _EVAL_CTX
    _EVAL_CTX = None


def _run_shard_task(task: tuple[str, str, int, int]):
    """Execute one shard task: ``(axis, side, start, stop)``.

    Triple-axis tasks return the shard's rank array; entity-axis tasks
    return per-query ``(better, ties)`` counts over the whole triple
    set for the candidate id range ``[start, stop)``.
    """
    axis, side, start, stop = task
    ctx = _EVAL_CTX
    if ctx is None:
        raise EvaluationError("evaluation context not initialised in this process")
    telemetry = obs_registry.active_registry() is not None
    started = time.perf_counter() if telemetry else 0.0
    try:
        if axis == "triples":
            obs_registry.inc("eval.triples_ranked", stop - start)
            return compute_side_ranks(
                ctx.model,
                ctx.triples[start:stop],
                ctx.filter_index,
                side,
                batch_size=ctx.batch_size,
                tie_policy=ctx.tie_policy,
            )
        return _entity_shard_counts(ctx, side, start, stop)
    finally:
        if telemetry:
            obs_registry.inc("eval.shard_tasks")
            obs_registry.observe("eval.shard_seconds", time.perf_counter() - started)


def _entity_shard_counts(ctx, side: str, start: int, stop: int):
    anchors, relations, true_indices, _ = side_queries(
        ctx.triples, ctx.filter_index, side
    )
    true_scores = ctx.true_scores[side]
    side_filters = ctx.filters.get(side)
    candidates = np.arange(start, stop, dtype=np.int64)
    scorer = BatchedScorer(ctx.model, folded=False, chunk_size=ctx.batch_size)
    better = np.zeros(len(ctx.triples), dtype=np.int64)
    ties = np.zeros(len(ctx.triples), dtype=np.int64)
    for row_start, row_stop, block in scorer.iter_candidate_scores(
        anchors, relations, side, candidates
    ):
        better_block, ties_block = comparison_counts(
            block,
            true_scores[row_start:row_stop],
            start,
            true_indices[row_start:row_stop],
            side_filters[row_start:row_stop] if side_filters is not None else None,
        )
        better[row_start:row_stop] = better_block
        ties[row_start:row_stop] = ties_block
    return better, ties


# ----------------------------------------------------------------- parent side
class ShardedEvaluator:
    """Drop-in parallel counterpart of :class:`LinkPredictionEvaluator`.

    Parameters mirror the serial evaluator, plus:

    shards:
        Number of shards the work is split into (``>= 1``).
    workers:
        Worker processes scoring shards; ``0`` keeps everything
        in-process (same shard plan, same merged metrics).
    shard_axis:
        ``"triples"`` (default, bit-exact by construction) or
        ``"entities"`` (smaller per-task score matrices; see the module
        docstring for the exactness contract).
    """

    def __init__(
        self,
        dataset: KGDataset,
        shards: int = 1,
        workers: int = 0,
        shard_axis: str = "triples",
        batch_size: int = 512,
        filtered: bool = True,
        hits_at: tuple[int, ...] = DEFAULT_HITS_AT,
        tie_policy: str = "average",
        retries: int = 1,
        backoff: float = 0.0,
        task_timeout: float | None = None,
        fault_plan=None,
    ) -> None:
        if batch_size < 1:
            raise EvaluationError("batch_size must be >= 1")
        if retries < 0:
            raise EvaluationError(f"retries must be >= 0, got {retries}")
        if shards < 1:
            raise EvaluationError(f"shards must be >= 1, got {shards}")
        if workers < 0:
            raise EvaluationError(f"workers must be >= 0, got {workers}")
        if shard_axis not in SHARD_AXES:
            raise EvaluationError(
                f"unknown shard axis {shard_axis!r}; known: {SHARD_AXES}"
            )
        if tie_policy not in TIE_POLICIES:
            raise EvaluationError(
                f"unknown tie policy {tie_policy!r}; known: {TIE_POLICIES}"
            )
        self.dataset = dataset
        self.shards = int(shards)
        self.workers = int(workers)
        self.shard_axis = shard_axis
        self.batch_size = int(batch_size)
        self.filtered = bool(filtered)
        self.hits_at = tuple(hits_at)
        self.tie_policy = tie_policy
        #: Fault-tolerance knobs forwarded to the pool.  Shard results
        #: are deterministic in their inputs, so ``retries=1`` (default)
        #: transparently heals a worker lost to OOM/segfault without any
        #: risk of changing metrics; deterministic shard failures still
        #: fail fast.
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.task_timeout = task_timeout
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------ public
    def evaluate(
        self, model: KGEModel, split: str = "test", max_triples: int | None = None
    ) -> EvaluationResult:
        """Evaluate *model* on a named split, sharded per the constructor."""
        try:
            triples = self.dataset.splits[split]
        except KeyError:
            raise EvaluationError(f"unknown split {split!r}") from None
        return self.evaluate_triples(model, triples, split_name=split, max_triples=max_triples)

    def evaluate_triples(
        self,
        model: KGEModel,
        triples: TripleSet,
        split_name: str = "custom",
        max_triples: int | None = None,
    ) -> EvaluationResult:
        """Sharded evaluation of an explicit :class:`TripleSet`."""
        if len(triples) == 0:
            raise EvaluationError("cannot evaluate on an empty triple set")
        arr = triples.array
        if max_triples is not None and len(arr) > max_triples:
            arr = arr[:max_triples]
        filter_index = self.dataset.filter_index if self.filtered else None
        if self.shard_axis == "triples":
            plan = plan_shards(len(arr), self.shards, "triples", align=self.batch_size)
        else:
            plan = plan_shards(self.dataset.num_entities, self.shards, "entities")
        tail_ranks, head_ranks = self._side_ranks(model, arr, filter_index, plan)
        tail_metrics = compute_metrics(tail_ranks, self.hits_at)
        head_metrics = compute_metrics(head_ranks, self.hits_at)
        return EvaluationResult(
            overall=merge_metrics(tail_metrics, head_metrics),
            tail_side=tail_metrics,
            head_side=head_metrics,
            split=split_name,
        )

    # ----------------------------------------------------------------- helpers
    def _entity_axis_precompute(
        self, model: KGEModel, arr: np.ndarray, filter_index: FilterIndex | None
    ) -> tuple[dict[str, np.ndarray], dict[str, list | None]]:
        """Per-side true scores + filter lists, computed once in the parent.

        Entity-axis workers compare their candidate blocks against these
        reference scores, so every shard counts against the *same*
        floats no matter which process owns the true entity's shard.
        The per-query filter-id lists are likewise shard-independent —
        resolving them here (one pass, like the serial evaluator's)
        instead of once per shard keeps the Python-loop filter cost off
        the sharding multiplier.
        """
        scores: dict[str, np.ndarray] = {}
        filters: dict[str, list | None] = {}
        for side in ("tail", "head"):
            anchors, relations, true_indices, lookup = side_queries(
                arr, filter_index, side
            )
            scores[side] = model.score_candidates(
                anchors, relations, true_indices[:, None], side
            ).ravel()
            filters[side] = (
                [
                    lookup(int(anchor), int(relation))
                    for anchor, relation in zip(anchors, relations)
                ]
                if lookup is not None
                else None
            )
        return scores, filters

    def _side_ranks(
        self,
        model: KGEModel,
        arr: np.ndarray,
        filter_index: FilterIndex | None,
        plan: ShardPlan,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dispatch the shard plan and merge per-shard statistics."""
        slices = plan.slices()
        tasks = [
            (plan.axis, side, start, stop)
            for side in ("tail", "head")
            for start, stop in slices
        ]
        true_scores: dict[str, np.ndarray] = {}
        filters: dict[str, list | None] = {}
        if plan.axis == "entities":
            true_scores, filters = self._entity_axis_precompute(model, arr, filter_index)
        workers = self.workers
        if workers > 0 and (
            in_worker_process() or multiprocessing.current_process().daemon
        ):
            # Already inside a pool worker (e.g. a parallel-sweep child)
            # or a daemonic process: spawning a grandchild pool would
            # oversubscribe the machine (or be outright forbidden for
            # daemons).  The in-process path yields the same metrics.
            workers = 0
        shipped = model_to_payload(model) if workers > 0 else model
        if isinstance(shipped, ModelPayload):
            # The sharing win is observable: store-backed models ship
            # file paths, not table bytes, so per-worker dispatch cost
            # stays flat as the model grows.
            logger.info(
                "dispatching %d eval shards to %d workers — %s",
                len(tasks),
                workers,
                describe_shipping(shipped),
            )
        try:
            with trace_scope(
                "eval.sharded",
                axis=plan.axis,
                shards=len(tasks),
                workers=workers,
            ):
                outcomes = run_tasks(
                    _run_shard_task,
                    tasks,
                    workers=workers,
                    initializer=_init_eval_context,
                    initargs=(
                        shipped,
                        arr,
                        filter_index,
                        self.batch_size,
                        self.tie_policy,
                        true_scores,
                        filters,
                    ),
                    retries=self.retries,
                    backoff=self.backoff,
                    task_timeout=self.task_timeout,
                    fault_plan=self.fault_plan,
                )
        finally:
            # workers=0 installed the context in *this* process; drop it
            # so the model/filter references don't outlive the call.
            _clear_eval_context()
        failed = [outcome for outcome in outcomes if not outcome.ok]
        if failed:
            raise EvaluationError(
                f"{len(failed)} of {len(outcomes)} evaluation shards failed; first "
                f"worker traceback:\n{failed[0].error}"
            )
        per_side = len(slices)
        by_side = {
            "tail": [outcome.value for outcome in outcomes[:per_side]],
            "head": [outcome.value for outcome in outcomes[per_side:]],
        }
        results = []
        for side in ("tail", "head"):
            values = by_side[side]
            if plan.axis == "triples":
                results.append(np.concatenate(values))
            else:
                better = np.sum([value[0] for value in values], axis=0)
                ties = np.sum([value[1] for value in values], axis=0)
                results.append(ranks_from_counts(better, ties, self.tie_policy))
        return results[0], results[1]
