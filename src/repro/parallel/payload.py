"""In-memory model checkpoints for shipping models to worker processes.

Worker processes never receive a live model object: they receive a
:class:`ModelPayload` — the same ``(meta, arrays)`` state that disk
checkpoints store (:mod:`repro.core.serialization`), minus the
filesystem.  Rebuilding from the payload restores the embedding tables
bit-for-bit *and* the scoring-engine flag, so a worker-side model scores
bit-identically to the parent's — the property the sharded evaluator's
exactness guarantee rests on.

Store-backed models ship by reference: when a table is a whole-file
``.npy`` memory map (a memmap checkpoint or a
:class:`~repro.core.memstore.MemStore` entry), the payload records its
``(path, dtype, shape)`` instead of copying the bytes, and the worker
re-maps the same file read-only.  Every worker then shares the parent's
OS page-cache pages — the pickled payload shrinks from the full table
bytes to a file name, which :func:`describe_shipping` makes observable
at dispatch time (``nbytes`` logical vs bytes actually shipped).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.core.base import KGEModel
from repro.core.interaction import MultiEmbeddingModel
from repro.core.memstore import mappable_source, open_mapped
from repro.core.serialization import model_from_state, model_state
from repro.errors import ModelError

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ModelPayload:
    """A picklable, framework-free snapshot of a multi-embedding model.

    ``arrays`` holds the tables shipped by value; ``mapped`` records the
    ``(path, dtype, shape)`` of tables shipped by reference to a
    memory-mapped ``.npy`` file the worker re-maps.
    """

    meta: dict
    arrays: dict[str, np.ndarray]
    mapped: dict[str, tuple[str, str, tuple[int, ...]]] = field(default_factory=dict)

    def nbytes(self) -> int:
        """Total logical array bytes the rebuilt model will reference."""
        copied = sum(array.nbytes for array in self.arrays.values())
        referenced = sum(
            np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64))
            for _, dtype, shape in self.mapped.values()
        )
        return int(copied + referenced)

    def shipped_nbytes(self) -> int:
        """Array bytes actually serialized per worker (by-value tables only)."""
        return int(sum(array.nbytes for array in self.arrays.values()))


def describe_shipping(payload: ModelPayload) -> str:
    """One-line dispatch summary: logical size vs bytes actually shipped."""
    return (
        f"model payload: {payload.nbytes()} array bytes logical, "
        f"{payload.shipped_nbytes()} shipped by value, "
        f"{len(payload.mapped)} table(s) shipped as memmap paths"
    )


def model_to_payload(model: KGEModel) -> ModelPayload:
    """Snapshot *model* for transport to worker processes.

    In-memory arrays are copied so later in-place training in the parent
    cannot race the payload (fork shares pages; spawn pickles — either
    way the payload must be frozen at snapshot time).  Whole-file
    ``.npy`` memory maps are *not* copied: the file itself is the frozen
    snapshot (checkpoint stores are immutable-by-replacement), so only
    the path travels and every worker maps the same pages.
    """
    if not isinstance(model, MultiEmbeddingModel):
        raise ModelError(
            "parallel workers rebuild models from checkpoint state, which only "
            f"multi-embedding models support; got {type(model).__name__}. "
            "Use workers=0 for in-process sharding of other model classes."
        )
    meta, arrays = model_state(model)
    copied: dict[str, np.ndarray] = {}
    mapped: dict[str, tuple[str, str, tuple[int, ...]]] = {}
    for name, array in arrays.items():
        source = mappable_source(array)
        if source is not None:
            mapped[name] = source
        else:
            copied[name] = np.array(array)
    payload = ModelPayload(meta=meta, arrays=copied, mapped=mapped)
    if mapped:
        logger.info("%s", describe_shipping(payload))
    return payload


def model_from_payload(payload: ModelPayload) -> MultiEmbeddingModel:
    """Rebuild the model inside a worker; scores bit-identical to the source.

    By-reference tables are re-mapped read-only from their recorded
    paths (layout-checked against the recorded dtype/shape, so a store
    replaced mid-flight fails loudly instead of scoring garbage).
    """
    arrays = dict(payload.arrays)
    for name, (path, dtype, shape) in payload.mapped.items():
        arrays[name] = open_mapped(path, dtype=dtype, shape=shape)
    return model_from_state(payload.meta, arrays)
