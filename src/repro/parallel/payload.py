"""In-memory model checkpoints for shipping models to worker processes.

Worker processes never receive a live model object: they receive a
:class:`ModelPayload` — the same ``(meta, arrays)`` state that disk
checkpoints store (:mod:`repro.core.serialization`), minus the
filesystem.  Rebuilding from the payload restores the embedding tables
bit-for-bit *and* the scoring-engine flag, so a worker-side model scores
bit-identically to the parent's — the property the sharded evaluator's
exactness guarantee rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import KGEModel
from repro.core.interaction import MultiEmbeddingModel
from repro.core.serialization import model_from_state, model_state
from repro.errors import ModelError


@dataclass(frozen=True)
class ModelPayload:
    """A picklable, framework-free snapshot of a multi-embedding model."""

    meta: dict
    arrays: dict[str, np.ndarray]

    def nbytes(self) -> int:
        """Total array payload size (what pickling ships per worker)."""
        return int(sum(array.nbytes for array in self.arrays.values()))


def model_to_payload(model: KGEModel) -> ModelPayload:
    """Snapshot *model* for transport to worker processes.

    Arrays are copied so later in-place training in the parent cannot
    race the payload (fork shares pages; spawn pickles — either way the
    payload must be frozen at snapshot time).
    """
    if not isinstance(model, MultiEmbeddingModel):
        raise ModelError(
            "parallel workers rebuild models from checkpoint state, which only "
            f"multi-embedding models support; got {type(model).__name__}. "
            "Use workers=0 for in-process sharding of other model classes."
        )
    meta, arrays = model_state(model)
    return ModelPayload(meta=meta, arrays={k: np.array(v) for k, v in arrays.items()})


def model_from_payload(payload: ModelPayload) -> MultiEmbeddingModel:
    """Rebuild the model inside a worker; scores bit-identical to the source."""
    return model_from_state(payload.meta, dict(payload.arrays))
