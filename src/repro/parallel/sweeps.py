"""Worker-side machinery for parallel hyperparameter sweeps.

:func:`repro.pipeline.sweep.sweep` expands a grid into child
:class:`~repro.pipeline.config.RunConfig`\\ s; this module runs those
children — in-process or across a worker pool — with three guarantees:

* **determinism** — a child's result depends only on its config (every
  RNG stream derives from config seeds), so worker count and scheduling
  order cannot change any run's artifacts;
* **crash isolation** — a child that raises records ``status.json`` with
  ``status: "failed"`` (plus the traceback) in its run directory and the
  sweep continues; the parent decides whether to re-raise;
* **resumability** — completed children leave ``status.json`` carrying a
  hash of their config, so re-running the same sweep over the same
  ``run_root`` skips them (see :func:`load_cached_child`).

Worker processes never receive live Python objects from the parent
beyond an optional pinned dataset: each child rebuilds its dataset from
its config through a per-process cache, exactly like a fresh serial run
would.
"""

from __future__ import annotations

import hashlib
import json
import traceback
from pathlib import Path

from repro.errors import ArtifactError, TransientError
from repro.eval.metrics import RankingMetrics
from repro.kg.graph import KGDataset
from repro.pipeline.config import RunConfig
from repro.pipeline.runner import (
    RunResult,
    _metrics_from_dict,
    _metrics_to_dict,
    run_pipeline,
)
from repro.reliability.atomic import atomic_write_json
from repro.reliability.manifest import verify_manifest

_STATUS_FILE = "status.json"
_METRICS_FILE = "metrics.json"


def config_hash(config: RunConfig) -> str:
    """Stable content hash of a config — the sweep result-cache key."""
    return hashlib.sha256(config.to_json().encode("utf-8")).hexdigest()


def write_status(
    run_dir: str | Path, status: str, config_sha256: str, error: str | None = None
) -> None:
    """Record a child's outcome in its run directory.

    Deliberately timestamp-free: two runs of the same sweep must produce
    byte-identical run-dir trees.
    """
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    payload = {"status": status, "config_sha256": config_sha256, "error": error}
    atomic_write_json(run_dir / _STATUS_FILE, payload, sort_keys=True)


def read_status(run_dir: str | Path) -> dict | None:
    """The ``status.json`` payload of a child run dir, or ``None``."""
    path = Path(run_dir) / _STATUS_FILE
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def load_cached_child(
    run_dir: str | Path, config: RunConfig
) -> dict[str, RankingMetrics] | None:
    """Metrics of a previously *completed* child with an identical config.

    Returns ``None`` (run the child) unless ``status.json`` reports
    ``completed`` **and** the stored config hash matches — a stale dir
    from an edited grid is re-run, never silently reused.  Failed
    children are always retried.

    Integrity: when the child dir carries a sha256 manifest, every
    recorded artifact is verified before the cache hit is honoured — a
    truncated checkpoint or torn ``metrics.json`` (a crash mid-write
    under pre-atomic IO, or plain bit rot) makes the child re-run from
    scratch instead of resuming onto corrupt state.  That re-run is the
    "fall back to the last good state" contract: resume never crashes
    on a damaged child, it heals it.
    """
    status = read_status(run_dir)
    if not status or status.get("status") != "completed":
        return None
    if status.get("config_sha256") != config_hash(config):
        return None
    metrics_path = Path(run_dir) / _METRICS_FILE
    if not metrics_path.exists():
        return None
    try:
        verify_manifest(run_dir)
        stored = json.loads(metrics_path.read_text(encoding="utf-8"))
    except (ArtifactError, OSError, json.JSONDecodeError):
        return None
    return {split: _metrics_from_dict(data) for split, data in stored.items()}


# ----------------------------------------------------------------- worker side
#: Per-process dataset cache, keyed by the dataset section's JSON — a
#: worker running several children of one sweep builds the graph once,
#: mirroring the serial sweep's parent-side cache.
_DATASET_CACHE: dict[str, KGDataset] = {}

#: Dataset pinned by the parent for every child (via the pool initializer).
_PINNED_DATASET: KGDataset | None = None


def _init_sweep_context(pinned_dataset: KGDataset | None) -> None:
    global _PINNED_DATASET
    _PINNED_DATASET = pinned_dataset
    _DATASET_CACHE.clear()


def child_dataset(
    config: RunConfig,
    cache: dict[str, KGDataset],
    pinned: KGDataset | None = None,
) -> KGDataset:
    """The dataset for one sweep child, built at most once per *cache*.

    The single cache-key scheme shared by serial sweeps (parent-side
    cache dict) and pool workers (their process-global cache): children
    whose ``dataset`` sections serialize identically share one build.
    """
    if pinned is not None:
        return pinned
    key = json.dumps(
        {"generator": config.dataset.generator, "params": config.dataset.params},
        sort_keys=True,
        default=str,
    )
    dataset = cache.get(key)
    if dataset is None:
        dataset = config.dataset.build()
        cache[key] = dataset
    return dataset


def run_sweep_child(task: dict) -> dict:
    """Execute one sweep child end-to-end inside this process.

    ``task`` carries ``{"config": <RunConfig dict>, "run_dir": str|None}``.
    Returns a picklable summary — failures come back as
    ``{"status": "failed", "error": <traceback>}`` and are also recorded
    in the run dir, so one bad grid point cannot kill the sweep.  The
    one exception to "never raises": a :class:`TransientError` (e.g. an
    injected fault) records its failed status, then propagates so the
    pool's retry machinery can classify it retryable and heal the child
    — a deterministic child failure must *not* be retried, a transient
    one must not be terminal.
    """
    config = RunConfig.from_dict(task["config"])
    run_dir = task.get("run_dir")
    digest = config_hash(config)
    try:
        dataset = child_dataset(config, _DATASET_CACHE, _PINNED_DATASET)
        result: RunResult = run_pipeline(config, dataset=dataset, run_dir=run_dir)
        if run_dir is not None:
            write_status(run_dir, "completed", digest)
        return {
            "status": "completed",
            "metrics": {
                split: _metrics_to_dict(m) for split, m in result.metrics.items()
            },
        }
    except TransientError:
        if run_dir is not None:
            write_status(run_dir, "failed", digest, error=traceback.format_exc())
        raise
    except BaseException:  # noqa: BLE001 — crash isolation is the contract
        error = traceback.format_exc()
        if run_dir is not None:
            write_status(run_dir, "failed", digest, error=error)
        return {"status": "failed", "error": error}


def metrics_from_summary(summary: dict) -> dict[str, RankingMetrics] | None:
    """Rebuild the metrics mapping from a :func:`run_sweep_child` summary."""
    if summary.get("metrics") is None:
        return None
    return {
        split: _metrics_from_dict(data) for split, data in summary["metrics"].items()
    }
