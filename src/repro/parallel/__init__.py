"""Parallel execution engine: process pools, sharded eval, parallel sweeps.

The engine has three layers:

* :mod:`repro.parallel.pool` — the one process-pool primitive
  (:func:`~repro.parallel.pool.run_tasks`) with an in-process
  ``workers=0`` fallback and per-task crash capture;
* :mod:`repro.parallel.payload` — in-memory model checkpoints so worker
  processes rebuild bit-identical scorers without touching disk;
* two consumers: :mod:`repro.parallel.sharded_eval` (sharded link-
  prediction evaluation, metrics bit-identical to the serial evaluator)
  and :mod:`repro.parallel.sweeps` (crash-isolated, resumable sweep
  children for :func:`repro.pipeline.sweep.sweep`).

Submodules are imported lazily (PEP 562): ``sweeps`` imports the
pipeline runner, which itself reaches back here for sharded evaluation,
so eager imports would cycle.
"""

from __future__ import annotations

from repro._lazy import lazy_exports

_LAZY_EXPORTS = {
    "TaskOutcome": "repro.parallel.pool",
    "default_start_method": "repro.parallel.pool",
    "run_tasks": "repro.parallel.pool",
    "ModelPayload": "repro.parallel.payload",
    "model_from_payload": "repro.parallel.payload",
    "model_to_payload": "repro.parallel.payload",
    "SHARD_AXES": "repro.parallel.sharded_eval",
    "ShardPlan": "repro.parallel.sharded_eval",
    "ShardedEvaluator": "repro.parallel.sharded_eval",
    "plan_shards": "repro.parallel.sharded_eval",
    "config_hash": "repro.parallel.sweeps",
    "load_cached_child": "repro.parallel.sweeps",
    "read_status": "repro.parallel.sweeps",
    "run_sweep_child": "repro.parallel.sweeps",
    "write_status": "repro.parallel.sweeps",
}

__all__ = sorted(_LAZY_EXPORTS)

__getattr__, __dir__ = lazy_exports(__name__, globals(), _LAZY_EXPORTS)
