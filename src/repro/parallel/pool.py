"""Process-pool execution primitives for the parallel engine.

:func:`run_tasks` is the one place worker processes are created: both
sharded evaluation and parallel sweeps funnel their work through it.  It
deliberately has a tiny contract —

* ``workers=0`` runs every task in-process (no subprocess, no pickling),
  so callers get a deterministic fallback with identical semantics and
  the parallel paths stay testable without multiprocessing;
* ``workers>=1`` runs tasks on a
  :class:`~concurrent.futures.ProcessPoolExecutor`, with per-worker
  state set up once through *initializer*/*initargs* instead of being
  re-pickled per task;
* a task that raises never kills the batch — every task yields a
  :class:`TaskOutcome` carrying either the value or the formatted
  worker traceback, and the caller decides whether failure is fatal
  (evaluation) or isolated (sweeps).  Even *hard* worker death (OOM
  kill, segfault, a crashing initializer) comes back as error outcomes
  rather than a hang: the executor marks the pool broken and every
  unfinished task reports it (``multiprocessing.Pool.map`` would
  respawn workers and block forever on the lost task).

Results always come back in task order, regardless of which worker
finished first.
"""

from __future__ import annotations

import multiprocessing
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Sequence

from repro.errors import ConfigError


#: True in processes forked/spawned by :func:`run_tasks` (set by the
#: worker bootstrap).  ProcessPoolExecutor workers are *not* daemonic
#: (since Python 3.9), so the ``daemon`` flag cannot be used to detect
#: "I am already a pool worker"; consumers that must not nest pools
#: (e.g. sharded evaluation inside a sweep child) check this instead.
_IN_WORKER_PROCESS = False


def in_worker_process() -> bool:
    """Whether the current process is a :func:`run_tasks` pool worker."""
    return _IN_WORKER_PROCESS


def _worker_bootstrap(initializer: Callable[..., None] | None, initargs: tuple) -> None:
    """Per-worker setup: mark the process, then run the caller's initializer."""
    global _IN_WORKER_PROCESS
    _IN_WORKER_PROCESS = True
    if initializer is not None:
        initializer(*initargs)


@dataclass(frozen=True)
class TaskOutcome:
    """The result of one task: its value, or the error that ate it."""

    index: int
    value: Any = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def default_start_method() -> str:
    """``"fork"`` where available (cheap, inherits page cache), else ``"spawn"``."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _call_captured(fn: Callable[[Any], Any], indexed_task: tuple[int, Any]) -> TaskOutcome:
    """Run one task, converting any exception into an error outcome."""
    index, task = indexed_task
    try:
        return TaskOutcome(index=index, value=fn(task))
    except BaseException:  # noqa: BLE001 — worker tracebacks must travel home
        return TaskOutcome(index=index, error=traceback.format_exc())


def run_tasks(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: int = 0,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    start_method: str | None = None,
) -> list[TaskOutcome]:
    """Apply *fn* to every task, optionally across worker processes.

    Parameters
    ----------
    fn:
        Module-level callable (it must be picklable when ``workers>=1``).
    tasks:
        The work items, applied in order.
    workers:
        ``0`` — in-process execution; ``>=1`` — pool of that many
        processes.  The pool is sized down to ``len(tasks)`` so idle
        workers are never forked.
    initializer, initargs:
        Per-worker setup, run once per process before any task (the
        standard :class:`multiprocessing.Pool` contract).  With
        ``workers=0`` the initializer runs once in-process, so both
        modes see identical module state.
    start_method:
        ``"fork"``/``"spawn"``/``"forkserver"`` override; defaults to
        :func:`default_start_method`.
    """
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    tasks = list(tasks)
    if not tasks:
        return []
    indexed = list(enumerate(tasks))
    if workers == 0:
        if initializer is not None:
            initializer(*initargs)
        return [_call_captured(fn, item) for item in indexed]
    context = multiprocessing.get_context(start_method or default_start_method())
    processes = min(workers, len(tasks))
    outcomes: list[TaskOutcome] = []
    with ProcessPoolExecutor(
        max_workers=processes,
        mp_context=context,
        initializer=_worker_bootstrap,
        initargs=(initializer, initargs),
    ) as pool:
        futures = [pool.submit(partial(_call_captured, fn), item) for item in indexed]
        for (index, _), future in zip(indexed, futures):
            try:
                outcomes.append(future.result())
            except BaseException as error:  # noqa: BLE001 — BrokenProcessPool et al.
                outcomes.append(
                    TaskOutcome(
                        index=index,
                        error=(
                            "worker process died before returning "
                            f"({type(error).__name__}: {error})"
                        ),
                    )
                )
    return outcomes
