"""Process-pool execution primitives for the parallel engine.

:func:`run_tasks` is the one place worker processes are created: both
sharded evaluation and parallel sweeps funnel their work through it.  It
deliberately has a tiny contract —

* ``workers=0`` runs every task in-process (no subprocess, no pickling),
  so callers get a deterministic fallback with identical semantics and
  the parallel paths stay testable without multiprocessing;
* ``workers>=1`` runs tasks on a
  :class:`~concurrent.futures.ProcessPoolExecutor`, with per-worker
  state set up once through *initializer*/*initargs* instead of being
  re-pickled per task;
* a task that raises never kills the batch — every task yields a
  :class:`TaskOutcome` carrying either the value or the formatted
  worker traceback, and the caller decides whether failure is fatal
  (evaluation) or isolated (sweeps).  Even *hard* worker death (OOM
  kill, segfault, a crashing initializer) comes back as error outcomes
  rather than a hang: the executor marks the pool broken and every
  unfinished task reports it (``multiprocessing.Pool.map`` would
  respawn workers and block forever on the lost task).

On top of that sits the fault-tolerance contract (``retries=``,
``task_timeout=``, ``backoff=``):

* failures are **classified** — a task that dies with a
  :class:`~repro.errors.TransientError` (including injected faults), a
  hard worker death, or a timeout is *retryable*; any other exception is
  deterministic and never retried (re-running a ``ValueError`` burns
  cycles to fail identically);
* retryable failures are re-run on a **fresh pool**, up to *retries*
  extra attempts, sleeping ``backoff * 2**attempt`` seconds between
  attempts (deterministic exponential backoff — no jitter, so chaos
  tests replay exactly);
* ``task_timeout`` bounds how long the caller waits on any single
  future; on expiry the pool's workers are terminated and every
  uncollected task comes back as a retryable timeout outcome
  (``workers=0`` cannot preempt a running function, so the timeout is
  ignored in-process).

Results always come back in task order, regardless of which worker
finished first.  Retries cannot change results: every caller's task
functions are deterministic in their inputs (the repository-wide seed
discipline), so a healed task is bit-identical to one that never failed.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, replace
from functools import partial
from typing import Any, Callable, Sequence

from repro.errors import ConfigError, TransientError
from repro.obs import registry as obs_registry
from repro.obs import trace as obs_trace
from repro.obs.registry import MetricsRegistry, MetricsSnapshot
from repro.reliability import faults
from repro.reliability.faults import FaultInjector, FaultPlan

#: Injection site fired immediately before each task body runs.  The
#: context is ``"task:<index>;attempt:<n>"`` so plans can target one
#: deterministic (task, attempt) pair — see :mod:`repro.reliability.faults`.
TASK_SITE = "pool.task"


#: True in processes forked/spawned by :func:`run_tasks` (set by the
#: worker bootstrap).  ProcessPoolExecutor workers are *not* daemonic
#: (since Python 3.9), so the ``daemon`` flag cannot be used to detect
#: "I am already a pool worker"; consumers that must not nest pools
#: (e.g. sharded evaluation inside a sweep child) check this instead.
_IN_WORKER_PROCESS = False


def in_worker_process() -> bool:
    """Whether the current process is a :func:`run_tasks` pool worker."""
    return _IN_WORKER_PROCESS


def _worker_bootstrap(
    initializer: Callable[..., None] | None,
    initargs: tuple,
    fault_plan: FaultPlan | None,
    telemetry: bool = False,
) -> None:
    """Per-worker setup: mark the process, arm faults, run the initializer.

    ``telemetry`` mirrors whether the *parent* had a metrics registry
    installed when the pool was built: the flag (not the registry — it
    is process-local state) ships across the process boundary, and the
    worker arms a private registry so per-task snapshot capture in
    :func:`_call_captured` switches on.
    """
    global _IN_WORKER_PROCESS
    _IN_WORKER_PROCESS = True
    if fault_plan is not None:
        faults.install_fault_injector(FaultInjector(fault_plan))
    if telemetry:
        obs_registry.install_metrics_registry(MetricsRegistry())
    if initializer is not None:
        initializer(*initargs)


@dataclass(frozen=True)
class TaskOutcome:
    """The result of one task: its value, or the error that ate it.

    ``retryable`` marks failures the pool may heal by re-running
    (transient exceptions, worker death, timeouts); ``attempts`` counts
    how many times the task actually ran (1 = first try succeeded).
    ``metrics`` carries the task's private metrics-registry snapshot
    when telemetry was armed (``None`` otherwise); :func:`run_tasks`
    merges the snapshot of each task's *final* attempt into the
    caller's registry, so a retried task counts exactly once.
    """

    index: int
    value: Any = None
    error: str | None = None
    retryable: bool = False
    attempts: int = 1
    metrics: MetricsSnapshot | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def default_start_method() -> str:
    """``"fork"`` where available (cheap, inherits page cache), else ``"spawn"``."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _call_captured(
    fn: Callable[[Any], Any], attempt: int, indexed_task: tuple[int, Any]
) -> TaskOutcome:
    """Run one task, converting any exception into a classified outcome.

    When telemetry is armed (a registry is active in this process), the
    task runs against a *fresh* per-attempt registry and its snapshot
    travels home on the outcome — so metrics from a failed attempt are
    dropped when a retry supersedes it, and long-lived workers never
    leak one task's counts into another's.
    """
    index, task = indexed_task
    context = f"task:{index};attempt:{attempt}"
    telemetry = obs_registry.active_registry() is not None
    task_registry = MetricsRegistry() if telemetry else None
    previous = obs_registry.install_metrics_registry(task_registry) if telemetry else None
    try:
        with obs_trace.trace_scope("pool.task", context=context):
            faults.fire(TASK_SITE, context=context)
            outcome = TaskOutcome(index=index, value=fn(task))
    except TransientError:
        outcome = TaskOutcome(index=index, error=traceback.format_exc(), retryable=True)
    except BaseException:  # noqa: BLE001 — worker tracebacks must travel home
        outcome = TaskOutcome(index=index, error=traceback.format_exc())
    finally:
        if telemetry:
            obs_registry.install_metrics_registry(previous)
    if task_registry is not None:
        outcome = replace(outcome, metrics=task_registry.snapshot())
    return outcome


def _pool_attempt(
    fn: Callable[[Any], Any],
    indexed: list[tuple[int, Any]],
    workers: int,
    initializer: Callable[..., None] | None,
    initargs: tuple,
    start_method: str | None,
    task_timeout: float | None,
    fault_plan: FaultPlan | None,
    attempt: int,
    telemetry: bool,
) -> list[TaskOutcome]:
    """One executor lifetime: submit *indexed*, collect classified outcomes."""
    context = multiprocessing.get_context(start_method or default_start_method())
    pool = ProcessPoolExecutor(
        max_workers=min(workers, len(indexed)),
        mp_context=context,
        initializer=_worker_bootstrap,
        initargs=(initializer, initargs, fault_plan, telemetry),
    )
    outcomes: list[TaskOutcome] = []
    torn_down = False
    try:
        futures = [
            pool.submit(partial(_call_captured, fn, attempt), item) for item in indexed
        ]
        for (index, _), future in zip(indexed, futures):
            if torn_down:
                outcomes.append(
                    TaskOutcome(
                        index=index,
                        error="task abandoned after pool teardown (earlier timeout)",
                        retryable=True,
                    )
                )
                continue
            try:
                outcomes.append(future.result(timeout=task_timeout))
            except FuturesTimeoutError:
                # The worker may be wedged; terminate the whole pool and
                # mark everything uncollected retryable.  Retrying more
                # than strictly necessary is only a latency cost — task
                # results are deterministic.
                torn_down = True
                for process in getattr(pool, "_processes", {}).values():
                    process.terminate()
                outcomes.append(
                    TaskOutcome(
                        index=index,
                        error=f"task timed out after {task_timeout}s and was abandoned",
                        retryable=True,
                    )
                )
            except BaseException as error:  # noqa: BLE001 — BrokenProcessPool et al.
                outcomes.append(
                    TaskOutcome(
                        index=index,
                        error=(
                            "worker process died before returning "
                            f"({type(error).__name__}: {error})"
                        ),
                        retryable=True,
                    )
                )
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
    return outcomes


def _in_process_attempt(
    fn: Callable[[Any], Any],
    indexed: list[tuple[int, Any]],
    initializer: Callable[..., None] | None,
    initargs: tuple,
    fault_plan: FaultPlan | None,
    attempt: int,
) -> list[TaskOutcome]:
    """The ``workers=0`` twin of :func:`_pool_attempt` (same classification)."""
    previous = None
    installed = fault_plan is not None
    if installed:
        previous = faults.install_fault_injector(FaultInjector(fault_plan))
    try:
        if initializer is not None:
            initializer(*initargs)
        return [_call_captured(fn, attempt, item) for item in indexed]
    finally:
        if installed:
            faults.install_fault_injector(previous)


def run_tasks(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: int = 0,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    start_method: str | None = None,
    retries: int = 0,
    task_timeout: float | None = None,
    backoff: float = 0.0,
    fault_plan: FaultPlan | None = None,
) -> list[TaskOutcome]:
    """Apply *fn* to every task, optionally across worker processes.

    Parameters
    ----------
    fn:
        Module-level callable (it must be picklable when ``workers>=1``).
    tasks:
        The work items, applied in order.
    workers:
        ``0`` — in-process execution; ``>=1`` — pool of that many
        processes.  The pool is sized down to ``len(tasks)`` so idle
        workers are never forked.
    initializer, initargs:
        Per-worker setup, run once per process before any task (the
        standard :class:`multiprocessing.Pool` contract).  With
        ``workers=0`` the initializer runs once in-process, so both
        modes see identical module state.
    start_method:
        ``"fork"``/``"spawn"``/``"forkserver"`` override; defaults to
        :func:`default_start_method`.
    retries:
        Extra attempts granted to *retryable* failures (transient
        exceptions, worker death, timeouts).  Deterministic failures
        are never retried.  Each retry round runs on a fresh pool, so a
        broken executor from a hard crash cannot poison the re-run.
    task_timeout:
        Per-future wait ceiling in seconds; expiry tears the pool down
        and marks uncollected tasks retryable.  Ignored with
        ``workers=0`` (a running function cannot be preempted in-process).
    backoff:
        Base of the deterministic exponential backoff: the pool sleeps
        ``backoff * 2**round`` seconds before retry round ``round``
        (0-based).  ``0.0`` (default) retries immediately.
    fault_plan:
        Optional :class:`~repro.reliability.faults.FaultPlan` armed in
        every worker (and in-process for ``workers=0``); the hook that
        makes chaos tests reproducible.
    """
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    if retries < 0:
        raise ConfigError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise ConfigError(f"backoff must be >= 0, got {backoff}")
    if task_timeout is not None and task_timeout <= 0:
        raise ConfigError(f"task_timeout must be > 0 or None, got {task_timeout}")
    tasks = list(tasks)
    if not tasks:
        return []
    telemetry = obs_registry.active_registry() is not None
    remaining = list(enumerate(tasks))
    results: dict[int, TaskOutcome] = {}
    for attempt in range(retries + 1):
        if attempt and backoff:
            time.sleep(backoff * (2 ** (attempt - 1)))
        if workers == 0:
            attempt_outcomes = _in_process_attempt(
                fn, remaining, initializer, initargs, fault_plan, attempt
            )
        else:
            attempt_outcomes = _pool_attempt(
                fn,
                remaining,
                workers,
                initializer,
                initargs,
                start_method,
                task_timeout,
                fault_plan,
                attempt,
                telemetry,
            )
        for outcome in attempt_outcomes:
            results[outcome.index] = replace(outcome, attempts=attempt + 1)
        remaining = [
            (outcome.index, tasks[outcome.index])
            for outcome in attempt_outcomes
            if not outcome.ok and outcome.retryable
        ]
        if not remaining:
            break
    ordered = [results[index] for index in sorted(results)]
    parent = obs_registry.active_registry()
    if parent is not None:
        # Fold each task's *final* attempt home: earlier failed attempts
        # were overwritten above, so a retried task contributes exactly
        # one snapshot and crashed attempts (no outcome at all) none.
        for outcome in ordered:
            if outcome.metrics is not None:
                parent.merge(outcome.metrics)
        parent.inc("pool.tasks", len(ordered))
        parent.inc("pool.task_attempts", sum(o.attempts for o in ordered))
        parent.inc("pool.task_failures", sum(1 for o in ordered if not o.ok))
    return ordered
