"""Training harness: negative sampling, batching, trainer, callbacks."""

from repro.training.batching import iterate_batches, num_batches
from repro.training.callbacks import (
    ConsoleLogger,
    EarlyStopping,
    EpochRecord,
    TrainingHistory,
)
from repro.training.negatives import BernoulliNegativeSampler, UniformNegativeSampler
from repro.training.trainer import Trainer, TrainingConfig, TrainingResult, train_model

__all__ = [
    "BernoulliNegativeSampler",
    "ConsoleLogger",
    "EarlyStopping",
    "EpochRecord",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "TrainingResult",
    "UniformNegativeSampler",
    "iterate_batches",
    "num_batches",
    "train_model",
]
