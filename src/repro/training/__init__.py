"""Training harness: negative sampling, batching, trainer, callbacks."""

from repro.training.batching import iterate_batches, num_batches
from repro.training.callbacks import (
    ConsoleLogger,
    EarlyStopping,
    EpochRecord,
    TrainingHistory,
)
from repro.training.negatives import (
    NEGATIVE_SAMPLERS,
    BernoulliNegativeSampler,
    UniformNegativeSampler,
    make_negative_sampler,
)
from repro.training.trainer import Trainer, TrainingConfig, TrainingResult, train_model

__all__ = [
    "BernoulliNegativeSampler",
    "NEGATIVE_SAMPLERS",
    "ConsoleLogger",
    "EarlyStopping",
    "EpochRecord",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "TrainingResult",
    "UniformNegativeSampler",
    "iterate_batches",
    "make_negative_sampler",
    "num_batches",
    "train_model",
]
