"""Mini-batch iteration over triple sets."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import ConfigError
from repro.kg.triples import TripleSet


def iterate_batches(
    triples: TripleSet,
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
    drop_last: bool = False,
) -> Iterator[np.ndarray]:
    """Yield ``(<=batch_size, 3)`` arrays covering *triples* once.

    Parameters
    ----------
    shuffle:
        Permute the triple order each call (i.e. each epoch).
    drop_last:
        Discard a trailing batch smaller than ``batch_size``.
    """
    if batch_size < 1:
        raise ConfigError("batch_size must be >= 1")
    arr = triples.array
    order = rng.permutation(len(arr)) if shuffle else np.arange(len(arr))
    for start in range(0, len(arr), batch_size):
        index = order[start : start + batch_size]
        if drop_last and len(index) < batch_size:
            return
        yield arr[index]


def num_batches(num_triples: int, batch_size: int, drop_last: bool = False) -> int:
    """Number of batches :func:`iterate_batches` will yield."""
    if batch_size < 1:
        raise ConfigError("batch_size must be >= 1")
    if drop_last:
        return num_triples // batch_size
    return (num_triples + batch_size - 1) // batch_size
