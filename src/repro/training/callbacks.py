"""Training callbacks: history recording, early stopping, console logging.

The paper stops training early by checking filtered validation MRR every
50 epochs with 100 epochs patience (§5.3); :class:`EarlyStopping`
implements exactly that policy (with configurable numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class EpochRecord:
    """What happened during one training epoch."""

    epoch: int
    loss: float
    validation_mrr: float | None = None


@dataclass
class TrainingHistory:
    """Accumulates :class:`EpochRecord` entries over a training run."""

    records: list[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    @property
    def losses(self) -> list[float]:
        """Per-epoch training losses in order."""
        return [r.loss for r in self.records]

    @property
    def validation_mrrs(self) -> list[tuple[int, float]]:
        """(epoch, MRR) pairs for epochs where validation ran."""
        return [
            (r.epoch, r.validation_mrr)
            for r in self.records
            if r.validation_mrr is not None
        ]

    @property
    def best_validation_mrr(self) -> float | None:
        """Best validation MRR seen, or ``None`` if never evaluated."""
        mrrs = [mrr for _, mrr in self.validation_mrrs]
        return max(mrrs) if mrrs else None

    def __len__(self) -> int:
        return len(self.records)


class EarlyStopping:
    """Stop when validation MRR has not improved for *patience* epochs.

    ``check_every`` controls how often validation runs (paper: 50); the
    patience is measured in epochs (paper: 100), so with the paper's
    numbers two consecutive non-improving checks trigger a stop.
    """

    def __init__(
        self,
        check_every: int = 50,
        patience: int = 100,
        min_improvement: float = 0.0,
    ) -> None:
        if check_every < 1:
            raise ConfigError("check_every must be >= 1")
        if patience < check_every:
            raise ConfigError("patience must be >= check_every")
        if min_improvement < 0:
            raise ConfigError("min_improvement must be non-negative")
        self.check_every = int(check_every)
        self.patience = int(patience)
        self.min_improvement = float(min_improvement)
        self.best_mrr = -float("inf")
        self.best_epoch = -1

    def should_validate(self, epoch: int) -> bool:
        """Whether validation is due at (1-based) *epoch*."""
        return epoch % self.check_every == 0

    def update(self, epoch: int, mrr: float) -> bool:
        """Record a validation result; returns ``True`` when training should stop."""
        if mrr > self.best_mrr + self.min_improvement:
            self.best_mrr = mrr
            self.best_epoch = epoch
            return False
        return (epoch - self.best_epoch) >= self.patience


class ConsoleLogger:
    """Minimal stdout progress logger, silent by default in tests."""

    def __init__(self, every: int = 10, enabled: bool = True) -> None:
        if every < 1:
            raise ConfigError("every must be >= 1")
        self.every = int(every)
        self.enabled = bool(enabled)

    def on_epoch(self, record: EpochRecord, model_name: str) -> None:
        """Print a one-line progress report when due."""
        if not self.enabled or record.epoch % self.every != 0:
            return
        mrr = f" val_mrr={record.validation_mrr:.3f}" if record.validation_mrr is not None else ""
        print(f"[{model_name}] epoch {record.epoch:4d} loss={record.loss:.4f}{mrr}")
