"""The training loop (paper §4–5.3).

One epoch = one pass over shuffled training triples; each batch is
augmented with sampled negatives and handed to the model's
``train_step`` (logistic loss, analytic gradients, sparse optimizer
update, unit-norm constraint).  Validation MRR drives early stopping as
in §5.3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.base import KGEModel
from repro.errors import ConfigError, TrainingError
from repro.obs import registry as obs_registry
from repro.obs.trace import trace_scope
from repro.eval.evaluator import LinkPredictionEvaluator
from repro.kg.graph import KGDataset
from repro.nn.optimizers import OPTIMIZERS, Optimizer, make_optimizer
from repro.training.batching import iterate_batches
from repro.training.callbacks import ConsoleLogger, EarlyStopping, EpochRecord, TrainingHistory
from repro.training.negatives import (
    NEGATIVE_SAMPLERS,
    UniformNegativeSampler,
    make_negative_sampler,
)


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters of one training run (defaults follow paper §5.3).

    The paper grid-searches learning rates {1e-3, 1e-4}, regularisation
    strengths {1e-2 … 0}, batch sizes {2^12, 2^14}, with 1 negative
    sample; scaled-down defaults here suit the synthetic benches.
    """

    epochs: int = 200
    batch_size: int = 1024
    learning_rate: float = 1e-3
    optimizer: str = "adam"
    num_negatives: int = 1
    negative_sampler: str = "uniform"
    validate_every: int = 50
    patience: int = 100
    seed: int = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ConfigError(f"learning_rate must be > 0, got {self.learning_rate}")
        if self.num_negatives < 1:
            raise ConfigError(f"num_negatives must be >= 1, got {self.num_negatives}")
        if self.validate_every < 1:
            raise ConfigError(f"validate_every must be >= 1, got {self.validate_every}")
        if self.patience < 0:
            raise ConfigError(f"patience must be >= 0, got {self.patience}")
        if self.optimizer not in OPTIMIZERS:
            raise ConfigError(
                f"optimizer must be one of {OPTIMIZERS.names()}, got {self.optimizer!r}"
            )
        if self.negative_sampler not in NEGATIVE_SAMPLERS:
            raise ConfigError(
                f"negative_sampler must be one of {NEGATIVE_SAMPLERS.names()}, "
                f"got {self.negative_sampler!r}"
            )


@dataclass
class TrainingResult:
    """Everything a caller needs after a run."""

    model: KGEModel
    history: TrainingHistory
    stopped_early: bool
    epochs_run: int
    config: TrainingConfig = field(repr=False, default=None)


class Trainer:
    """Trains any :class:`~repro.core.base.KGEModel` on a dataset.

    Parameters
    ----------
    dataset:
        Provides training triples and the validation split for early
        stopping.
    config:
        Hyperparameters; see :class:`TrainingConfig`.
    sampler:
        Negative sampler; defaults to the paper's uniform sampler with
        ``config.num_negatives`` negatives.
    evaluator:
        Used for validation MRR; defaults to a filtered evaluator over
        the dataset.
    """

    def __init__(
        self,
        dataset: KGDataset,
        config: TrainingConfig | None = None,
        sampler: UniformNegativeSampler | None = None,
        evaluator: LinkPredictionEvaluator | None = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or TrainingConfig()
        self.sampler = sampler or make_negative_sampler(
            self.config.negative_sampler, dataset, self.config.num_negatives
        )
        self.evaluator = evaluator or LinkPredictionEvaluator(dataset)

    def train(
        self, model: KGEModel, optimizer: Optimizer | None = None
    ) -> TrainingResult:
        """Run the full loop and return the trained model plus history."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        optimizer = optimizer or make_optimizer(config.optimizer, config.learning_rate)
        history = TrainingHistory()
        stopper = EarlyStopping(check_every=config.validate_every, patience=config.patience)
        logger = ConsoleLogger(every=max(1, config.validate_every // 5), enabled=config.verbose)
        stopped_early = False
        epochs_run = 0

        telemetry = obs_registry.active_registry() is not None
        for epoch in range(1, config.epochs + 1):
            with trace_scope("train.epoch", epoch=epoch):
                started = time.perf_counter() if telemetry else 0.0
                epoch_loss = self._run_epoch(model, optimizer, rng)
                if telemetry:
                    obs_registry.observe(
                        "train.epoch_seconds", time.perf_counter() - started
                    )
                    obs_registry.inc("train.epochs")
            if not np.isfinite(epoch_loss):
                raise TrainingError(
                    f"training diverged at epoch {epoch} (loss={epoch_loss}); "
                    "reduce the learning rate"
                )
            record = EpochRecord(epoch=epoch, loss=epoch_loss)
            if len(self.dataset.valid) > 0 and stopper.should_validate(epoch):
                with trace_scope("train.validate", epoch=epoch):
                    result = self.evaluator.evaluate(model, split="valid")
                if telemetry:
                    obs_registry.inc("train.validations")
                record.validation_mrr = result.overall.mrr
                if stopper.update(epoch, result.overall.mrr):
                    history.append(record)
                    logger.on_epoch(record, model.name)
                    stopped_early = True
                    epochs_run = epoch
                    break
            history.append(record)
            logger.on_epoch(record, model.name)
            epochs_run = epoch

        # Free the fused train step's per-batch scratch before the model
        # moves on to serving/evaluation-only use.
        release = getattr(model, "release_training_buffers", None)
        if release is not None:
            release()

        return TrainingResult(
            model=model,
            history=history,
            stopped_early=stopped_early,
            epochs_run=epochs_run,
            config=config,
        )

    def _run_epoch(
        self, model: KGEModel, optimizer: Optimizer, rng: np.random.Generator
    ) -> float:
        total_loss = 0.0
        batches = 0
        for positives in iterate_batches(self.dataset.train, self.config.batch_size, rng):
            negatives = self.sampler.corrupt(positives, rng)
            total_loss += model.train_step(positives, negatives, optimizer)
            batches += 1
        if batches == 0:
            raise TrainingError("training split produced no batches")
        return total_loss / batches


def train_model(
    model: KGEModel,
    dataset: KGDataset,
    config: TrainingConfig | None = None,
) -> TrainingResult:
    """Convenience one-call wrapper: build a :class:`Trainer` and run it."""
    return Trainer(dataset, config).train(model)
