"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library errors without
swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class VocabularyError(ReproError):
    """A name or index is unknown to a vocabulary, or a duplicate was added."""


class TripleError(ReproError):
    """A triple array has the wrong shape, dtype, or out-of-range indices."""


class DatasetError(ReproError):
    """A dataset is malformed (overlapping splits, empty split, bad file)."""


class ConfigError(ReproError):
    """A configuration value is out of its valid range or inconsistent."""


class ModelError(ReproError):
    """A model was constructed or used inconsistently."""


class IngestError(ReproError):
    """A graph delta could not be applied transactionally.

    Raised by :mod:`repro.ingest` when a :class:`~repro.ingest.GraphDelta`
    is internally inconsistent or conflicts with the dataset it targets
    (deleting an unknown triple, re-adding an existing one, duplicate
    vocabulary names).  Nothing is mutated when this is raised — the
    delta either applies completely or not at all.
    """


class TrainingError(ReproError):
    """The training loop was mis-configured or diverged."""


class EvaluationError(ReproError):
    """The evaluation protocol received inconsistent inputs."""


class SweepError(ReproError):
    """A sweep child failed in a worker process (carries its traceback)."""


class TransientError(ReproError):
    """An error that is expected to succeed on retry.

    The parallel pool's retry machinery re-runs tasks that die with a
    ``TransientError`` (or that take the worker process down with them);
    any other exception is treated as deterministic and fails fast.
    """


class InjectedFault(TransientError):
    """A fault raised deliberately by the fault-injection harness.

    Carries the injection ``site`` and ``context`` so chaos tests can
    assert exactly which planned fault fired.
    """

    def __init__(self, message: str, site: str = "", context: str = "") -> None:
        super().__init__(message)
        self.site = site
        self.context = context


class TaskTimeoutError(TransientError):
    """A pool task exceeded its ``task_timeout`` and was abandoned."""


class ArtifactError(ReproError):
    """A persisted artifact (checkpoint, run-dir file, index) is unusable.

    Carries the offending ``path`` so operators see *which* file to
    inspect, not just that some JSON somewhere failed to parse.
    """

    def __init__(self, message: str, path=None) -> None:
        super().__init__(message)
        self.path = None if path is None else str(path)


class MissingArtifactError(ArtifactError):
    """An artifact recorded in a manifest (or required by a loader) is gone."""


class CorruptArtifactError(ArtifactError):
    """An artifact exists but is torn or bit-rotted.

    Raised when a file fails its sha256 manifest check or cannot be
    parsed (truncated JSON, clipped npz).  Loaders raise this instead of
    leaking ``JSONDecodeError``/``zipfile.BadZipFile``, and resume paths
    treat it as "re-create from the last good state" rather than a crash.
    """


class ServingError(ReproError):
    """A serving-layer request was malformed or unserveable."""


class ServerClosedError(ServingError):
    """A request reached the serving daemon during/after shutdown.

    Raised by :class:`~repro.serving.server.PredictionServer` once
    shutdown has begun: queued requests still drain, but no new work is
    admitted.
    """


class ServerOverloadedError(ServingError):
    """The serving daemon's request queue is at its admission cap.

    Fast-fail backpressure: rather than queueing unboundedly under
    overload, the daemon rejects immediately with a ``retry_after_ms``
    hint derived from the current queue depth and the measured
    per-request service time.
    """

    def __init__(self, message: str, retry_after_ms: float = 50.0) -> None:
        super().__init__(message)
        self.retry_after_ms = float(retry_after_ms)


class DeadlineExceededError(ServingError):
    """A serving request's deadline expired before it was dispatched.

    Raised into the request's future by the micro-batcher when a
    ``deadline_ms`` (per request, or the server-wide default) elapses
    while the request is still queued — the caller gets a fast, typed
    failure instead of a stale answer.
    """


class StaleIndexError(ServingError):
    """A retrieval index no longer matches its model's parameters.

    Raised by indexes configured with ``on_stale="error"`` when the
    model trained past the version the index was built at (or a loaded
    index's fingerprint does not match the checkpoint).  The default
    policy rebuilds instead of raising.
    """
