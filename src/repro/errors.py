"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library errors without
swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class VocabularyError(ReproError):
    """A name or index is unknown to a vocabulary, or a duplicate was added."""


class TripleError(ReproError):
    """A triple array has the wrong shape, dtype, or out-of-range indices."""


class DatasetError(ReproError):
    """A dataset is malformed (overlapping splits, empty split, bad file)."""


class ConfigError(ReproError):
    """A configuration value is out of its valid range or inconsistent."""


class ModelError(ReproError):
    """A model was constructed or used inconsistently."""


class TrainingError(ReproError):
    """The training loop was mis-configured or diverged."""


class EvaluationError(ReproError):
    """The evaluation protocol received inconsistent inputs."""


class SweepError(ReproError):
    """A sweep child failed in a worker process (carries its traceback)."""


class ServingError(ReproError):
    """A serving-layer request was malformed or unserveable."""


class ServerClosedError(ServingError):
    """A request reached the serving daemon during/after shutdown.

    Raised by :class:`~repro.serving.server.PredictionServer` once
    shutdown has begun: queued requests still drain, but no new work is
    admitted.
    """


class ServerOverloadedError(ServingError):
    """The serving daemon's request queue is at its admission cap.

    Fast-fail backpressure: rather than queueing unboundedly under
    overload, the daemon rejects immediately with a ``retry_after_ms``
    hint derived from the current queue depth and the measured
    per-request service time.
    """

    def __init__(self, message: str, retry_after_ms: float = 50.0) -> None:
        super().__init__(message)
        self.retry_after_ms = float(retry_after_ms)


class StaleIndexError(ServingError):
    """A retrieval index no longer matches its model's parameters.

    Raised by indexes configured with ``on_stale="error"`` when the
    model trained past the version the index was built at (or a loaded
    index's fingerprint does not match the checkpoint).  The default
    policy rebuilds instead of raising.
    """
