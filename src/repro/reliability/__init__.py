"""repro.reliability — the fault-tolerance layer.

Production systems fail in boring, recurring ways: a worker process is
OOM-killed mid-shard, the machine dies halfway through a checkpoint
write, a disk flips a bit in a persisted index.  This package gives the
repository one shared vocabulary for surviving all three:

:mod:`repro.reliability.faults`
    Deterministic, seeded fault injection (:class:`FaultPlan` /
    :class:`FaultInjector`) with named sites threaded through the
    parallel pool, artifact IO and the serving daemon — chaos tests are
    ordinary reproducible tests.
:mod:`repro.reliability.atomic`
    Crash-safe writes (tempfile + fsync + ``os.replace``) used by every
    durable artifact: run dirs, checkpoints, indexes, sweep status.
:mod:`repro.reliability.manifest`
    Per-directory sha256 manifests so loaders *detect* torn or
    bit-rotted artifacts (:class:`~repro.errors.CorruptArtifactError`)
    instead of crashing on a raw decode error — and resume paths fall
    back to re-creating the artifact from the last good state.

The remaining pieces live where the failures happen: retry/backoff in
:func:`repro.parallel.pool.run_tasks`, and degraded-mode serving (exact
full-sweep fallback, ``degraded: true`` response tags, the ``health``
wire op) in :class:`repro.serving.server.PredictionServer`.
"""

from repro.reliability.atomic import (
    atomic_savez,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    npz_bytes,
)
from repro.reliability.faults import (
    FaultHit,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active_injector,
    fault_scope,
    install_fault_injector,
)
from repro.reliability.manifest import (
    MANIFEST_FILE,
    read_manifest,
    sha256_bytes,
    sha256_file,
    verify_artifact,
    verify_manifest,
    write_manifest,
)

__all__ = [
    "FaultHit",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "MANIFEST_FILE",
    "active_injector",
    "atomic_savez",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "fault_scope",
    "install_fault_injector",
    "npz_bytes",
    "read_manifest",
    "sha256_bytes",
    "sha256_file",
    "verify_artifact",
    "verify_manifest",
    "write_manifest",
]
