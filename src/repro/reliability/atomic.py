"""Crash-safe artifact writes: tempfile + fsync + ``os.replace``.

Every durable artifact in the repository (run-dir JSON, checkpoints,
persisted indexes, sweep status files) goes through
:func:`atomic_write_bytes`: the payload is written to a uniquely-named
sibling tempfile, flushed and fsynced, then atomically renamed over the
destination.  A crash at any point leaves either the old complete file
or the new complete file — never a torn one.  (Stray ``.tmp-*``
siblings from a crash mid-write are harmless and overwritten-or-ignored
by the next successful write; loaders never look at them.)

The write hook doubles as the fault-injection point for artifact chaos:
the payload is filtered through the active
:class:`~repro.reliability.faults.FaultInjector` at site ``io.write``
(``truncate``/``byteflip`` corrupt it — simulating the torn writes this
module exists to prevent, so manifest verification stays testable) and
the site is fired before the replace (an ``exception`` fault aborts the
write with the previous content intact, which is exactly the crash-
safety contract under test).
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.reliability import faults

#: Injection site consulted on every atomic write.
WRITE_SITE = "io.write"


def atomic_write_bytes(
    path: str | Path, data: bytes, fsync: bool = True
) -> Path:
    """Write *data* to *path* atomically; returns the path.

    The temp file lives in the destination's directory so the final
    ``os.replace`` stays on one filesystem (rename atomicity).  With
    ``fsync`` (default) the payload is forced to disk before the rename,
    so a machine crash cannot replace a good file with an empty one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = faults.filter_bytes(WRITE_SITE, data, context=str(path))
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".tmp-{path.name}-"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        faults.fire(WRITE_SITE, context=str(path))
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8", fsync: bool = True
) -> Path:
    """Text flavour of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_write_json(
    path: str | Path,
    payload,
    *,
    indent: int = 2,
    sort_keys: bool = False,
    fsync: bool = True,
) -> Path:
    """Serialize *payload* as JSON and write it atomically."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text, fsync=fsync)


def npz_bytes(arrays: dict[str, np.ndarray]) -> bytes:
    """The exact bytes ``np.savez`` would write for *arrays*.

    Serialized in-memory so callers can hash the payload (for manifests
    / corruption detection) and hand the same bytes to
    :func:`atomic_write_bytes` — one serialization, both uses.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def atomic_savez(path: str | Path, arrays: dict[str, np.ndarray], fsync: bool = True) -> bytes:
    """Atomically persist *arrays* as an ``.npz``; returns the written bytes.

    Returning the payload lets callers record its sha256 in a manifest
    without re-reading the file (and without hashing a file an injected
    fault may just have corrupted — manifests must hash the *intended*
    bytes, or corruption would self-certify).
    """
    data = npz_bytes(arrays)
    atomic_write_bytes(path, data, fsync=fsync)
    return data
