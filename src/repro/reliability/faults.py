"""Deterministic fault injection: plans, injectors, and named sites.

Chaos that cannot be replayed is noise.  This module makes every
injected failure *planned*: a :class:`FaultPlan` is a picklable list of
:class:`FaultSpec` entries, each naming an injection **site** (a string
the instrumented code passes when it reaches the hook), the fault
**kind**, and a deterministic trigger (a substring ``match`` over the
site's context plus a per-process ``max_hits`` budget).  A
:class:`FaultInjector` executes a plan; instrumented code reaches it
either through an explicit parameter (the parallel pool ships plans to
its workers) or the module-level active injector installed with
:func:`install_fault_injector` (run-dir and index IO consult it on
every write).

Sites currently instrumented:

``pool.task``
    Fired by :func:`repro.parallel.pool.run_tasks` immediately before a
    task body runs, with context ``"task:<index>;attempt:<n>"``.  The
    attempt counter is part of the context, so a plan can crash attempt
    0 of task 3 and let its retry succeed — reproducible recovery, no
    shared state across worker processes.
``io.write``
    Fired by :func:`repro.reliability.atomic.atomic_write_bytes` with
    the destination path as context.  ``truncate``/``byteflip`` kinds
    corrupt the payload (simulating a torn legacy write or bit rot, so
    manifest verification can be tested); ``exception`` aborts before
    the atomic replace (the destination keeps its previous content).
``server.dispatch``
    Fired by :class:`repro.serving.server.PredictionServer` inside the
    scoring thread of each micro-batch group, with the query side as
    context — ``slow`` faults here exercise drain/swap atomicity with a
    batch genuinely in flight.

Fault kinds: ``exception`` raises :class:`~repro.errors.InjectedFault`
(a :class:`~repro.errors.TransientError`, so pool retries heal it);
``crash`` hard-kills a pool worker with ``os._exit`` (outside a worker
it degrades to an exception rather than killing the host process);
``slow`` sleeps ``delay_s`` then continues; ``truncate`` drops
``drop_bytes`` from the tail of a write; ``byteflip`` XOR-flips one
seeded byte.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass
from typing import Iterable

import numpy as np

from repro.errors import ConfigError, InjectedFault

#: Kinds that interrupt control flow (handled by :meth:`FaultInjector.fire`).
CONTROL_KINDS = ("exception", "crash", "slow")
#: Kinds that corrupt byte payloads (handled by :meth:`FaultInjector.filter_bytes`).
DATA_KINDS = ("truncate", "byteflip")
FAULT_KINDS = CONTROL_KINDS + DATA_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: where it fires, what it does, when it triggers.

    ``match`` is a substring filter over the context string the
    instrumented site passes (``""`` matches everything), and
    ``max_hits`` bounds how many times the spec fires *per injector*
    (pool workers each rebuild their injector from the plan, so cross-
    process plans should pin their trigger via ``match`` — e.g. on the
    ``attempt:<n>`` token — instead of relying on shared hit counts).
    """

    site: str
    kind: str
    match: str = ""
    max_hits: int = 1
    delay_s: float = 0.0
    drop_bytes: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"fault kind must be one of {list(FAULT_KINDS)}, got {self.kind!r}"
            )
        if not self.site:
            raise ConfigError("fault site must be a non-empty string")
        if self.max_hits < 1:
            raise ConfigError(f"max_hits must be >= 1, got {self.max_hits}")
        if self.delay_s < 0:
            raise ConfigError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.drop_bytes < 1:
            raise ConfigError(f"drop_bytes must be >= 1, got {self.drop_bytes}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable collection of fault specs.

    Plans travel across process boundaries (the pool ships them to its
    workers through the initializer), so they carry no live state —
    hit counting lives in the :class:`FaultInjector` built from a plan.
    """

    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(specs=specs)

    def at_site(self, site: str) -> tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.specs if spec.site == site)

    def to_dicts(self) -> list[dict]:
        return [asdict(spec) for spec in self.specs]

    @classmethod
    def from_dicts(cls, entries: Iterable[dict]) -> "FaultPlan":
        return cls(specs=tuple(FaultSpec(**entry) for entry in entries))


@dataclass
class FaultHit:
    """One fault that actually fired (recorded for test assertions)."""

    site: str
    kind: str
    context: str


class FaultInjector:
    """Executes a :class:`FaultPlan`; one instance per process/attempt scope."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._remaining: dict[int, int] = {
            position: spec.max_hits for position, spec in enumerate(plan.specs)
        }
        self.hits: list[FaultHit] = []

    def _armed(self, site: str, context: str, kinds: tuple[str, ...]):
        """Specs at *site* matching *context* with hit budget left, in order."""
        for position, spec in enumerate(self.plan.specs):
            if spec.site != site or spec.kind not in kinds:
                continue
            if spec.match and spec.match not in context:
                continue
            if self._remaining[position] <= 0:
                continue
            yield position, spec

    def _consume(self, position: int, spec: FaultSpec, context: str) -> None:
        self._remaining[position] -= 1
        self.hits.append(FaultHit(site=spec.site, kind=spec.kind, context=context))

    def fire(self, site: str, context: str = "") -> None:
        """Trigger any armed control-flow fault at *site*.

        ``slow`` sleeps and continues (several slow specs may stack);
        the first armed ``exception``/``crash`` spec ends the call.
        """
        for position, spec in self._armed(site, context, CONTROL_KINDS):
            if spec.kind == "slow":
                self._consume(position, spec, context)
                time.sleep(spec.delay_s)
                continue
            self._consume(position, spec, context)
            if spec.kind == "crash":
                from repro.parallel.pool import in_worker_process

                if in_worker_process():
                    # Hard death: no exception, no cleanup — exactly an
                    # OOM-kill as the parent pool observes it.
                    os._exit(13)
                # Outside a pool worker, killing the process would take
                # the test runner down with it; degrade to a transient.
            raise InjectedFault(
                f"injected {spec.kind} fault at {site!r} (context {context!r})",
                site=site,
                context=context,
            )

    def filter_bytes(self, site: str, data: bytes, context: str = "") -> bytes:
        """Apply any armed data-corruption fault at *site* to *data*."""
        for position, spec in self._armed(site, context, DATA_KINDS):
            self._consume(position, spec, context)
            if spec.kind == "truncate":
                keep = max(0, len(data) - spec.drop_bytes)
                data = data[:keep]
            else:  # byteflip
                if data:
                    rng = np.random.default_rng(spec.seed)
                    offset = int(rng.integers(0, len(data)))
                    flipped = bytearray(data)
                    flipped[offset] ^= 0xFF
                    data = bytes(flipped)
        return data


# --------------------------------------------------------------- active scope
_ACTIVE: FaultInjector | None = None


def install_fault_injector(injector: FaultInjector | None) -> FaultInjector | None:
    """Install *injector* as this process's active injector; returns the old one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    return previous


def active_injector() -> FaultInjector | None:
    return _ACTIVE


def fire(site: str, context: str = "") -> None:
    """Fire *site* on the active injector (no-op when none is installed)."""
    if _ACTIVE is not None:
        _ACTIVE.fire(site, context)


def filter_bytes(site: str, data: bytes, context: str = "") -> bytes:
    """Filter *data* through the active injector (identity when none)."""
    if _ACTIVE is None:
        return data
    return _ACTIVE.filter_bytes(site, data, context)


class fault_scope:
    """Context manager installing an injector for a ``with`` block.

    >>> with fault_scope(FaultInjector(plan)) as injector:
    ...     ...  # instrumented writes in this block see the plan
    """

    def __init__(self, injector: FaultInjector) -> None:
        self.injector = injector
        self._previous: FaultInjector | None = None

    def __enter__(self) -> FaultInjector:
        self._previous = install_fault_injector(self.injector)
        return self.injector

    def __exit__(self, *exc_info) -> None:
        install_fault_injector(self._previous)
