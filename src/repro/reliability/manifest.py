"""Per-run sha256 manifests: detect torn and bit-rotted artifacts.

A run directory's ``manifest.json`` maps each artifact's relative path
to the sha256 of the bytes the writer *intended* to persist.  Loaders
call :func:`verify_artifact` (one file) or :func:`verify_manifest`
(whole directory) before trusting an artifact; a mismatch raises
:class:`~repro.errors.CorruptArtifactError` naming the offending path,
and a file the manifest promises but the directory lacks raises
:class:`~repro.errors.MissingArtifactError`.

Manifests are advisory by construction: directories written before the
manifest existed (or by external tools) simply have none, and every
verifier treats that as "nothing to check" — old run dirs keep loading.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import CorruptArtifactError, MissingArtifactError
from repro.reliability.atomic import atomic_write_json

#: Filename of the manifest inside a run directory.
MANIFEST_FILE = "manifest.json"

_MANIFEST_VERSION = 1


def sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: str | Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def write_manifest(directory: str | Path, hashes: dict[str, str]) -> Path:
    """Persist *hashes* (relative path → sha256) as the directory manifest.

    Written atomically, like everything else — a torn manifest would
    otherwise turn the integrity layer into its own failure mode.  Keys
    are sorted so identical runs produce byte-identical manifests.
    """
    directory = Path(directory)
    payload = {
        "manifest_version": _MANIFEST_VERSION,
        "files": dict(sorted(hashes.items())),
    }
    return atomic_write_json(directory / MANIFEST_FILE, payload, sort_keys=True)


def read_manifest(directory: str | Path) -> dict[str, str] | None:
    """The ``files`` mapping of a directory's manifest, or ``None``.

    Returns ``None`` both when no manifest exists (pre-manifest
    directory: nothing to verify) and raises
    :class:`CorruptArtifactError` when one exists but cannot be parsed —
    an unreadable manifest means integrity can no longer be vouched for.
    """
    path = Path(directory) / MANIFEST_FILE
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise CorruptArtifactError(
            f"unreadable artifact manifest {path}: {error}", path=path
        ) from None
    files = payload.get("files")
    if not isinstance(files, dict):
        raise CorruptArtifactError(
            f"artifact manifest {path} has no 'files' mapping", path=path
        )
    return files


def verify_artifact(
    directory: str | Path, relative: str, manifest: dict[str, str] | None
) -> None:
    """Check one artifact against *manifest* (no-op when unlisted/None)."""
    if manifest is None:
        return
    expected = manifest.get(relative)
    if expected is None:
        return
    path = Path(directory) / relative
    if not path.exists():
        raise MissingArtifactError(
            f"artifact {relative!r} is recorded in the manifest but missing: {path}",
            path=path,
        )
    actual = sha256_file(path)
    if actual != expected:
        raise CorruptArtifactError(
            f"artifact {relative!r} failed its integrity check "
            f"(sha256 {actual[:12]}… != manifest {expected[:12]}…): {path}",
            path=path,
        )


def verify_manifest(directory: str | Path) -> list[str]:
    """Verify every artifact the directory's manifest records.

    Returns the list of verified relative paths (empty when the
    directory has no manifest); raises on the first bad artifact.
    """
    manifest = read_manifest(directory)
    if manifest is None:
        return []
    for relative in sorted(manifest):
        verify_artifact(directory, relative, manifest)
    return sorted(manifest)
