"""Shared PEP 562 lazy-export machinery.

Four packages (:mod:`repro`, :mod:`repro.pipeline`, :mod:`repro.parallel`,
:mod:`repro.index`) expose attributes that live in heavyweight
submodules; each declares a ``{name: module}`` mapping and installs the
``__getattr__``/``__dir__`` pair built here instead of repeating the
boilerplate.

The resolved attribute is cached into the package's ``globals()``.  Not
just an optimisation: for an export whose name equals its host submodule
(``sweep``), importing the submodule binds the *module object* onto the
package, and ``from repro.pipeline import sweep`` would then pick up the
module instead of the function — writing the resolved value last wins
(the PR-3 submodule-shadowing bug).
"""

from __future__ import annotations

from typing import Callable, Mapping


def lazy_exports(
    package_name: str,
    module_globals: dict,
    exports: Mapping[str, str],
) -> tuple[Callable[[str], object], Callable[[], list[str]]]:
    """Build the ``(__getattr__, __dir__)`` pair for a lazy package.

    Usage::

        _LAZY_EXPORTS = {"Thing": "repro.pkg.submodule", ...}
        __getattr__, __dir__ = lazy_exports(__name__, globals(), _LAZY_EXPORTS)
    """

    def __getattr__(name: str):
        module_name = exports.get(name)
        if module_name is None:
            raise AttributeError(
                f"module {package_name!r} has no attribute {name!r}"
            )
        import importlib

        value = getattr(importlib.import_module(module_name), name)
        module_globals[name] = value  # cache; also defeats submodule shadowing
        return value

    def __dir__() -> list[str]:
        return sorted(set(module_globals) | set(module_globals.get("__all__", ())))

    return __getattr__, __dir__
