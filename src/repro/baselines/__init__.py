"""Baseline models from the paper's §2 categorisation.

* :class:`TransE` — translation-based (§2.2.1).
* :class:`ERMLP` — neural-network-based (§2.2.2), trained via autodiff.
* :class:`RESCAL` — the bilinear predecessor the trilinear family refines.
"""

from repro.baselines.er_mlp import ERMLP
from repro.baselines.rescal import RESCAL
from repro.baselines.transe import TransE

__all__ = ["ERMLP", "RESCAL", "TransE"]
