"""TransE — the translation-based baseline (paper §2.2.1, Eq. 1).

Scores a triple by the negative L1/L2 distance between the translated
head and the tail: ``S(h, t, r) = -||h + r - t||_p``.  Trained with the
margin ranking loss, per Bordes et al. (2013), with per-iteration entity
normalisation.  Included because the paper's categorisation contrasts
translation-based models (weak on some relation patterns — e.g. they
cannot represent symmetric relations with nonzero r) with the trilinear
family it analyses.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import KGEModel
from repro.errors import ConfigError
from repro.nn.constraints import UnitNormConstraint
from repro.nn.initializers import get_initializer
from repro.nn.losses import MarginRankingLoss
from repro.nn.optimizers import Optimizer, aggregate_rows


class TransE(KGEModel):
    """TransE with L1 or L2 distance and margin ranking loss.

    Parameters
    ----------
    dim:
        Embedding dimension for entities and relations.
    norm:
        1 for L1 distance, 2 for L2.
    margin:
        Ranking margin γ.
    """

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        rng: np.random.Generator,
        norm: int = 1,
        margin: float = 1.0,
        initializer: str = "xavier_uniform",
    ) -> None:
        if norm not in (1, 2):
            raise ConfigError("norm must be 1 or 2")
        self.name = f"TransE (L{norm})"
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)
        self.dim = int(dim)
        self.norm = int(norm)
        init = get_initializer(initializer)
        self.entity_embeddings = init((self.num_entities, self.dim), rng)
        self.relation_embeddings = init((self.num_relations, self.dim), rng)
        self.loss = MarginRankingLoss(margin)
        self.constraint = UnitNormConstraint()
        self.constraint.apply(self.entity_embeddings)

    # ---------------------------------------------------------------- scoring
    def _residual(self, heads, tails, relations) -> np.ndarray:
        return (
            self.entity_embeddings[np.asarray(heads, dtype=np.int64)]
            + self.relation_embeddings[np.asarray(relations, dtype=np.int64)]
            - self.entity_embeddings[np.asarray(tails, dtype=np.int64)]
        )

    def score_triples(self, heads, tails, relations) -> np.ndarray:
        """Eq. 1 scores (negative distances; higher = more plausible)."""
        residual = self._residual(heads, tails, relations)
        if self.norm == 1:
            return -np.sum(np.abs(residual), axis=-1)
        return -np.linalg.norm(residual, axis=-1)

    def _score_against_all(self, anchor: np.ndarray, sign: float) -> np.ndarray:
        """Distance of ``anchor ± e`` to every entity ``e``, chunked."""
        scores = np.empty((len(anchor), self.num_entities), dtype=np.float64)
        chunk = max(1, 2**22 // max(1, self.num_entities * self.dim))
        for start in range(0, len(anchor), chunk):
            block = anchor[start : start + chunk, None, :] + sign * self.entity_embeddings[None]
            if self.norm == 1:
                scores[start : start + chunk] = -np.sum(np.abs(block), axis=-1)
            else:
                scores[start : start + chunk] = -np.linalg.norm(block, axis=-1)
        return scores

    def score_all_tails(self, heads, relations) -> np.ndarray:
        anchor = (
            self.entity_embeddings[np.asarray(heads, dtype=np.int64)]
            + self.relation_embeddings[np.asarray(relations, dtype=np.int64)]
        )
        return self._score_against_all(anchor, sign=-1.0)

    def score_all_heads(self, tails, relations) -> np.ndarray:
        anchor = (
            self.relation_embeddings[np.asarray(relations, dtype=np.int64)]
            - self.entity_embeddings[np.asarray(tails, dtype=np.int64)]
        )
        return self._score_against_all(anchor, sign=1.0)

    def score_candidates(self, anchors, relations, candidates, side="tail") -> np.ndarray:
        """Distance to the candidate entities only, skipping the full sweep.

        Tail side evaluates ``-||(h + r) - t'||`` per candidate ``t'``;
        head side ``-||h' + (r - t)||`` per candidate ``h'``.
        """
        anchors, relations, candidates = self._validate_candidate_query(
            anchors, relations, candidates, side
        )
        anchor_vecs = self.entity_embeddings[anchors]
        rel_vecs = self.relation_embeddings[relations]
        if side == "tail":
            residual = (anchor_vecs + rel_vecs)[:, None, :] - self.entity_embeddings[candidates]
        else:
            residual = self.entity_embeddings[candidates] + (rel_vecs - anchor_vecs)[:, None, :]
        if self.norm == 1:
            return -np.sum(np.abs(residual), axis=-1)
        return -np.linalg.norm(residual, axis=-1)

    # --------------------------------------------------------------- training
    def train_step(
        self, positives: np.ndarray, negatives: np.ndarray, optimizer: Optimizer
    ) -> float:
        """Margin ranking step over (positive, corrupted) pairs.

        Negatives are expected in the trainer's layout: round ``i`` of
        negatives corrupts positive ``i % b``.
        """
        positives = np.asarray(positives, dtype=np.int64)
        negatives = np.asarray(negatives, dtype=np.int64)
        if len(negatives) % len(positives) != 0:
            raise ConfigError("negatives must be a whole number of rounds over positives")
        rounds = len(negatives) // len(positives)
        paired_pos = np.tile(positives, (rounds, 1))

        pos_res = self._residual(paired_pos[:, 0], paired_pos[:, 1], paired_pos[:, 2])
        neg_res = self._residual(negatives[:, 0], negatives[:, 1], negatives[:, 2])
        if self.norm == 1:
            pos_scores = -np.sum(np.abs(pos_res), axis=-1)
            neg_scores = -np.sum(np.abs(neg_res), axis=-1)
        else:
            pos_scores = -np.linalg.norm(pos_res, axis=-1)
            neg_scores = -np.linalg.norm(neg_res, axis=-1)
        loss_value = self.loss.value(pos_scores, neg_scores)
        grad_pos, grad_neg = self.loss.grad_pair(pos_scores, neg_scores)

        def residual_grad(residual: np.ndarray) -> np.ndarray:
            if self.norm == 1:
                return -np.sign(residual)
            norms = np.linalg.norm(residual, axis=-1, keepdims=True)
            return -residual / np.maximum(norms, 1e-12)

        d_pos = grad_pos[:, None] * residual_grad(pos_res)
        d_neg = grad_neg[:, None] * residual_grad(neg_res)

        entity_indices = np.concatenate(
            [paired_pos[:, 0], negatives[:, 0], paired_pos[:, 1], negatives[:, 1]]
        )
        entity_grads = np.concatenate([d_pos, d_neg, -d_pos, -d_neg], axis=0)
        rows, grads = aggregate_rows(entity_indices, entity_grads)
        optimizer.step_sparse("entities", self.entity_embeddings, rows, grads)
        self.constraint.apply(self.entity_embeddings, rows)

        rel_rows, rel_grads = aggregate_rows(
            np.concatenate([paired_pos[:, 2], negatives[:, 2]]),
            np.concatenate([d_pos, d_neg], axis=0),
        )
        optimizer.step_sparse("relations", self.relation_embeddings, rel_rows, rel_grads)
        self._bump_scoring_version()
        return float(loss_value)

    def parameter_count(self) -> int:
        return int(self.entity_embeddings.size + self.relation_embeddings.size)
