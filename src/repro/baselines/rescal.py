"""RESCAL — the bilinear predecessor of the trilinear family (paper §2.2.2).

RESCAL (Nickel et al. 2011) scores ``S(h, t, r) = h^T W_r t`` with a full
``D × D`` matrix per relation.  DistMult is RESCAL restricted to diagonal
``W_r``; the paper cites it as the linear model that NTN generalises.
It is included as a capacity/efficiency reference point: quadratic
parameter count per relation versus the trilinear family's linear one.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import KGEModel
from repro.nn.constraints import UnitNormConstraint
from repro.nn.initializers import get_initializer
from repro.nn.losses import LogisticLoss
from repro.nn.optimizers import Optimizer, aggregate_rows
from repro.nn.regularizers import L2Regularizer


class RESCAL(KGEModel):
    """RESCAL with logistic loss and sparse row updates."""

    name = "RESCAL"

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        rng: np.random.Generator,
        regularization: float = 0.0,
        initializer: str = "xavier_uniform",
        unit_norm_entities: bool = True,
    ) -> None:
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)
        self.dim = int(dim)
        init = get_initializer(initializer)
        self.entity_embeddings = init((self.num_entities, self.dim), rng)
        self.relation_matrices = init((self.num_relations, self.dim, self.dim), rng)
        self.loss = LogisticLoss()
        per_triple = 2 * self.dim + self.dim * self.dim
        self.regularizer = L2Regularizer(regularization, scale=per_triple)
        self.constraint = UnitNormConstraint() if unit_norm_entities else None

    # ---------------------------------------------------------------- scoring
    def score_triples(self, heads, tails, relations) -> np.ndarray:
        h = self.entity_embeddings[np.asarray(heads, dtype=np.int64)]
        t = self.entity_embeddings[np.asarray(tails, dtype=np.int64)]
        w = self.relation_matrices[np.asarray(relations, dtype=np.int64)]
        return np.einsum("bi,bij,bj->b", h, w, t, optimize=True)

    def score_all_tails(self, heads, relations) -> np.ndarray:
        h = self.entity_embeddings[np.asarray(heads, dtype=np.int64)]
        w = self.relation_matrices[np.asarray(relations, dtype=np.int64)]
        projected = np.einsum("bi,bij->bj", h, w, optimize=True)
        return projected @ self.entity_embeddings.T

    def score_all_heads(self, tails, relations) -> np.ndarray:
        t = self.entity_embeddings[np.asarray(tails, dtype=np.int64)]
        w = self.relation_matrices[np.asarray(relations, dtype=np.int64)]
        projected = np.einsum("bij,bj->bi", w, t, optimize=True)
        return projected @ self.entity_embeddings.T

    def score_candidates(self, anchors, relations, candidates, side="tail") -> np.ndarray:
        """Project the anchor through ``W_r`` once, then dot only candidates."""
        anchors, relations, candidates = self._validate_candidate_query(
            anchors, relations, candidates, side
        )
        anchor_vecs = self.entity_embeddings[anchors]
        w = self.relation_matrices[relations]
        if side == "tail":
            projected = np.einsum("bi,bij->bj", anchor_vecs, w, optimize=True)
        else:
            projected = np.einsum("bij,bj->bi", w, anchor_vecs, optimize=True)
        return np.einsum(
            "bd,bcd->bc", projected, self.entity_embeddings[candidates], optimize=True
        )

    # --------------------------------------------------------------- training
    def train_step(
        self, positives: np.ndarray, negatives: np.ndarray, optimizer: Optimizer
    ) -> float:
        positives = np.asarray(positives, dtype=np.int64)
        negatives = np.asarray(negatives, dtype=np.int64)
        triples = np.concatenate([positives, negatives], axis=0)
        labels = np.concatenate([np.ones(len(positives)), -np.ones(len(negatives))])
        heads, tails, relations = triples[:, 0], triples[:, 1], triples[:, 2]
        h = self.entity_embeddings[heads]
        t = self.entity_embeddings[tails]
        w = self.relation_matrices[relations]
        scores = np.einsum("bi,bij,bj->b", h, w, t, optimize=True)
        loss_value = self.loss.value(scores, labels)
        g = self.loss.grad_score(scores, labels)

        grad_h = g[:, None] * np.einsum("bij,bj->bi", w, t, optimize=True)
        grad_t = g[:, None] * np.einsum("bi,bij->bj", h, w, optimize=True)
        grad_w = g[:, None, None] * np.einsum("bi,bj->bij", h, t, optimize=True)
        if self.regularizer.strength > 0.0:
            inv_batch = 1.0 / len(triples)
            loss_value += inv_batch * (
                self.regularizer.value(h)
                + self.regularizer.value(t)
                + self.regularizer.value(w)
            )
            grad_h = grad_h + inv_batch * self.regularizer.grad(h)
            grad_t = grad_t + inv_batch * self.regularizer.grad(t)
            grad_w = grad_w + inv_batch * self.regularizer.grad(w)

        rows, grads = aggregate_rows(
            np.concatenate([heads, tails]), np.concatenate([grad_h, grad_t], axis=0)
        )
        optimizer.step_sparse("entities", self.entity_embeddings, rows, grads)
        if self.constraint is not None:
            self.constraint.apply(self.entity_embeddings, rows)
        rel_rows, rel_grads = aggregate_rows(relations, grad_w)
        optimizer.step_sparse("relations", self.relation_matrices, rel_rows, rel_grads)
        self._bump_scoring_version()
        return float(loss_value)

    def parameter_count(self) -> int:
        return int(self.entity_embeddings.size + self.relation_matrices.size)
