"""ER-MLP — the neural-network-based baseline (paper §2.2.2).

ER-MLP (Dong et al. 2014) concatenates the head, tail and relation
embeddings and feeds them through a multi-layer perceptron to produce
the matching score (paper Eq. 2 with ``NN`` = one hidden tanh layer).

Unlike the trilinear models, the MLP's gradients are not worth deriving
by hand; this model trains through the
:mod:`repro.nn.autodiff` engine — which is exactly what that substrate
exists for — demonstrating that the engine supports real training, not
just gradient checking.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import KGEModel
from repro.errors import ConfigError
from repro.nn.autodiff import Tensor
from repro.nn.initializers import get_initializer
from repro.nn.optimizers import Optimizer


class ERMLP(KGEModel):
    """One-hidden-layer ER-MLP trained by reverse-mode autodiff.

    Parameters
    ----------
    dim:
        Entity/relation embedding dimension.
    hidden:
        Hidden layer width.
    """

    name = "ER-MLP"

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        rng: np.random.Generator,
        hidden: int | None = None,
        initializer: str = "xavier_uniform",
    ) -> None:
        if dim < 1:
            raise ConfigError("dim must be >= 1")
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)
        self.dim = int(dim)
        self.hidden = int(hidden) if hidden is not None else 2 * self.dim
        init = get_initializer(initializer)
        self.entity_embeddings = init((self.num_entities, self.dim), rng)
        self.relation_embeddings = init((self.num_relations, self.dim), rng)
        bound = np.sqrt(6.0 / (3 * self.dim + self.hidden))
        self.w1 = rng.uniform(-bound, bound, size=(3 * self.dim, self.hidden))
        self.b1 = np.zeros(self.hidden)
        self.w2 = rng.uniform(-bound, bound, size=(self.hidden, 1))
        self.b2 = np.zeros(1)

    # ---------------------------------------------------------------- scoring
    def _hidden_activations(self, features: np.ndarray) -> np.ndarray:
        return np.tanh(features @ self.w1 + self.b1)

    def _score_features(self, features: np.ndarray) -> np.ndarray:
        return (self._hidden_activations(features) @ self.w2 + self.b2)[:, 0]

    def _features(self, heads, tails, relations) -> np.ndarray:
        h = self.entity_embeddings[np.asarray(heads, dtype=np.int64)]
        t = self.entity_embeddings[np.asarray(tails, dtype=np.int64)]
        r = self.relation_embeddings[np.asarray(relations, dtype=np.int64)]
        return np.concatenate([h, t, r], axis=-1)

    def score_triples(self, heads, tails, relations) -> np.ndarray:
        return self._score_features(self._features(heads, tails, relations))

    def _score_all(self, fixed_first: np.ndarray, fixed_rel: np.ndarray, side: str) -> np.ndarray:
        scores = np.empty((len(fixed_first), self.num_entities), dtype=np.float64)
        all_entities = self.entity_embeddings
        for row in range(len(fixed_first)):
            anchor = np.broadcast_to(fixed_first[row], (self.num_entities, self.dim))
            rel = np.broadcast_to(fixed_rel[row], (self.num_entities, self.dim))
            if side == "tail":
                features = np.concatenate([anchor, all_entities, rel], axis=-1)
            else:
                features = np.concatenate([all_entities, anchor, rel], axis=-1)
            scores[row] = self._score_features(features)
        return scores

    def score_all_tails(self, heads, relations) -> np.ndarray:
        h = self.entity_embeddings[np.asarray(heads, dtype=np.int64)]
        r = self.relation_embeddings[np.asarray(relations, dtype=np.int64)]
        return self._score_all(h, r, side="tail")

    def score_all_heads(self, tails, relations) -> np.ndarray:
        t = self.entity_embeddings[np.asarray(tails, dtype=np.int64)]
        r = self.relation_embeddings[np.asarray(relations, dtype=np.int64)]
        return self._score_all(t, r, side="head")

    def score_candidates(self, anchors, relations, candidates, side="tail") -> np.ndarray:
        """Run the MLP on ``b · c`` candidate feature rows in one pass."""
        anchors, relations, candidates = self._validate_candidate_query(
            anchors, relations, candidates, side
        )
        b, c = candidates.shape
        anchor_vecs = np.broadcast_to(
            self.entity_embeddings[anchors][:, None, :], (b, c, self.dim)
        )
        rel_vecs = np.broadcast_to(
            self.relation_embeddings[relations][:, None, :], (b, c, self.dim)
        )
        cand_vecs = self.entity_embeddings[candidates]
        if side == "tail":
            features = np.concatenate([anchor_vecs, cand_vecs, rel_vecs], axis=-1)
        else:
            features = np.concatenate([cand_vecs, anchor_vecs, rel_vecs], axis=-1)
        return self._score_features(features.reshape(b * c, -1)).reshape(b, c)

    # --------------------------------------------------------------- training
    def train_step(
        self, positives: np.ndarray, negatives: np.ndarray, optimizer: Optimizer
    ) -> float:
        """One autodiff-powered logistic-loss step on the batch."""
        positives = np.asarray(positives, dtype=np.int64)
        negatives = np.asarray(negatives, dtype=np.int64)
        triples = np.concatenate([positives, negatives], axis=0)
        labels = np.concatenate([np.ones(len(positives)), -np.ones(len(negatives))])

        entities = Tensor(self.entity_embeddings, requires_grad=True, name="entities")
        relations = Tensor(self.relation_embeddings, requires_grad=True, name="relations")
        w1 = Tensor(self.w1, requires_grad=True, name="w1")
        b1 = Tensor(self.b1, requires_grad=True, name="b1")
        w2 = Tensor(self.w2, requires_grad=True, name="w2")
        b2 = Tensor(self.b2, requires_grad=True, name="b2")

        h = entities.take_rows(triples[:, 0])
        t = entities.take_rows(triples[:, 1])
        r = relations.take_rows(triples[:, 2])
        features = h.concat(t, axis=-1).concat(r, axis=-1)
        hidden = (features @ w1 + b1).tanh()
        scores = (hidden @ w2 + b2).reshape(len(triples))
        loss = ((scores * Tensor(-labels)).softplus()).mean()
        loss.backward()

        optimizer.step_dense("entities", self.entity_embeddings, entities.grad)
        optimizer.step_dense("relations", self.relation_embeddings, relations.grad)
        optimizer.step_dense("w1", self.w1, w1.grad)
        optimizer.step_dense("b1", self.b1, b1.grad)
        optimizer.step_dense("w2", self.w2, w2.grad)
        optimizer.step_dense("b2", self.b2, b2.grad)
        self._bump_scoring_version()
        return float(loss.data)

    def parameter_count(self) -> int:
        return int(
            self.entity_embeddings.size
            + self.relation_embeddings.size
            + self.w1.size
            + self.b1.size
            + self.w2.size
            + self.b2.size
        )
