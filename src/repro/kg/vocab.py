"""Vocabularies mapping entity / relation names to contiguous integer ids.

Knowledge graph embedding models index embedding tables by integer id, so
the first step of any pipeline is a stable, contiguous mapping from string
names to ``0..n-1``.  :class:`Vocabulary` provides that mapping plus
round-tripping, containment tests, and (de)serialisation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import VocabularyError


class Vocabulary:
    """A bidirectional mapping between names and contiguous integer ids.

    Ids are assigned in insertion order starting from zero.  The mapping is
    append-only: names can be added but never removed, which guarantees that
    ids already handed out stay valid.

    Example
    -------
    >>> vocab = Vocabulary(["dog", "cat"])
    >>> vocab.index("cat")
    1
    >>> vocab.name(0)
    'dog'
    >>> len(vocab)
    2
    """

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._name_to_id: dict[str, int] = {}
        self._names: list[str] = []
        for name in names:
            self.add(name)

    def add(self, name: str) -> int:
        """Add *name* and return its id; raise if it already exists."""
        if not isinstance(name, str):
            raise VocabularyError(f"vocabulary names must be str, got {type(name).__name__}")
        if name in self._name_to_id:
            raise VocabularyError(f"duplicate vocabulary name: {name!r}")
        idx = len(self._names)
        self._name_to_id[name] = idx
        self._names.append(name)
        return idx

    def get_or_add(self, name: str) -> int:
        """Return the id of *name*, adding it first if unseen."""
        existing = self._name_to_id.get(name)
        if existing is not None:
            return existing
        return self.add(name)

    def index(self, name: str) -> int:
        """Return the id of *name*; raise :class:`VocabularyError` if unknown."""
        try:
            return self._name_to_id[name]
        except KeyError:
            raise VocabularyError(f"unknown name: {name!r}") from None

    def indices(self, names: Sequence[str]) -> list[int]:
        """Vectorised :meth:`index` over a sequence of names."""
        return [self.index(name) for name in names]

    def name(self, idx: int) -> str:
        """Return the name with id *idx*; raise :class:`VocabularyError` if out of range."""
        if not 0 <= idx < len(self._names):
            raise VocabularyError(f"id {idx} out of range for vocabulary of size {len(self)}")
        return self._names[idx]

    def names(self, indices: Iterable[int]) -> list[str]:
        """Vectorised :meth:`name` over a sequence of ids."""
        return [self.name(idx) for idx in indices]

    @property
    def all_names(self) -> tuple[str, ...]:
        """All names in id order."""
        return tuple(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._name_to_id

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._names == other._names

    def __repr__(self) -> str:
        preview = ", ".join(repr(n) for n in self._names[:3])
        suffix = ", ..." if len(self._names) > 3 else ""
        return f"Vocabulary([{preview}{suffix}], size={len(self)})"

    def to_list(self) -> list[str]:
        """Serialise to a plain list of names in id order."""
        return list(self._names)

    @classmethod
    def from_list(cls, names: Sequence[str]) -> "Vocabulary":
        """Rebuild a vocabulary from :meth:`to_list` output."""
        return cls(names)
