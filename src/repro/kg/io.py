"""Reading and writing triples in the standard whitespace-separated format.

The on-disk format is the one used by the WN18 / FB15k benchmark releases:
one triple per line, ``head<TAB>relation<TAB>tail`` (note the column order
on disk differs from the in-memory ``(h, t, r)`` order; this module
converts).  A dataset directory contains ``train.txt``, ``valid.txt`` and
``test.txt``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import DatasetError
from repro.kg.graph import KGDataset
from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary

_SPLIT_FILES = {"train": "train.txt", "valid": "valid.txt", "test": "test.txt"}


def read_labeled_triples(path: str | Path) -> list[tuple[str, str, str]]:
    """Read ``head<TAB>relation<TAB>tail`` lines into ``(h, t, r)`` tuples.

    Blank lines are skipped.  Raises :class:`DatasetError` on malformed
    lines so silent truncation cannot occur.
    """
    path = Path(path)
    triples: list[tuple[str, str, str]] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            parts = line.split("\t") if "\t" in line else line.split()
            if len(parts) != 3:
                raise DatasetError(f"{path}:{lineno}: expected 3 columns, got {len(parts)}")
            head, relation, tail = parts
            triples.append((head, tail, relation))
    return triples


def write_labeled_triples(
    path: str | Path, triples: list[tuple[str, str, str]]
) -> None:
    """Write ``(h, t, r)`` tuples as ``head<TAB>relation<TAB>tail`` lines."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for head, tail, relation in triples:
            handle.write(f"{head}\t{relation}\t{tail}\n")


def load_dataset_directory(directory: str | Path, name: str | None = None) -> KGDataset:
    """Load a WN18-style dataset directory with train/valid/test files."""
    directory = Path(directory)
    if not directory.is_dir():
        raise DatasetError(f"not a dataset directory: {directory}")
    splits = {}
    for split, filename in _SPLIT_FILES.items():
        file_path = directory / filename
        if not file_path.exists():
            raise DatasetError(f"missing split file: {file_path}")
        splits[split] = read_labeled_triples(file_path)
    return KGDataset.from_labeled_triples(
        train=splits["train"],
        valid=splits["valid"],
        test=splits["test"],
        name=name or directory.name,
    )


def save_dataset_directory(dataset: KGDataset, directory: str | Path) -> None:
    """Write *dataset* as a WN18-style directory (plus a vocab sidecar).

    The sidecar ``vocab.json`` preserves the exact id order so that a
    round-trip through :func:`load_dataset_directory` +
    :func:`load_vocabularies` reproduces identical id assignments.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for split, filename in _SPLIT_FILES.items():
        triples = dataset.splits[split]
        labeled = [
            (dataset.entities.name(h), dataset.entities.name(t), dataset.relations.name(r))
            for h, t, r in triples
        ]
        write_labeled_triples(directory / filename, labeled)
    sidecar = {
        "name": dataset.name,
        "entities": dataset.entities.to_list(),
        "relations": dataset.relations.to_list(),
    }
    (directory / "vocab.json").write_text(json.dumps(sidecar), encoding="utf-8")


def load_vocabularies(directory: str | Path) -> tuple[Vocabulary, Vocabulary]:
    """Load the ``vocab.json`` sidecar written by :func:`save_dataset_directory`."""
    sidecar_path = Path(directory) / "vocab.json"
    if not sidecar_path.exists():
        raise DatasetError(f"missing vocab sidecar: {sidecar_path}")
    payload = json.loads(sidecar_path.read_text(encoding="utf-8"))
    return (
        Vocabulary.from_list(payload["entities"]),
        Vocabulary.from_list(payload["relations"]),
    )


def load_dataset_with_sidecar(directory: str | Path) -> KGDataset:
    """Load a dataset directory using the vocab sidecar for exact id order."""
    directory = Path(directory)
    entities, relations = load_vocabularies(directory)
    payload = json.loads((directory / "vocab.json").read_text(encoding="utf-8"))
    splits = {}
    for split, filename in _SPLIT_FILES.items():
        labeled = read_labeled_triples(directory / filename)
        rows = [
            (entities.index(h), entities.index(t), relations.index(r))
            for h, t, r in labeled
        ]
        splits[split] = TripleSet(rows, len(entities), len(relations))
    return KGDataset(
        entities=entities,
        relations=relations,
        train=splits["train"],
        valid=splits["valid"],
        test=splits["test"],
        name=payload.get("name", directory.name),
    )
