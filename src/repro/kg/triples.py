"""Numpy-backed triple store.

A :class:`TripleSet` holds an ``(n, 3)`` array of ``(head, tail, relation)``
integer ids.  The column order follows the paper's notation ``(h, t, r)``.
The store is immutable: all transforming operations return new instances,
which keeps dataset splits safe to share between models.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import TripleError

#: Column positions inside the triple array.
HEAD, TAIL, REL = 0, 1, 2


def _as_triple_array(triples: object) -> np.ndarray:
    """Validate and canonicalise raw input into an ``(n, 3)`` int64 array."""
    arr = np.asarray(triples, dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 3)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise TripleError(f"triples must have shape (n, 3), got {arr.shape}")
    if (arr < 0).any():
        raise TripleError("triple ids must be non-negative")
    return arr


class TripleSet:
    """An immutable set of ``(h, t, r)`` triples backed by a numpy array.

    Parameters
    ----------
    triples:
        Anything convertible to an ``(n, 3)`` integer array.
    num_entities, num_relations:
        Optional bounds.  When given, every id is validated against them;
        when omitted they are inferred as ``max + 1``.
    """

    def __init__(
        self,
        triples: object,
        num_entities: int | None = None,
        num_relations: int | None = None,
    ) -> None:
        arr = _as_triple_array(triples)
        arr.setflags(write=False)
        self._arr = arr
        inferred_e = int(arr[:, :2].max()) + 1 if len(arr) else 0
        inferred_r = int(arr[:, REL].max()) + 1 if len(arr) else 0
        self.num_entities = inferred_e if num_entities is None else int(num_entities)
        self.num_relations = inferred_r if num_relations is None else int(num_relations)
        if self.num_entities < inferred_e:
            raise TripleError(
                f"entity id {inferred_e - 1} out of range for num_entities={self.num_entities}"
            )
        if self.num_relations < inferred_r:
            raise TripleError(
                f"relation id {inferred_r - 1} out of range for num_relations={self.num_relations}"
            )

    # ------------------------------------------------------------------ views
    @property
    def array(self) -> np.ndarray:
        """The underlying read-only ``(n, 3)`` int64 array."""
        return self._arr

    @property
    def heads(self) -> np.ndarray:
        """Head entity ids, shape ``(n,)``."""
        return self._arr[:, HEAD]

    @property
    def tails(self) -> np.ndarray:
        """Tail entity ids, shape ``(n,)``."""
        return self._arr[:, TAIL]

    @property
    def relations(self) -> np.ndarray:
        """Relation ids, shape ``(n,)``."""
        return self._arr[:, REL]

    def __len__(self) -> int:
        return len(self._arr)

    def __iter__(self) -> Iterator[tuple[int, int, int]]:
        for h, t, r in self._arr:
            yield int(h), int(t), int(r)

    def __contains__(self, triple: object) -> bool:
        try:
            h, t, r = triple  # type: ignore[misc]
        except (TypeError, ValueError):
            return False
        return (int(h), int(t), int(r)) in self.as_set()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TripleSet):
            return NotImplemented
        return (
            self._arr.shape == other._arr.shape
            and bool(np.array_equal(self._arr, other._arr))
            and self.num_entities == other.num_entities
            and self.num_relations == other.num_relations
        )

    def __repr__(self) -> str:
        return (
            f"TripleSet(n={len(self)}, num_entities={self.num_entities}, "
            f"num_relations={self.num_relations})"
        )

    # -------------------------------------------------------------- transforms
    def _like(self, arr: np.ndarray) -> "TripleSet":
        return TripleSet(arr, self.num_entities, self.num_relations)

    def concat(self, other: "TripleSet") -> "TripleSet":
        """Concatenate two triple sets over the same id spaces."""
        if (other.num_entities, other.num_relations) != (self.num_entities, self.num_relations):
            raise TripleError("cannot concat TripleSets with different id spaces")
        return self._like(np.concatenate([self._arr, other._arr], axis=0))

    def deduplicate(self) -> "TripleSet":
        """Drop duplicate triples, preserving first-occurrence order."""
        _, first = np.unique(self._arr, axis=0, return_index=True)
        return self._like(self._arr[np.sort(first)])

    def shuffled(self, rng: np.random.Generator) -> "TripleSet":
        """Return a row-permuted copy using *rng*."""
        return self._like(self._arr[rng.permutation(len(self._arr))])

    def subset(self, mask_or_indices: np.ndarray) -> "TripleSet":
        """Select rows by boolean mask or integer indices."""
        return self._like(self._arr[np.asarray(mask_or_indices)])

    def with_relations_filtered(self, relation_ids: Iterable[int]) -> "TripleSet":
        """Keep only triples whose relation id is in *relation_ids*."""
        keep = np.isin(self._arr[:, REL], np.fromiter(relation_ids, dtype=np.int64))
        return self._like(self._arr[keep])

    def inverted(self, relation_offset: int) -> "TripleSet":
        """Return the inverse triples ``(t, h, r + relation_offset)``.

        This is the raw operation behind the CPh data-augmentation heuristic
        (Lacroix et al. 2018); see :mod:`repro.kg.augment` for the full
        augmentation that also grows the relation vocabulary.
        """
        inv = self._arr[:, [TAIL, HEAD, REL]].copy()
        inv[:, REL] += relation_offset
        return TripleSet(inv, self.num_entities, self.num_relations + relation_offset)

    # ----------------------------------------------------------------- indexes
    def as_set(self) -> frozenset[tuple[int, int, int]]:
        """All triples as a frozenset of python tuples (cached)."""
        cached = getattr(self, "_tuple_set", None)
        if cached is None:
            cached = frozenset(map(tuple, self._arr.tolist()))
            object.__setattr__(self, "_tuple_set", cached)
        return cached

    def entity_degree(self) -> np.ndarray:
        """Number of triples each entity participates in (head or tail)."""
        deg = np.zeros(self.num_entities, dtype=np.int64)
        np.add.at(deg, self.heads, 1)
        np.add.at(deg, self.tails, 1)
        return deg

    def relation_frequency(self) -> np.ndarray:
        """Number of triples per relation id."""
        freq = np.zeros(self.num_relations, dtype=np.int64)
        np.add.at(freq, self.relations, 1)
        return freq

    @classmethod
    def empty(cls, num_entities: int, num_relations: int) -> "TripleSet":
        """An empty triple set over the given id spaces."""
        return cls(np.empty((0, 3), dtype=np.int64), num_entities, num_relations)
