"""Dataset container: vocabularies + train/valid/test splits + filter index.

:class:`KGDataset` is the object every trainer, evaluator and benchmark in
this repository consumes.  It bundles the entity/relation vocabularies with
the three standard splits and lazily builds the *filter index* required by
the filtered ranking protocol of Bordes et al. (2013): for each
``(h, r)`` the set of known true tails across all splits, and for each
``(t, r)`` the set of known true heads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary


def _sorted_insert(existing: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Merge sorted-unique *values* into sorted-unique *existing*."""
    if not len(existing):
        return values.copy()
    pos = np.searchsorted(existing, values)
    hit = (pos < len(existing)) & (existing[np.minimum(pos, len(existing) - 1)] == values)
    if hit.all():
        return existing
    return np.insert(existing, pos[~hit], values[~hit])


def _sorted_remove(existing: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Drop sorted-unique *values* from sorted-unique *existing* (absent ok)."""
    if not len(existing):
        return existing
    pos = np.searchsorted(existing, values)
    hit = (pos < len(existing)) & (existing[np.minimum(pos, len(existing) - 1)] == values)
    if not hit.any():
        return existing
    return np.delete(existing, pos[hit])


class FilterIndex:
    """Known-triple index used to filter accidental true triples when ranking.

    The index answers two queries, both returning sorted numpy id arrays:

    * :meth:`true_tails` — entities ``t'`` such that ``(h, t', r)`` is known.
    * :meth:`true_heads` — entities ``h'`` such that ``(h', t, r)`` is known.

    The lazy :attr:`KGDataset.filter_index` property is the only place an
    index is built from scratch; every path that *changes* a dataset's
    triples (delta ingestion, inverse augmentation) derives the successor
    index through :meth:`copy` + :meth:`add_triples`/:meth:`remove_triples`
    — per-key sorted-array edits instead of an O(T) rebuild.
    """

    def __init__(self, triples: TripleSet) -> None:
        tails: dict[tuple[int, int], list[int]] = {}
        heads: dict[tuple[int, int], list[int]] = {}
        for h, t, r in triples:
            tails.setdefault((h, r), []).append(t)
            heads.setdefault((t, r), []).append(h)
        self._tails = {k: np.unique(np.asarray(v, dtype=np.int64)) for k, v in tails.items()}
        self._heads = {k: np.unique(np.asarray(v, dtype=np.int64)) for k, v in heads.items()}
        self.num_entities = triples.num_entities
        self.num_relations = triples.num_relations

    _EMPTY = np.empty(0, dtype=np.int64)

    def true_tails(self, head: int, relation: int) -> np.ndarray:
        """Sorted ids of all known true tails of ``(head, ?, relation)``."""
        return self._tails.get((int(head), int(relation)), self._EMPTY)

    def true_heads(self, tail: int, relation: int) -> np.ndarray:
        """Sorted ids of all known true heads of ``(?, tail, relation)``."""
        return self._heads.get((int(tail), int(relation)), self._EMPTY)

    def contains(self, head: int, tail: int, relation: int) -> bool:
        """Whether ``(head, tail, relation)`` is a known true triple."""
        tails = self.true_tails(head, relation)
        pos = int(np.searchsorted(tails, tail))
        return pos < len(tails) and int(tails[pos]) == int(tail)

    # ------------------------------------------------------- incremental updates
    @staticmethod
    def _as_rows(triples) -> np.ndarray:
        rows = triples.array if isinstance(triples, TripleSet) else triples
        rows = np.atleast_2d(np.asarray(rows, dtype=np.int64))
        if rows.ndim != 2 or (len(rows) and rows.shape[1] != 3):
            raise DatasetError(
                f"expected (n, 3) triple rows, got shape {rows.shape}"
            )
        return rows

    def copy(self) -> "FilterIndex":
        """A shallow copy that is safe to mutate independently.

        Per-key arrays are shared with the original: the update methods
        replace whole arrays instead of writing into them, so copying is
        O(keys) and the source index never observes a mutation.
        """
        clone = object.__new__(FilterIndex)
        clone._tails = dict(self._tails)
        clone._heads = dict(self._heads)
        clone.num_entities = self.num_entities
        clone.num_relations = self.num_relations
        return clone

    def grow(self, num_entities: int | None = None, num_relations: int | None = None) -> None:
        """Expand the id spaces the index accepts (never shrinks them)."""
        if num_entities is not None:
            if num_entities < self.num_entities:
                raise DatasetError(
                    f"cannot shrink filter index entities {self.num_entities} -> {num_entities}"
                )
            self.num_entities = int(num_entities)
        if num_relations is not None:
            if num_relations < self.num_relations:
                raise DatasetError(
                    f"cannot shrink filter index relations {self.num_relations} -> {num_relations}"
                )
            self.num_relations = int(num_relations)

    def _update(self, rows: np.ndarray, op) -> None:
        grouped_tails: dict[tuple[int, int], list[int]] = {}
        grouped_heads: dict[tuple[int, int], list[int]] = {}
        for h, t, r in rows:
            grouped_tails.setdefault((int(h), int(r)), []).append(int(t))
            grouped_heads.setdefault((int(t), int(r)), []).append(int(h))
        for mapping, grouped in ((self._tails, grouped_tails), (self._heads, grouped_heads)):
            for key, values in grouped.items():
                updated = op(
                    mapping.get(key, self._EMPTY),
                    np.unique(np.asarray(values, dtype=np.int64)),
                )
                if len(updated):
                    mapping[key] = updated
                else:
                    # Mirror from-scratch construction: no empty keys.
                    mapping.pop(key, None)

    def add_triples(self, triples) -> None:
        """Register *triples* as known — per-key sorted insert, no rebuild."""
        rows = self._as_rows(triples)
        if not len(rows):
            return
        if rows.min() < 0 or rows[:, :2].max() >= self.num_entities or (
            rows[:, 2].max() >= self.num_relations
        ):
            raise DatasetError(
                f"triple ids out of range for filter index over "
                f"{self.num_entities} entities / {self.num_relations} relations"
            )
        self._update(rows, _sorted_insert)

    def remove_triples(self, triples) -> None:
        """Forget *triples* — per-key sorted removal; absent triples are ignored.

        Keys whose last member is removed are deleted outright, so an
        incrementally maintained index is structurally identical to one
        rebuilt from the surviving triples.
        """
        rows = self._as_rows(triples)
        if not len(rows):
            return
        self._update(rows, _sorted_remove)


@dataclass
class KGDataset:
    """A knowledge graph dataset with train/valid/test splits.

    Attributes
    ----------
    entities, relations:
        Vocabularies; ``len(entities)`` and ``len(relations)`` define the id
        spaces shared by all three splits.
    train, valid, test:
        The splits as :class:`TripleSet` instances over those id spaces.
    name:
        Human-readable dataset name used in logs and benchmark output.
    """

    entities: Vocabulary
    relations: Vocabulary
    train: TripleSet
    valid: TripleSet
    test: TripleSet
    name: str = "unnamed"
    _filter_index: FilterIndex | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        ne, nr = len(self.entities), len(self.relations)
        for split_name, split in self.splits.items():
            if split.num_entities > ne or split.num_relations > nr:
                raise DatasetError(
                    f"split {split_name!r} references ids outside the vocabularies "
                    f"({split.num_entities} entities / {split.num_relations} relations "
                    f"vs {ne} / {nr})"
                )
        if len(self.train) == 0:
            raise DatasetError("training split must be non-empty")
        train_set = self.train.as_set()
        for split_name, split in (("valid", self.valid), ("test", self.test)):
            overlap = len(train_set & split.as_set())
            if overlap:
                raise DatasetError(
                    f"{overlap} triples appear in both train and {split_name}; "
                    "splits must be disjoint"
                )

    # ------------------------------------------------------------------ basics
    @property
    def num_entities(self) -> int:
        """Size of the entity id space."""
        return len(self.entities)

    @property
    def num_relations(self) -> int:
        """Size of the relation id space."""
        return len(self.relations)

    @property
    def splits(self) -> dict[str, TripleSet]:
        """Mapping of split name to :class:`TripleSet`."""
        return {"train": self.train, "valid": self.valid, "test": self.test}

    def all_triples(self) -> TripleSet:
        """Union of all three splits (with duplicates removed)."""
        return self.train.concat(self.valid).concat(self.test).deduplicate()

    @property
    def filter_index(self) -> FilterIndex:
        """Filter index over *all* splits, built lazily and cached."""
        if self._filter_index is None:
            self._filter_index = FilterIndex(self.all_triples())
        return self._filter_index

    def __repr__(self) -> str:
        return (
            f"KGDataset(name={self.name!r}, entities={self.num_entities}, "
            f"relations={self.num_relations}, train={len(self.train)}, "
            f"valid={len(self.valid)}, test={len(self.test)})"
        )

    # ------------------------------------------------------------- constructors
    @classmethod
    def from_labeled_triples(
        cls,
        train: list[tuple[str, str, str]],
        valid: list[tuple[str, str, str]],
        test: list[tuple[str, str, str]],
        name: str = "unnamed",
    ) -> "KGDataset":
        """Build a dataset from ``(head, tail, relation)`` *name* triples.

        Vocabularies are constructed from the union of all splits, in first
        occurrence order over train, then valid, then test.
        """
        entities = Vocabulary()
        relations = Vocabulary()
        split_arrays = []
        for labeled in (train, valid, test):
            rows = np.empty((len(labeled), 3), dtype=np.int64)
            for i, (h, t, r) in enumerate(labeled):
                rows[i, 0] = entities.get_or_add(h)
                rows[i, 1] = entities.get_or_add(t)
                rows[i, 2] = relations.get_or_add(r)
            split_arrays.append(rows)
        ne, nr = len(entities), len(relations)
        return cls(
            entities=entities,
            relations=relations,
            train=TripleSet(split_arrays[0], ne, nr),
            valid=TripleSet(split_arrays[1], ne, nr),
            test=TripleSet(split_arrays[2], ne, nr),
            name=name,
        )


def split_triples(
    triples: TripleSet,
    valid_fraction: float,
    test_fraction: float,
    rng: np.random.Generator,
) -> tuple[TripleSet, TripleSet, TripleSet]:
    """Randomly split *triples* into train/valid/test.

    The split is by uniform permutation; callers that need every entity to
    appear in train (the usual requirement so that test entities have
    trained embeddings) should use
    :func:`repro.kg.synthetic.generate_synthetic_kg`, which enforces it.
    """
    if not 0.0 <= valid_fraction < 1.0 or not 0.0 <= test_fraction < 1.0:
        raise DatasetError("split fractions must lie in [0, 1)")
    if valid_fraction + test_fraction >= 1.0:
        raise DatasetError("valid + test fractions must leave room for train")
    n = len(triples)
    order = rng.permutation(n)
    n_valid = int(round(n * valid_fraction))
    n_test = int(round(n * test_fraction))
    valid_idx = order[:n_valid]
    test_idx = order[n_valid : n_valid + n_test]
    train_idx = order[n_valid + n_test :]
    return triples.subset(train_idx), triples.subset(valid_idx), triples.subset(test_idx)
