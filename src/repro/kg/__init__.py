"""Knowledge-graph substrate: vocabularies, triple stores, datasets.

Public entry points:

* :class:`~repro.kg.vocab.Vocabulary` — name <-> id mapping.
* :class:`~repro.kg.triples.TripleSet` — immutable numpy triple store.
* :class:`~repro.kg.graph.KGDataset` — splits + filter index.
* :func:`~repro.kg.synthetic.generate_synthetic_kg` — WN18-like generator.
* :func:`~repro.kg.augment.augment_with_inverses` — the CPh heuristic.
"""

from repro.kg.augment import (
    augment_with_inverses,
    augmented_relation_name,
    is_augmented_relation_name,
)
from repro.kg.graph import FilterIndex, KGDataset, split_triples
from repro.kg.io import (
    load_dataset_directory,
    load_dataset_with_sidecar,
    read_labeled_triples,
    save_dataset_directory,
    write_labeled_triples,
)
from repro.kg.patterns import (
    RelationPatternReport,
    analyze_relations,
    find_inverse_partner,
    inverse_leakage,
    relation_symmetry,
)
from repro.kg.stats import DatasetStats, compute_stats
from repro.kg.synthetic import (
    SyntheticKGConfig,
    generate_synthetic_kg,
    inverse_relation_pairs,
    symmetric_relation_names,
)
from repro.kg.synthetic_fb import SyntheticFBConfig, generate_synthetic_fb15k
from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary

__all__ = [
    "DatasetStats",
    "FilterIndex",
    "KGDataset",
    "RelationPatternReport",
    "SyntheticFBConfig",
    "SyntheticKGConfig",
    "TripleSet",
    "Vocabulary",
    "analyze_relations",
    "augment_with_inverses",
    "augmented_relation_name",
    "compute_stats",
    "find_inverse_partner",
    "generate_synthetic_fb15k",
    "generate_synthetic_kg",
    "inverse_leakage",
    "inverse_relation_pairs",
    "is_augmented_relation_name",
    "load_dataset_directory",
    "load_dataset_with_sidecar",
    "read_labeled_triples",
    "relation_symmetry",
    "save_dataset_directory",
    "split_triples",
    "symmetric_relation_names",
    "write_labeled_triples",
]
