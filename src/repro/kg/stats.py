"""Summary statistics for knowledge graph datasets."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import KGDataset


@dataclass(frozen=True)
class DatasetStats:
    """Headline statistics of a :class:`~repro.kg.graph.KGDataset`."""

    name: str
    num_entities: int
    num_relations: int
    num_train: int
    num_valid: int
    num_test: int
    mean_entity_degree: float
    median_entity_degree: float
    max_entity_degree: int
    isolated_entities: int
    relation_frequencies: tuple[int, ...]

    def format_table(self) -> str:
        """Render the stats as an aligned plain-text table."""
        rows = [
            ("dataset", self.name),
            ("entities", f"{self.num_entities:,}"),
            ("relations", f"{self.num_relations:,}"),
            ("train triples", f"{self.num_train:,}"),
            ("valid triples", f"{self.num_valid:,}"),
            ("test triples", f"{self.num_test:,}"),
            ("mean degree", f"{self.mean_entity_degree:.2f}"),
            ("median degree", f"{self.median_entity_degree:.1f}"),
            ("max degree", f"{self.max_entity_degree:,}"),
            ("isolated entities", f"{self.isolated_entities:,}"),
        ]
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)


def compute_stats(dataset: KGDataset) -> DatasetStats:
    """Compute :class:`DatasetStats` over the training split of *dataset*."""
    degree = dataset.train.entity_degree()
    return DatasetStats(
        name=dataset.name,
        num_entities=dataset.num_entities,
        num_relations=dataset.num_relations,
        num_train=len(dataset.train),
        num_valid=len(dataset.valid),
        num_test=len(dataset.test),
        mean_entity_degree=float(degree.mean()) if len(degree) else 0.0,
        median_entity_degree=float(np.median(degree)) if len(degree) else 0.0,
        max_entity_degree=int(degree.max()) if len(degree) else 0,
        isolated_entities=int((degree == 0).sum()),
        relation_frequencies=tuple(int(c) for c in dataset.train.relation_frequency()),
    )
