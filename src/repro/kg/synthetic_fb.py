"""Synthetic FB15k-flavoured knowledge graph generator.

The paper evaluates on WN18 but notes (§5.1) that "the relative
performance on all datasets was quite consistent".  To let the
repository check that claim, this module generates a second synthetic
dataset with *Freebase-like* rather than WordNet-like structure:

* many relations (templated: several instances per template) instead of
  WN18's 18,
* entity *types* (person/film/place-style) with typed relation slots,
* heavy N-to-N and 1-to-N relations (hub structure) rather than an
  almost-tree taxonomy,
* still containing inverse-pair templates, because FB15k too is famous
  for inverse leakage (Toutanova & Chen 2015).

The same Table 2 ordering (ComplEx ≈ CPh > DistMult >> CP) is expected
to hold here; ``tests/integration/test_dataset_consistency.py`` checks
it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.kg.graph import KGDataset
from repro.kg.synthetic import _coverage_fixup  # shared split hygiene
from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary


@dataclass(frozen=True)
class SyntheticFBConfig:
    """Configuration for :func:`generate_synthetic_fb15k`.

    Parameters
    ----------
    num_entities:
        Number of entities (FB15k has 14,951; defaults stay laptop-sized).
    num_types:
        Number of entity types; relations connect specific type pairs.
    relation_templates:
        Number of relation *templates*; each template is instantiated
        ``instances_per_template`` times with fresh type pairs, giving a
        relation count closer to FB15k's hundreds than WN18's 18.
    instances_per_template:
        Relation instances per template.
    facts_per_relation:
        Expected number of subject entities per relation instance.
    fanout:
        Mean number of objects per subject for N-to-N relations.
    """

    num_entities: int = 1200
    num_types: int = 8
    relation_templates: int = 10
    instances_per_template: int = 4
    facts_per_relation: int = 60
    fanout: float = 2.5
    valid_fraction: float = 0.04
    test_fraction: float = 0.04
    seed: int = 0
    name: str = "synthetic-fb15k"

    def __post_init__(self) -> None:
        if self.num_entities < 20:
            raise ConfigError("num_entities must be >= 20")
        if not 1 <= self.num_types <= self.num_entities // 2:
            raise ConfigError("num_types must be in [1, num_entities/2]")
        if self.relation_templates < 1 or self.instances_per_template < 1:
            raise ConfigError("need at least one relation template/instance")
        if self.fanout <= 0 or self.facts_per_relation < 1:
            raise ConfigError("fanout and facts_per_relation must be positive")
        if self.valid_fraction + self.test_fraction >= 0.5:
            raise ConfigError("eval fractions unreasonably large")


def generate_synthetic_fb15k(config: SyntheticFBConfig | None = None) -> KGDataset:
    """Generate a Freebase-flavoured synthetic dataset.

    Every relation instance picks a (subject-type, object-type) pair; a
    random half of the instances also assert an inverse twin.  Facts are
    N-to-N: each sampled subject links to ``~fanout`` objects of the
    object type.
    """
    config = config or SyntheticFBConfig()
    rng = np.random.default_rng(config.seed)
    types = rng.integers(0, config.num_types, size=config.num_entities)
    members = [np.flatnonzero(types == t) for t in range(config.num_types)]
    # guarantee non-empty types by reassigning if necessary
    for t, member in enumerate(members):
        if len(member) == 0:
            victim = int(rng.integers(0, config.num_entities))
            types[victim] = t
    members = [np.flatnonzero(types == t) for t in range(config.num_types)]

    relations = Vocabulary()
    rows: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int, int]] = set()

    def add(head: int, tail: int, relation: int) -> None:
        key = (head, tail, relation)
        if head != tail and key not in seen:
            seen.add(key)
            rows.append(key)

    for template in range(config.relation_templates):
        for instance in range(config.instances_per_template):
            subject_type = int(rng.integers(0, config.num_types))
            object_type = int(rng.integers(0, config.num_types))
            forward = relations.add(f"rel_{template:02d}_{instance}")
            inverse = None
            if rng.random() < 0.5:
                inverse = relations.add(f"rel_{template:02d}_{instance}_inv")
            subjects = rng.choice(
                members[subject_type],
                size=min(config.facts_per_relation, len(members[subject_type])),
                replace=False,
            )
            for subject in subjects:
                n_objects = 1 + rng.poisson(max(config.fanout - 1.0, 0.0))
                objects = rng.choice(members[object_type], size=n_objects)
                for obj in objects:
                    add(int(subject), int(obj), forward)
                    if inverse is not None:
                        add(int(obj), int(subject), inverse)

    if not rows:
        raise ConfigError("generator produced no triples; increase densities")
    triples = np.asarray(rows, dtype=np.int64)
    order = rng.permutation(len(triples))
    triples = triples[order]

    n = len(triples)
    n_valid = int(round(config.valid_fraction * n))
    n_test = int(round(config.test_fraction * n))
    assignment = np.zeros(n, dtype=np.int64)
    assignment[:n_valid] = 1
    assignment[n_valid : n_valid + n_test] = 2
    assignment = assignment[rng.permutation(n)]
    assignment = _coverage_fixup(triples, assignment, config.num_entities, len(relations))

    entities = Vocabulary(f"m.{i:06d}" for i in range(config.num_entities))
    ne, nr = config.num_entities, len(relations)
    return KGDataset(
        entities=entities,
        relations=relations,
        train=TripleSet(triples[assignment == 0], ne, nr),
        valid=TripleSet(triples[assignment == 1], ne, nr),
        test=TripleSet(triples[assignment == 2], ne, nr),
        name=config.name,
    )
