"""Synthetic WordNet-like knowledge graph generator.

The paper evaluates on WN18, which is not redistributable inside this
offline environment, so experiments run on a synthetic dataset that
reproduces the *structural* properties of WN18 that drive every result in
the paper:

* **Inverse relation pairs** (hypernym/hyponym, part_of/has_part,
  member_of_domain/domain_member).  WN18's famous quirk is that ~94% of
  test triples have their inverse counterpart in the training set; a plain
  random split over a graph asserted in both directions reproduces this
  leakage automatically (the partner of an eval triple lands in train with
  probability ≈ the train fraction).  This leakage is exactly what CP
  cannot exploit (role-based embeddings are decoupled) and what
  ComplEx/CPh exploit well — the core empirical finding of Table 2.
* **Symmetric relations** (similar_to, verb_group, also_see) that DistMult
  models perfectly.
* **Asymmetric hierarchy edges** whose direction DistMult provably cannot
  distinguish (its score is symmetric), capping its MRR below
  ComplEx/CPh — the DistMult row of Table 2.
* **Compositional shortcuts** (grandparent edges) and a low-frequency tail
  of relations, mimicking WN18's skewed relation frequency distribution.

Entities are organised as a random recursive tree (a toy taxonomy) with a
cluster overlay (toy synsets' semantic fields).  All randomness flows from
one :class:`numpy.random.Generator` seeded by the config, so generation is
fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.kg.graph import KGDataset
from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary

#: Relation inventory: (name, kind, inverse_name_or_None).
#: Kinds: "hierarchy" (tree edges, asymmetric), "composed" (grandparent),
#: "intra_cluster" (directed within cluster), "hub" (entity -> domain hub),
#: "symmetric" (asserted both ways under the same relation).
_RELATION_PLAN: tuple[tuple[str, str, str | None], ...] = (
    ("hypernym", "hierarchy", "hyponym"),
    ("instance_hypernym", "composed", "instance_hyponym"),
    ("part_of", "intra_cluster", "has_part"),
    ("member_of_domain", "hub", "domain_member"),
    ("similar_to", "symmetric", None),
    ("verb_group", "symmetric", None),
    ("also_see", "symmetric", None),
    ("attribute", "intra_cluster", "attribute_of"),
)


@dataclass(frozen=True)
class SyntheticKGConfig:
    """Configuration for :func:`generate_synthetic_kg`.

    Parameters
    ----------
    num_entities:
        Number of entities (WN18 has 40,943; benches default to ~1.5k).
    num_clusters:
        Number of semantic clusters used by intra-cluster and symmetric
        relations.
    num_domains:
        Number of hub entities that act as "domain" targets.
    intra_cluster_facts_per_entity:
        Density knob for directed intra-cluster relations.
    symmetric_facts_per_entity:
        Density knob for symmetric relations.
    composed_fraction:
        Fraction of tree nodes that also get a grandparent shortcut edge.
    valid_fraction, test_fraction:
        Eval split sizes as fractions of all triples (WN18 uses ~3.3% each).
    seed:
        Seed for the single generator that drives all sampling.
    scale:
        Entity-count scale knob: multiplies ``num_entities``,
        ``num_clusters`` and ``num_domains`` before generation, keeping
        their ratios (and therefore the graph's structural statistics)
        fixed.  ``1.0`` (default) leaves the paper-scale configuration
        untouched; ``scale=100`` on the defaults yields a deterministic
        150k-entity graph for retrieval/serving benchmarks.
    """

    num_entities: int = 1500
    num_clusters: int = 60
    num_domains: int = 12
    intra_cluster_facts_per_entity: float = 1.0
    symmetric_facts_per_entity: float = 1.0
    composed_fraction: float = 0.35
    valid_fraction: float = 0.04
    test_fraction: float = 0.04
    seed: int = 0
    name: str = "synthetic-wn18"
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigError("scale must be > 0")
        if self.num_entities < 10:
            raise ConfigError("num_entities must be >= 10")
        if not 1 <= self.num_clusters <= self.num_entities:
            raise ConfigError("num_clusters must be in [1, num_entities]")
        if not 1 <= self.num_domains <= self.num_entities:
            raise ConfigError("num_domains must be in [1, num_entities]")
        if self.valid_fraction + self.test_fraction >= 0.5:
            raise ConfigError("eval fractions unreasonably large (>= 0.5 combined)")
        if min(self.valid_fraction, self.test_fraction) < 0:
            raise ConfigError("eval fractions must be non-negative")

    def apply_scale(self) -> "SyntheticKGConfig":
        """The equivalent ``scale=1`` config with the counts multiplied out.

        A no-op at ``scale=1.0`` (the same instance is returned), so the
        paper-scale generation path is byte-for-byte unchanged.
        """
        if self.scale == 1.0:
            return self
        import dataclasses

        return dataclasses.replace(
            self,
            num_entities=max(10, int(round(self.num_entities * self.scale))),
            num_clusters=max(1, int(round(self.num_clusters * self.scale))),
            num_domains=max(1, int(round(self.num_domains * self.scale))),
            scale=1.0,
        )


@dataclass
class _FactBuilder:
    """Accumulates (h, t, r) rows while deduplicating and skipping loops."""

    rows: list[tuple[int, int, int]] = field(default_factory=list)
    seen: set[tuple[int, int, int]] = field(default_factory=set)

    def add(self, head: int, tail: int, relation: int) -> None:
        if head == tail:
            return
        key = (head, tail, relation)
        if key in self.seen:
            return
        self.seen.add(key)
        self.rows.append(key)


def _build_relation_vocab() -> tuple[Vocabulary, dict[str, int]]:
    relations = Vocabulary()
    for name, _kind, inverse in _RELATION_PLAN:
        relations.add(name)
        if inverse is not None:
            relations.add(inverse)
    return relations, {name: relations.index(name) for name in relations}


def inverse_relation_pairs() -> tuple[tuple[str, str], ...]:
    """The (relation, inverse-relation) name pairs asserted by the generator."""
    return tuple(
        (name, inverse) for name, _kind, inverse in _RELATION_PLAN if inverse is not None
    )


def symmetric_relation_names() -> tuple[str, ...]:
    """Names of the relations asserted symmetrically by the generator."""
    return tuple(name for name, kind, _inv in _RELATION_PLAN if kind == "symmetric")


def _sample_tree_parents(num_entities: int, rng: np.random.Generator) -> np.ndarray:
    """Random recursive tree: parent of node i is uniform over 0..i-1."""
    parents = np.zeros(num_entities, dtype=np.int64)
    for node in range(1, num_entities):
        parents[node] = rng.integers(0, node)
    return parents


def _generate_facts(config: SyntheticKGConfig, rng: np.random.Generator) -> tuple[
    np.ndarray, Vocabulary
]:
    relations, rel_id = _build_relation_vocab()
    n = config.num_entities
    parents = _sample_tree_parents(n, rng)
    clusters = rng.integers(0, config.num_clusters, size=n)
    domain_hubs = rng.choice(n, size=config.num_domains, replace=False)
    cluster_to_domain = rng.integers(0, config.num_domains, size=config.num_clusters)
    cluster_members: list[np.ndarray] = [
        np.flatnonzero(clusters == c) for c in range(config.num_clusters)
    ]

    facts = _FactBuilder()

    def add_pair(head: int, tail: int, fwd: str, inverse: str | None) -> None:
        facts.add(head, tail, rel_id[fwd])
        if inverse is not None:
            facts.add(tail, head, rel_id[inverse])

    # Hierarchy: every non-root node points to its parent (and back).
    for node in range(1, n):
        add_pair(node, int(parents[node]), "hypernym", "hyponym")

    # Composed shortcuts: child -> grandparent for a sampled subset.
    eligible = np.arange(2, n)
    n_composed = int(round(config.composed_fraction * len(eligible)))
    for node in rng.choice(eligible, size=n_composed, replace=False):
        grandparent = int(parents[parents[node]])
        add_pair(int(node), grandparent, "instance_hypernym", "instance_hyponym")

    # Directed intra-cluster relations (part_of, attribute).
    for fwd, inverse in (("part_of", "has_part"), ("attribute", "attribute_of")):
        n_facts = int(round(config.intra_cluster_facts_per_entity * n / 2))
        heads = rng.integers(0, n, size=n_facts)
        for head in heads:
            members = cluster_members[clusters[head]]
            if len(members) < 2:
                continue
            tail = int(rng.choice(members))
            add_pair(int(head), tail, fwd, inverse)

    # Hub relations: entity -> the domain hub of its cluster.
    hub_candidates = rng.choice(n, size=int(round(0.4 * n)), replace=False)
    for head in hub_candidates:
        hub = int(domain_hubs[cluster_to_domain[clusters[head]]])
        add_pair(int(head), hub, "member_of_domain", "domain_member")

    # Symmetric relations: both directions under the same relation id.
    symmetric_names = symmetric_relation_names()
    for name in symmetric_names:
        density = config.symmetric_facts_per_entity / max(len(symmetric_names), 1)
        n_facts = int(round(density * n))
        heads = rng.integers(0, n, size=n_facts)
        for head in heads:
            members = cluster_members[clusters[head]]
            if len(members) < 2:
                continue
            tail = int(rng.choice(members))
            if tail == head:
                continue
            facts.add(int(head), tail, rel_id[name])
            facts.add(tail, int(head), rel_id[name])

    return np.asarray(facts.rows, dtype=np.int64), relations


def _coverage_fixup(
    triples: np.ndarray,
    assignment: np.ndarray,
    num_entities: int,
    num_relations: int,
) -> np.ndarray:
    """Move eval triples to train until every entity/relation occurs in train.

    ``assignment`` maps each triple row to 0=train, 1=valid, 2=test and is
    modified in place (and also returned).
    """
    train_mask = assignment == 0
    entity_covered = np.zeros(num_entities, dtype=bool)
    entity_covered[triples[train_mask, 0]] = True
    entity_covered[triples[train_mask, 1]] = True
    relation_covered = np.zeros(num_relations, dtype=bool)
    relation_covered[triples[train_mask, 2]] = True

    for row in np.flatnonzero(~train_mask):
        h, t, r = triples[row]
        if not (entity_covered[h] and entity_covered[t] and relation_covered[r]):
            assignment[row] = 0
            entity_covered[h] = entity_covered[t] = True
            relation_covered[r] = True
    return assignment


def generate_synthetic_kg(config: SyntheticKGConfig | None = None) -> KGDataset:
    """Generate a synthetic WN18-like dataset.

    Returns a :class:`KGDataset` whose train/valid/test splits are a plain
    random split of the asserted triples (reproducing WN18's inverse
    leakage), post-processed so that every entity and relation occurs in
    the training split.
    """
    config = (config or SyntheticKGConfig()).apply_scale()
    rng = np.random.default_rng(config.seed)
    triples, relations = _generate_facts(config, rng)
    if len(triples) == 0:
        raise ConfigError("generator produced no triples; densities too low")
    order = rng.permutation(len(triples))
    triples = triples[order]

    n = len(triples)
    n_valid = int(round(config.valid_fraction * n))
    n_test = int(round(config.test_fraction * n))
    assignment = np.zeros(n, dtype=np.int64)
    assignment[:n_valid] = 1
    assignment[n_valid : n_valid + n_test] = 2
    assignment = assignment[rng.permutation(n)]
    assignment = _coverage_fixup(triples, assignment, config.num_entities, len(relations))

    entities = Vocabulary(f"entity_{i:05d}" for i in range(config.num_entities))
    ne, nr = config.num_entities, len(relations)
    return KGDataset(
        entities=entities,
        relations=relations,
        train=TripleSet(triples[assignment == 0], ne, nr),
        valid=TripleSet(triples[assignment == 1], ne, nr),
        test=TripleSet(triples[assignment == 2], ne, nr),
        name=config.name,
    )
