"""Relation-pattern analysis: symmetry, inversion, leakage.

These diagnostics quantify the structural properties that the paper's
empirical findings hinge on.  They are used by tests to certify that the
synthetic dataset reproduces WN18's structure, and are exposed publicly so
users can audit their own datasets (e.g. to predict whether DistMult's
symmetric score function will be handicapped).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import KGDataset
from repro.kg.triples import TripleSet


@dataclass(frozen=True)
class RelationPatternReport:
    """Per-relation structural summary.

    Attributes
    ----------
    relation:
        Relation id.
    count:
        Number of triples with this relation.
    symmetry:
        Fraction of triples ``(h, t, r)`` whose reverse ``(t, h, r)`` is
        also asserted.  1.0 for fully symmetric relations, 0.0 for fully
        antisymmetric ones.
    inverse_partner:
        Relation id ``r'`` maximising the inverse-match score, or ``None``
        when no relation reverses this one at all.
    inverse_score:
        Fraction of triples ``(h, t, r)`` with ``(t, h, r')`` asserted for
        the chosen partner.
    """

    relation: int
    count: int
    symmetry: float
    inverse_partner: int | None
    inverse_score: float


def relation_symmetry(triples: TripleSet, relation: int) -> float:
    """Fraction of the relation's triples whose reverse is also asserted."""
    pool = triples.as_set()
    rel_triples = [(h, t) for h, t, r in triples if r == relation]
    if not rel_triples:
        return 0.0
    hits = sum((t, h, relation) in pool for h, t in rel_triples)
    return hits / len(rel_triples)


def find_inverse_partner(triples: TripleSet, relation: int) -> tuple[int | None, float]:
    """Find the relation that most often reverses *relation*.

    Returns ``(partner_id, score)`` where score is the fraction of triples
    ``(h, t, relation)`` that have ``(t, h, partner)`` asserted.  The
    relation itself is excluded (that case is symmetry, not inversion).
    """
    arr = triples.array
    mask = arr[:, 2] == relation
    if not mask.any():
        return None, 0.0
    pairs = {(int(h), int(t)) for h, t, _ in arr[mask]}
    counts = np.zeros(triples.num_relations, dtype=np.int64)
    for h, t, r in arr:
        if r != relation and (int(t), int(h)) in pairs:
            counts[r] += 1
    partner = int(np.argmax(counts))
    if counts[partner] == 0:
        return None, 0.0
    return partner, float(counts[partner] / mask.sum())


def analyze_relations(triples: TripleSet) -> list[RelationPatternReport]:
    """Build a :class:`RelationPatternReport` for every relation."""
    reports = []
    freq = triples.relation_frequency()
    for relation in range(triples.num_relations):
        partner, score = find_inverse_partner(triples, relation)
        reports.append(
            RelationPatternReport(
                relation=relation,
                count=int(freq[relation]),
                symmetry=relation_symmetry(triples, relation),
                inverse_partner=partner,
                inverse_score=score,
            )
        )
    return reports


def inverse_leakage(dataset: KGDataset, split: str = "test") -> float:
    """Fraction of eval triples whose reverse pair appears in training.

    This is the statistic that explains WN18's easiness (~0.94 there) and
    the CP-vs-CPh gap: a model that can relate ``(h, t, r)`` to the
    training triple ``(t, h, r')`` — via shared embeddings (ComplEx) or
    explicit augmentation (CPh) — answers leaked eval triples almost for
    free, while CP's decoupled role embeddings cannot.
    """
    eval_split = dataset.splits[split]
    if len(eval_split) == 0:
        return 0.0
    train_pairs = {(int(h), int(t)) for h, t, _ in dataset.train.array}
    hits = sum((int(t), int(h)) in train_pairs for h, t, _ in eval_split.array)
    return hits / len(eval_split)
