"""Inverse-triple data augmentation — the CPh heuristic.

Lacroix et al. (2018) showed that CP becomes competitive with ComplEx once
the training data is augmented with an inverse triple ``(t, h, r_a)`` for
every training triple ``(h, t, r)``, where ``r_a`` is a fresh "augmented"
relation paired with ``r``.  The paper under reproduction (Eq. 7/11 and
Table 1) analyses this heuristic as a two-embedding interaction: mapping
``r_a`` to the second relation embedding ``r^(2)`` turns CPh into the
weight vector ``(0, 0, 1, 0, 0, 1, 0, 0)``.

This module implements the dataset-level form of the heuristic: it doubles
the relation vocabulary (``r`` at id ``i`` gains ``r_a`` at id ``i + R``)
and doubles the training split.  Validation and test splits are *not*
augmented — evaluation stays on the original relations.
"""

from __future__ import annotations

from repro.kg.graph import KGDataset
from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary

#: Suffix appended to a relation name to form its augmented inverse name.
INVERSE_SUFFIX = "_inverse_aug"


def augmented_relation_name(name: str) -> str:
    """The name of the augmented inverse relation for *name*."""
    return f"{name}{INVERSE_SUFFIX}"


def is_augmented_relation_name(name: str) -> bool:
    """Whether *name* denotes an augmented inverse relation."""
    return name.endswith(INVERSE_SUFFIX)


def augment_with_inverses(dataset: KGDataset) -> KGDataset:
    """Return a new dataset with CPh inverse augmentation applied to train.

    For a dataset with ``R`` relations the result has ``2R`` relations; the
    training split contains the original triples followed by their inverses
    ``(t, h, r + R)``.  Valid/test are carried over unchanged (but re-typed
    to the doubled relation space, so the same model can score them).
    """
    num_relations = dataset.num_relations
    relations = Vocabulary(dataset.relations.to_list())
    for name in dataset.relations:
        # Repeated augmentation (augmenting an already-augmented dataset)
        # would collide on names; uniquify with a numeric suffix so the
        # id layout (augmented id = original id + R) always holds.
        candidate = augmented_relation_name(name)
        counter = 2
        while candidate in relations:
            candidate = f"{augmented_relation_name(name)}{counter}"
            counter += 1
        relations.add(candidate)

    train = dataset.train
    inverse_train = train.inverted(relation_offset=num_relations)
    augmented_train = TripleSet(
        train.array, dataset.num_entities, 2 * num_relations
    ).concat(inverse_train)

    def retype(split: TripleSet) -> TripleSet:
        return TripleSet(split.array, dataset.num_entities, 2 * num_relations)

    # When the source dataset already paid for a filter index, derive the
    # augmented one incrementally (grow the relation space, insert the
    # inverse rows) instead of rebuilding from scratch — the lazy
    # KGDataset.filter_index property stays the only construction site.
    filter_index = dataset._filter_index
    if filter_index is not None:
        filter_index = filter_index.copy()
        filter_index.grow(num_relations=2 * num_relations)
        filter_index.add_triples(inverse_train.deduplicate())

    return KGDataset(
        entities=dataset.entities,
        relations=relations,
        train=augmented_train,
        valid=retype(dataset.valid),
        test=retype(dataset.test),
        name=f"{dataset.name}+inv",
        _filter_index=filter_index,
    )
