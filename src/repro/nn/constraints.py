"""Parameter constraints applied after each optimizer step.

The paper constrains entity embedding vectors to unit L2 norm after every
training iteration (§5.3).  For multi-embedding tables of shape
``(num_items, num_vectors, dim)`` each of the ``num_vectors`` component
vectors is normalised independently.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class UnitNormConstraint:
    """Project (selected rows of) an embedding table onto unit L2 spheres.

    Normalisation is along the last axis.  Vectors with norm below ``eps``
    are left untouched (projecting the zero vector is undefined).
    """

    def __init__(self, eps: float = 1e-12) -> None:
        if eps <= 0:
            raise ConfigError("eps must be positive")
        self.eps = float(eps)

    def apply(self, table: np.ndarray, rows: np.ndarray | None = None) -> None:
        """Normalise *table* in place; restrict to *rows* when given."""
        if rows is None:
            block = table
        else:
            rows = np.asarray(rows, dtype=np.int64)
            block = table[rows]
        # One fused pass for the squared norms instead of norm()'s
        # abs/square/sum temporaries; this sits on the training hot path.
        norms = np.sqrt(np.einsum("...d,...d->...", block, block))[..., None]
        safe = np.where(norms > self.eps, norms, 1.0)
        block /= safe
        if rows is not None:
            table[rows] = block

    def violation(self, table: np.ndarray) -> float:
        """Max absolute deviation of any vector norm from 1 (diagnostic)."""
        norms = np.linalg.norm(table, axis=-1)
        return float(np.max(np.abs(norms - 1.0))) if norms.size else 0.0


class MaxNormConstraint:
    """Clip vector norms to at most ``max_norm`` (TransE-style constraint)."""

    def __init__(self, max_norm: float = 1.0, eps: float = 1e-12) -> None:
        if max_norm <= 0:
            raise ConfigError("max_norm must be positive")
        self.max_norm = float(max_norm)
        self.eps = float(eps)

    def apply(self, table: np.ndarray, rows: np.ndarray | None = None) -> None:
        """Rescale in place any vector whose norm exceeds ``max_norm``."""
        if rows is None:
            block = table
        else:
            rows = np.asarray(rows, dtype=np.int64)
            block = table[rows]
        norms = np.linalg.norm(block, axis=-1, keepdims=True)
        scale = np.minimum(1.0, self.max_norm / np.maximum(norms, self.eps))
        block = block * scale
        if rows is None:
            table[...] = block
        else:
            table[rows] = block
