"""Optimizers with dense and lazy-sparse update paths.

Embedding models touch only a handful of rows per mini-batch, so updating
the full table every step would dominate runtime.  Each optimizer here
therefore exposes two paths:

* :meth:`Optimizer.step_dense` — update a full parameter array (used for
  small parameters such as the interaction weight vector ω).
* :meth:`Optimizer.step_sparse` — update only the given *unique* rows of a
  table.  Adam/Adagrad keep dense state arrays but advance per-row step
  counters lazily, matching the semantics of ``torch.optim.SparseAdam``.

Use :func:`aggregate_rows` to collapse duplicate row indices (an entity
can occur several times in one batch) into unique rows with summed
gradients before calling the sparse path.  The training hot loop uses
:func:`scatter_accumulate` (same result, CSR-matmul accumulation instead
of ``np.add.at``) and :meth:`Optimizer.step_sparse_fused` (same update,
in-place on gathered row blocks); both are certified equivalent to the
reference paths by the test-suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, TrainingError
from repro.pipeline.registry import Registry

try:  # scipy is optional; scatter_accumulate degrades gracefully without it
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - scipy ships with the toolchain
    _scipy_sparse = None

def _load_csc_matvecs():
    """Import scipy's compiled segment-sum kernel, self-testing it first.

    ``csc_matvecs`` is a private scipy function, so a scipy upgrade could
    change its signature without an ImportError.  A one-time 2x2 probe
    verifies the exact call pattern we use (accumulating ``y += A @ x``)
    still produces correct sums; anything unexpected disables the fast
    path in favour of the public-API fallback.
    """
    try:
        from scipy.sparse import _sparsetools

        probe = np.zeros((2, 2))
        # A = [[1, 0, 1], [0, 1, 0]] as CSC built from one-entry columns.
        _sparsetools.csc_matvecs(
            2,
            3,
            2,
            np.arange(4, dtype=np.int32),
            np.array([0, 1, 0], dtype=np.int32),
            np.ones(3),
            np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]).reshape(-1),
            probe.reshape(-1),
        )
        if not np.array_equal(probe, [[6.0, 8.0], [3.0, 4.0]]):
            return None
        return _sparsetools.csc_matvecs
    except Exception:  # pragma: no cover - absent/incompatible scipy
        return None


_csc_matvecs = _load_csc_matvecs()

#: Row-block size of the fused optimizer updates.  Moment/accumulator
#: updates are independent per row, so processing blocks keeps every
#: intermediate in cache instead of streaming each full-width temporary
#: through memory once per arithmetic pass.
_FUSED_UPDATE_BLOCK_ROWS = 256


def aggregate_rows(indices: np.ndarray, grads: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sum gradient rows that share an index (reference implementation).

    This is the scatter-accumulation *oracle*: a straightforward
    ``np.unique`` + ``np.add.at`` formulation kept deliberately simple.
    Hot paths should call :func:`scatter_accumulate`, which computes the
    same result (up to float summation order) without funnelling every
    occurrence through ``np.add.at``'s per-element inner loop.

    Parameters
    ----------
    indices:
        ``(b,)`` integer row indices, possibly with duplicates.
    grads:
        ``(b, ...)`` per-occurrence gradients.

    Returns
    -------
    ``(unique_rows, summed_grads)`` with ``summed_grads[i]`` the sum of all
    gradient rows whose index equals ``unique_rows[i]``.
    """
    indices = np.asarray(indices, dtype=np.int64)
    grads = np.asarray(grads, dtype=np.float64)
    if len(indices) != len(grads):
        raise TrainingError("indices and grads must have equal leading dimension")
    unique, inverse = np.unique(indices, return_inverse=True)
    summed = np.zeros((len(unique),) + grads.shape[1:], dtype=np.float64)
    np.add.at(summed, inverse, grads)
    return unique, summed


def scatter_accumulate(
    indices: np.ndarray, grads: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Duplicate-index-aware row-gradient accumulation (fast path).

    Equivalent to :func:`aggregate_rows` up to float summation order, but
    built for the training hot loop: a batch with no repeated rows is a
    pure permutation (no arithmetic at all), and batches with duplicates
    collapse through a CSR selection-matrix product (one compiled pass)
    instead of ``np.add.at``'s scalar scatter over a full-width
    temporary.  Falls back to a sorted ``np.add.reduceat`` when scipy is
    unavailable.
    """
    indices = np.asarray(indices, dtype=np.int64)
    grads = np.asarray(grads, dtype=np.float64)
    if len(indices) != len(grads):
        raise TrainingError("indices and grads must have equal leading dimension")
    batch = len(indices)
    if batch == 0:
        return indices.copy(), grads.copy()
    unique, inverse = np.unique(indices, return_inverse=True)
    trailing = grads.shape[1:]
    flat = grads.reshape(batch, -1)
    if len(unique) == batch:
        # No duplicates: rows just need reordering to match sorted unique.
        summed = flat[np.argsort(indices, kind="stable")]
    elif _scipy_sparse is not None:
        selector = _scipy_sparse.csr_matrix(
            (np.ones(batch), inverse, np.arange(batch + 1)),
            shape=(batch, len(unique)),
        )
        summed = selector.T @ flat
    else:
        order = np.argsort(inverse, kind="stable")
        boundaries = np.searchsorted(inverse[order], np.arange(len(unique)))
        summed = np.add.reduceat(flat[order], boundaries, axis=0)
    return unique, summed.reshape((len(unique),) + trailing)


def scatter_accumulate_transposed(
    index_groups: tuple[np.ndarray, ...],
    grad_groups: tuple[np.ndarray, ...],
    out: np.ndarray | None = None,
    slot_scratch: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-sum transposed ``(slots, b, D)`` gradients over shared indices.

    The fused train step produces per-occurrence gradients in the
    kernels' transposed layout, with heads and tails indexing one shared
    embedding table.  This collapses all groups' occurrences to unique
    rows in one go — per slot, straight off the transposed buffers via a
    compiled CSC matvec segment-sum — returning standard-layout
    ``(unique_rows, summed (U, slots, D))`` ready for the optimizer.
    ``out`` optionally provides a persistent ``(≥U, slots, D)`` result
    buffer and ``slot_scratch`` a persistent ``(slots, ≥U, D)``
    accumulation buffer (zeroed in place), so a steady-state training
    loop performs no allocation here.  Equivalent to concatenating the
    groups in standard layout and calling :func:`scatter_accumulate`.
    """
    if len(index_groups) != len(grad_groups) or not index_groups:
        raise TrainingError("need matching, non-empty index and gradient groups")
    slots, dim = grad_groups[0].shape[0], grad_groups[0].shape[2]
    for indices, grads in zip(index_groups, grad_groups):
        if grads.shape != (slots, len(indices), dim):
            raise TrainingError("gradient groups must be (slots, b_i, D) matching indices")
    all_indices = np.concatenate(index_groups)
    unique, inverse = np.unique(all_indices, return_inverse=True)
    num_unique = len(unique)
    if _csc_matvecs is None:
        flat = np.concatenate(
            [g.transpose(1, 0, 2).reshape(len(idx), -1) for idx, g in zip(index_groups, grad_groups)]
        )
        _, summed = scatter_accumulate(all_indices, flat)
        summed = summed.reshape(num_unique, slots, dim)
    else:
        # One selection matrix per group: column j holds a single 1 at
        # row inverse[j], so A @ X is exactly the segment sum; matvecs
        # accumulate, letting every group land in the same output.
        if slot_scratch is not None and slot_scratch.shape[1] >= num_unique:
            per_slot = slot_scratch[:, :num_unique]
            per_slot.fill(0.0)
        else:
            per_slot = np.zeros((slots, num_unique, dim), dtype=np.float64)
        offset = 0
        for indices, grads in zip(index_groups, grad_groups):
            width = len(indices)
            if width == 0:
                continue
            pointers = np.arange(width + 1, dtype=np.int32)
            segment_rows = inverse[offset : offset + width].astype(np.int32)
            ones = np.ones(width, dtype=np.float64)
            for slot in range(slots):
                _csc_matvecs(
                    num_unique,
                    width,
                    dim,
                    pointers,
                    segment_rows,
                    ones,
                    grads[slot].reshape(-1),
                    per_slot[slot].reshape(-1),
                )
            offset += width
        summed = out[:num_unique] if out is not None else np.empty((num_unique, slots, dim))
        np.copyto(summed, per_slot.transpose(1, 0, 2))
        return unique, summed
    if out is not None:
        np.copyto(out[:num_unique], summed)
        summed = out[:num_unique]
    return unique, summed


class Optimizer:
    """Base class; subclasses implement the two update paths."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)
        self._state: dict[str, dict[str, np.ndarray | int]] = {}

    def _ensure_state(self, name: str, array: np.ndarray) -> dict:
        state = self._state.get(name)
        if state is None:
            state = self._init_state(array)
            self._state[name] = state
        return state

    def _init_state(self, array: np.ndarray) -> dict:
        return {}

    def step_dense(self, name: str, array: np.ndarray, grad: np.ndarray) -> None:
        """Apply one update to the whole array, in place."""
        raise NotImplementedError

    def step_sparse(
        self, name: str, array: np.ndarray, rows: np.ndarray, row_grads: np.ndarray
    ) -> None:
        """Apply one update to ``array[rows]`` in place; *rows* must be unique."""
        raise NotImplementedError

    def step_sparse_fused(
        self, name: str, array: np.ndarray, rows: np.ndarray, row_grads: np.ndarray
    ) -> None:
        """Hot-path variant of :meth:`step_sparse` for the fused train step.

        Semantically identical to :meth:`step_sparse` (same state, same
        update, interchangeable step by step — certified by the
        test-suite), but implementations may overwrite ``row_grads`` and
        stage every intermediate in persistent per-state scratch buffers
        (:meth:`_scratch`) instead of allocating multi-megabyte
        temporaries every step.  The base implementation simply
        delegates, so third-party optimizers that only implement
        :meth:`step_sparse` keep working on the fused path.
        """
        self.step_sparse(name, array, rows, row_grads)

    def _scratch(
        self, state: dict, key: str, rows: int, trailing: tuple[int, ...]
    ) -> np.ndarray:
        """A persistent ``(rows, *trailing)`` scratch block for *state*.

        Grown (never shrunk) on demand; reusing the same pages step after
        step keeps the gathered row blocks out of the allocator and the
        page-fault path.
        """
        scratch = state.get(key)
        if scratch is None or scratch.shape[0] < rows or scratch.shape[1:] != trailing:
            scratch = np.empty((rows,) + trailing, dtype=np.float64)
            state[key] = scratch
        return scratch[:rows]

    def reset(self) -> None:
        """Drop all accumulated state (moments, step counters)."""
        self._state.clear()


class SGD(Optimizer):
    """Plain stochastic gradient descent (no momentum)."""

    def step_dense(self, name: str, array: np.ndarray, grad: np.ndarray) -> None:
        array -= self.learning_rate * grad

    def step_sparse(
        self, name: str, array: np.ndarray, rows: np.ndarray, row_grads: np.ndarray
    ) -> None:
        array[rows] -= self.learning_rate * row_grads

    def step_sparse_fused(
        self, name: str, array: np.ndarray, rows: np.ndarray, row_grads: np.ndarray
    ) -> None:
        state = self._ensure_state(name, array)
        updated = self._scratch(state, "scratch_rows", len(rows), array.shape[1:])
        np.take(array, rows, axis=0, out=updated)
        row_grads *= self.learning_rate
        updated -= row_grads
        array[rows] = updated


class Adagrad(Optimizer):
    """Adagrad with per-coordinate accumulated squared gradients."""

    def __init__(self, learning_rate: float = 0.1, eps: float = 1e-10) -> None:
        super().__init__(learning_rate)
        self.eps = float(eps)

    def _init_state(self, array: np.ndarray) -> dict:
        return {"accum": np.zeros_like(array, dtype=np.float64)}

    def step_dense(self, name: str, array: np.ndarray, grad: np.ndarray) -> None:
        state = self._ensure_state(name, array)
        accum = state["accum"]
        accum += np.square(grad)
        array -= self.learning_rate * grad / (np.sqrt(accum) + self.eps)

    def step_sparse(
        self, name: str, array: np.ndarray, rows: np.ndarray, row_grads: np.ndarray
    ) -> None:
        state = self._ensure_state(name, array)
        accum = state["accum"]
        accum[rows] += np.square(row_grads)
        array[rows] -= self.learning_rate * row_grads / (np.sqrt(accum[rows]) + self.eps)

    def step_sparse_fused(
        self, name: str, array: np.ndarray, rows: np.ndarray, row_grads: np.ndarray
    ) -> None:
        state = self._ensure_state(name, array)
        trailing = array.shape[1:]
        block = _FUSED_UPDATE_BLOCK_ROWS
        accum_scratch = self._scratch(state, "scratch_accum", min(block, len(rows)), trailing)
        row_scratch = self._scratch(state, "scratch_rows", min(block, len(rows)), trailing)
        accum = state["accum"]
        for start in range(0, len(rows), block):
            rows_b = rows[start : start + block]
            grads_b = row_grads[start : start + block]
            accum_b = accum_scratch[: len(rows_b)]
            updated = row_scratch[: len(rows_b)]
            np.take(accum, rows_b, axis=0, out=accum_b)
            np.square(grads_b, out=updated)
            accum_b += updated
            accum[rows_b] = accum_b
            np.sqrt(accum_b, out=accum_b)
            accum_b += self.eps
            np.divide(grads_b, accum_b, out=grads_b)
            grads_b *= self.learning_rate
            np.take(array, rows_b, axis=0, out=updated)
            updated -= grads_b
            array[rows_b] = updated


class Adam(Optimizer):
    """Adam (Kingma & Ba 2014) with lazy per-row bias correction.

    The sparse path keeps a per-row step counter so that bias correction
    for a row reflects how many times *that row* has been updated — the
    behaviour of ``torch.optim.SparseAdam``, and the right semantics for
    embeddings where rare entities receive few updates.
    """

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigError("betas must lie in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)

    def _init_state(self, array: np.ndarray) -> dict:
        return {
            "m": np.zeros_like(array, dtype=np.float64),
            "v": np.zeros_like(array, dtype=np.float64),
            "step": 0,
            "row_steps": np.zeros(array.shape[0], dtype=np.int64) if array.ndim else None,
        }

    def step_dense(self, name: str, array: np.ndarray, grad: np.ndarray) -> None:
        state = self._ensure_state(name, array)
        state["step"] += 1
        step = state["step"]
        m, v = state["m"], state["v"]
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * np.square(grad)
        m_hat = m / (1.0 - self.beta1**step)
        v_hat = v / (1.0 - self.beta2**step)
        array -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)

    def step_sparse(
        self, name: str, array: np.ndarray, rows: np.ndarray, row_grads: np.ndarray
    ) -> None:
        state = self._ensure_state(name, array)
        rows = np.asarray(rows, dtype=np.int64)
        row_steps = state["row_steps"]
        row_steps[rows] += 1
        steps = row_steps[rows].astype(np.float64)
        m, v = state["m"], state["v"]
        m_rows = self.beta1 * m[rows] + (1.0 - self.beta1) * row_grads
        v_rows = self.beta2 * v[rows] + (1.0 - self.beta2) * np.square(row_grads)
        m[rows] = m_rows
        v[rows] = v_rows
        correction_shape = (len(rows),) + (1,) * (array.ndim - 1)
        c1 = (1.0 - self.beta1**steps).reshape(correction_shape)
        c2 = (1.0 - self.beta2**steps).reshape(correction_shape)
        array[rows] -= self.learning_rate * (m_rows / c1) / (np.sqrt(v_rows / c2) + self.eps)

    def step_sparse_fused(
        self, name: str, array: np.ndarray, rows: np.ndarray, row_grads: np.ndarray
    ) -> None:
        state = self._ensure_state(name, array)
        rows = np.asarray(rows, dtype=np.int64)
        row_steps = state["row_steps"]
        row_steps[rows] += 1
        steps = row_steps[rows].astype(np.float64)
        m, v = state["m"], state["v"]
        trailing = array.shape[1:]
        block = _FUSED_UPDATE_BLOCK_ROWS
        m_scratch = self._scratch(state, "scratch_m", min(block, len(rows)), trailing)
        v_scratch = self._scratch(state, "scratch_v", min(block, len(rows)), trailing)
        g_scratch = self._scratch(state, "scratch_g", min(block, len(rows)), trailing)
        correction_shape = (-1,) + (1,) * (array.ndim - 1)
        for start in range(0, len(rows), block):
            rows_b = rows[start : start + block]
            grads_b = row_grads[start : start + block]
            width = len(rows_b)
            m_rows, v_rows, scaled = m_scratch[:width], v_scratch[:width], g_scratch[:width]
            np.take(m, rows_b, axis=0, out=m_rows)
            np.take(v, rows_b, axis=0, out=v_rows)
            m_rows *= self.beta1
            np.multiply(grads_b, 1.0 - self.beta1, out=scaled)
            m_rows += scaled
            np.square(grads_b, out=grads_b)
            grads_b *= 1.0 - self.beta2
            v_rows *= self.beta2
            v_rows += grads_b
            m[rows_b] = m_rows
            v[rows_b] = v_rows
            # lr·(m/c1)/(√(v/c2)+ε) = m·(lr·√c2/c1)/(√v + ε·√c2): folding
            # the bias corrections into per-row scalars saves two
            # full-width passes.
            steps_b = steps[start : start + block]
            c1 = (1.0 - self.beta1**steps_b).reshape(correction_shape)
            sqrt_c2 = np.sqrt(1.0 - self.beta2**steps_b).reshape(correction_shape)
            np.sqrt(v_rows, out=v_rows)
            v_rows += self.eps * sqrt_c2
            np.divide(m_rows, v_rows, out=m_rows)
            m_rows *= self.learning_rate * sqrt_c2 / c1
            updated = scaled
            np.take(array, rows_b, axis=0, out=updated)
            updated -= m_rows
            array[rows_b] = updated


#: Optimizer registry; entries are :class:`Optimizer` subclasses built as
#: ``cls(learning_rate=...)``.  :class:`~repro.pipeline.config.RunConfig`
#: validates its ``training.optimizer`` field against this registry.
OPTIMIZERS: Registry = Registry("optimizer")
OPTIMIZERS.register("sgd", SGD)
OPTIMIZERS.register("adagrad", Adagrad)
OPTIMIZERS.register("adam", Adam)


def make_optimizer(name: str, learning_rate: float) -> Optimizer:
    """Build an optimizer by registered name with the given learning rate."""
    cls = OPTIMIZERS.get(name)
    return cls(learning_rate=learning_rate)
