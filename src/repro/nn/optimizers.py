"""Optimizers with dense and lazy-sparse update paths.

Embedding models touch only a handful of rows per mini-batch, so updating
the full table every step would dominate runtime.  Each optimizer here
therefore exposes two paths:

* :meth:`Optimizer.step_dense` — update a full parameter array (used for
  small parameters such as the interaction weight vector ω).
* :meth:`Optimizer.step_sparse` — update only the given *unique* rows of a
  table.  Adam/Adagrad keep dense state arrays but advance per-row step
  counters lazily, matching the semantics of ``torch.optim.SparseAdam``.

Use :func:`aggregate_rows` to collapse duplicate row indices (an entity
can occur several times in one batch) into unique rows with summed
gradients before calling the sparse path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, TrainingError


def aggregate_rows(indices: np.ndarray, grads: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sum gradient rows that share an index.

    Parameters
    ----------
    indices:
        ``(b,)`` integer row indices, possibly with duplicates.
    grads:
        ``(b, ...)`` per-occurrence gradients.

    Returns
    -------
    ``(unique_rows, summed_grads)`` with ``summed_grads[i]`` the sum of all
    gradient rows whose index equals ``unique_rows[i]``.
    """
    indices = np.asarray(indices, dtype=np.int64)
    grads = np.asarray(grads, dtype=np.float64)
    if len(indices) != len(grads):
        raise TrainingError("indices and grads must have equal leading dimension")
    unique, inverse = np.unique(indices, return_inverse=True)
    summed = np.zeros((len(unique),) + grads.shape[1:], dtype=np.float64)
    np.add.at(summed, inverse, grads)
    return unique, summed


class Optimizer:
    """Base class; subclasses implement the two update paths."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)
        self._state: dict[str, dict[str, np.ndarray | int]] = {}

    def _ensure_state(self, name: str, array: np.ndarray) -> dict:
        state = self._state.get(name)
        if state is None:
            state = self._init_state(array)
            self._state[name] = state
        return state

    def _init_state(self, array: np.ndarray) -> dict:
        return {}

    def step_dense(self, name: str, array: np.ndarray, grad: np.ndarray) -> None:
        """Apply one update to the whole array, in place."""
        raise NotImplementedError

    def step_sparse(
        self, name: str, array: np.ndarray, rows: np.ndarray, row_grads: np.ndarray
    ) -> None:
        """Apply one update to ``array[rows]`` in place; *rows* must be unique."""
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all accumulated state (moments, step counters)."""
        self._state.clear()


class SGD(Optimizer):
    """Plain stochastic gradient descent (no momentum)."""

    def step_dense(self, name: str, array: np.ndarray, grad: np.ndarray) -> None:
        array -= self.learning_rate * grad

    def step_sparse(
        self, name: str, array: np.ndarray, rows: np.ndarray, row_grads: np.ndarray
    ) -> None:
        array[rows] -= self.learning_rate * row_grads


class Adagrad(Optimizer):
    """Adagrad with per-coordinate accumulated squared gradients."""

    def __init__(self, learning_rate: float = 0.1, eps: float = 1e-10) -> None:
        super().__init__(learning_rate)
        self.eps = float(eps)

    def _init_state(self, array: np.ndarray) -> dict:
        return {"accum": np.zeros_like(array, dtype=np.float64)}

    def step_dense(self, name: str, array: np.ndarray, grad: np.ndarray) -> None:
        state = self._ensure_state(name, array)
        accum = state["accum"]
        accum += np.square(grad)
        array -= self.learning_rate * grad / (np.sqrt(accum) + self.eps)

    def step_sparse(
        self, name: str, array: np.ndarray, rows: np.ndarray, row_grads: np.ndarray
    ) -> None:
        state = self._ensure_state(name, array)
        accum = state["accum"]
        accum[rows] += np.square(row_grads)
        array[rows] -= self.learning_rate * row_grads / (np.sqrt(accum[rows]) + self.eps)


class Adam(Optimizer):
    """Adam (Kingma & Ba 2014) with lazy per-row bias correction.

    The sparse path keeps a per-row step counter so that bias correction
    for a row reflects how many times *that row* has been updated — the
    behaviour of ``torch.optim.SparseAdam``, and the right semantics for
    embeddings where rare entities receive few updates.
    """

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigError("betas must lie in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)

    def _init_state(self, array: np.ndarray) -> dict:
        return {
            "m": np.zeros_like(array, dtype=np.float64),
            "v": np.zeros_like(array, dtype=np.float64),
            "step": 0,
            "row_steps": np.zeros(array.shape[0], dtype=np.int64) if array.ndim else None,
        }

    def step_dense(self, name: str, array: np.ndarray, grad: np.ndarray) -> None:
        state = self._ensure_state(name, array)
        state["step"] += 1
        step = state["step"]
        m, v = state["m"], state["v"]
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * np.square(grad)
        m_hat = m / (1.0 - self.beta1**step)
        v_hat = v / (1.0 - self.beta2**step)
        array -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)

    def step_sparse(
        self, name: str, array: np.ndarray, rows: np.ndarray, row_grads: np.ndarray
    ) -> None:
        state = self._ensure_state(name, array)
        rows = np.asarray(rows, dtype=np.int64)
        row_steps = state["row_steps"]
        row_steps[rows] += 1
        steps = row_steps[rows].astype(np.float64)
        m, v = state["m"], state["v"]
        m_rows = self.beta1 * m[rows] + (1.0 - self.beta1) * row_grads
        v_rows = self.beta2 * v[rows] + (1.0 - self.beta2) * np.square(row_grads)
        m[rows] = m_rows
        v[rows] = v_rows
        correction_shape = (len(rows),) + (1,) * (array.ndim - 1)
        c1 = (1.0 - self.beta1**steps).reshape(correction_shape)
        c2 = (1.0 - self.beta2**steps).reshape(correction_shape)
        array[rows] -= self.learning_rate * (m_rows / c1) / (np.sqrt(v_rows / c2) + self.eps)


OPTIMIZERS = {"sgd": SGD, "adagrad": Adagrad, "adam": Adam}


def make_optimizer(name: str, learning_rate: float) -> Optimizer:
    """Build an optimizer by name with the given learning rate."""
    try:
        cls = OPTIMIZERS[name]
    except KeyError:
        known = ", ".join(sorted(OPTIMIZERS))
        raise ConfigError(f"unknown optimizer {name!r}; known: {known}") from None
    return cls(learning_rate=learning_rate)
