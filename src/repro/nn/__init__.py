"""Neural-network substrate: initializers, losses, optimizers, autodiff.

This package is the repository's stand-in for the parts of PyTorch the
paper relied on: parameter initialisation, the logistic loss of Eq. 16,
Adam/Adagrad/SGD with lazy sparse row updates, per-iteration norm
constraints, the regularizers (including the Dirichlet sparsity loss of
Eq. 12), and a minimal reverse-mode autodiff engine used for gradient
checking and the ER-MLP baseline.
"""

from repro.nn.autodiff import Tensor, numeric_gradient
from repro.nn.constraints import MaxNormConstraint, UnitNormConstraint
from repro.nn.initializers import (
    INITIALIZERS,
    get_initializer,
    normal,
    uniform,
    unit_normalized,
    xavier_uniform,
)
from repro.nn.losses import (
    LOSSES,
    LogisticLoss,
    MarginRankingLoss,
    binary_cross_entropy_from_logits,
    make_loss,
    sigmoid,
    softplus,
)
from repro.nn.optimizers import (
    OPTIMIZERS,
    Adagrad,
    Adam,
    Optimizer,
    SGD,
    aggregate_rows,
    make_optimizer,
)
from repro.nn.regularizers import (
    DirichletSparsityRegularizer,
    L2Regularizer,
    N3Regularizer,
)

__all__ = [
    "Adagrad",
    "Adam",
    "DirichletSparsityRegularizer",
    "INITIALIZERS",
    "L2Regularizer",
    "LOSSES",
    "LogisticLoss",
    "MarginRankingLoss",
    "MaxNormConstraint",
    "N3Regularizer",
    "OPTIMIZERS",
    "Optimizer",
    "SGD",
    "Tensor",
    "UnitNormConstraint",
    "aggregate_rows",
    "binary_cross_entropy_from_logits",
    "get_initializer",
    "make_loss",
    "make_optimizer",
    "normal",
    "numeric_gradient",
    "sigmoid",
    "softplus",
    "uniform",
    "unit_normalized",
    "xavier_uniform",
]
