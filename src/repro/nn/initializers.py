"""Embedding initializers.

All initializers are pure functions of an explicit
:class:`numpy.random.Generator`, keeping every experiment reproducible
from a single seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).

    For an embedding table we treat the last axis as fan_in == fan_out ==
    the embedding dimension, which reduces to ``a = sqrt(3 / dim)`` — the
    same convention PyTorch applies to 2-D embedding weights.
    """
    if not shape:
        raise ConfigError("shape must be non-empty")
    dim = shape[-1]
    bound = np.sqrt(3.0 / dim)
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.1) -> np.ndarray:
    """Gaussian init with mean zero and the given standard deviation."""
    if std <= 0:
        raise ConfigError("std must be positive")
    return rng.normal(0.0, std, size=shape)


def uniform(
    shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1
) -> np.ndarray:
    """Uniform init over ``[low, high)``."""
    if low >= high:
        raise ConfigError("low must be < high")
    return rng.uniform(low, high, size=shape)


def unit_normalized(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Gaussian init followed by L2 normalisation of the last axis.

    Matches the paper's constraint that entity embedding vectors have unit
    L2 norm, so training starts already on the constraint manifold.
    """
    table = rng.normal(0.0, 1.0, size=shape)
    norms = np.linalg.norm(table, axis=-1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return table / norms


def empty(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Uninitialized table (``np.empty``) — for tables about to be overwritten.

    Checkpoint restores replace every table wholesale, so drawing (and
    normalising) millions of random values just to discard them wastes
    both time and transient memory at million-entity scale.  The pages
    are never touched until someone writes them, so the allocation is
    effectively free.  Never select this for a model that will actually
    train from init.
    """
    if not shape:
        raise ConfigError("shape must be non-empty")
    return np.empty(shape, dtype=np.float64)


INITIALIZERS = {
    "xavier_uniform": xavier_uniform,
    "normal": normal,
    "uniform": uniform,
    "unit_normalized": unit_normalized,
    "empty": empty,
}


def get_initializer(name: str):
    """Look up an initializer by name; raises :class:`ConfigError` if unknown."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        known = ", ".join(sorted(INITIALIZERS))
        raise ConfigError(f"unknown initializer {name!r}; known: {known}") from None
