"""Loss functions for triple classification.

The paper trains with the logistic (negative log-likelihood) loss of
Eq. 15/16: with labels ``y in {+1, -1}`` the per-triple loss is
``softplus(-y * s) = log(1 + exp(-y * s))``.  A margin-based ranking loss
is included for the TransE baseline, which was historically trained that
way (Bordes et al. 2013).

Each loss exposes ``value`` (mean loss) and ``grad_score`` (gradient of
the mean loss with respect to each score), which is all the manual
backward passes in this repository need.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.pipeline.registry import Registry


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out


def softplus(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(x))``."""
    return np.logaddexp(0.0, x)


class LogisticLoss:
    """Mean logistic loss of Eq. 16: ``mean(softplus(-y * s))``.

    ``grad_score`` returns ``d(mean loss)/d(s) = -y * sigmoid(-y * s) / n``.
    """

    name = "logistic"

    def value(self, scores: np.ndarray, labels: np.ndarray) -> float:
        scores, labels = self._check(scores, labels)
        return float(np.mean(softplus(-labels * scores)))

    def grad_score(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        scores, labels = self._check(scores, labels)
        return -labels * sigmoid(-labels * scores) / len(scores)

    @staticmethod
    def _check(scores: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        scores = np.asarray(scores, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if scores.shape != labels.shape:
            raise ConfigError(f"scores {scores.shape} and labels {labels.shape} must match")
        if len(scores) == 0:
            raise ConfigError("loss requires at least one example")
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise ConfigError("labels must be +/-1")
        return scores, labels


class MarginRankingLoss:
    """Margin ranking loss: ``mean(relu(margin - s_pos + s_neg))``.

    Used by the TransE baseline.  ``grad_pair`` returns gradients with
    respect to the positive and negative scores of each pair.
    """

    name = "margin"

    def __init__(self, margin: float = 1.0) -> None:
        if margin <= 0:
            raise ConfigError("margin must be positive")
        self.margin = float(margin)

    def value(self, pos_scores: np.ndarray, neg_scores: np.ndarray) -> float:
        pos, neg = self._check(pos_scores, neg_scores)
        return float(np.mean(np.maximum(0.0, self.margin - pos + neg)))

    def grad_pair(
        self, pos_scores: np.ndarray, neg_scores: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        pos, neg = self._check(pos_scores, neg_scores)
        active = (self.margin - pos + neg) > 0
        scale = active.astype(np.float64) / len(pos)
        return -scale, scale

    @staticmethod
    def _check(pos: np.ndarray, neg: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        pos = np.asarray(pos, dtype=np.float64)
        neg = np.asarray(neg, dtype=np.float64)
        if pos.shape != neg.shape:
            raise ConfigError("positive and negative score shapes must match")
        if len(pos) == 0:
            raise ConfigError("loss requires at least one example")
        return pos, neg


#: Loss registry; entries are loss classes built as ``cls(**kwargs)``.
#: Models resolve a ``RunConfig``'s ``model.options["loss"]`` string here.
LOSSES: Registry = Registry("loss")
LOSSES.register("logistic", LogisticLoss)
LOSSES.register("margin", MarginRankingLoss)


def make_loss(name: str, **kwargs: object) -> object:
    """Build a loss by registered name (e.g. ``make_loss("margin", margin=2.0)``)."""
    return LOSSES.get(name)(**kwargs)


def binary_cross_entropy_from_logits(scores: np.ndarray, targets: np.ndarray) -> float:
    """BCE with {0,1} targets; equivalent to :class:`LogisticLoss` with y=2p-1.

    Provided for the probabilistic reading of Eq. 15.
    """
    scores = np.asarray(scores, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if scores.shape != targets.shape:
        raise ConfigError("scores and targets must have the same shape")
    # softplus(s) - s*t  ==  -t*log(sigmoid(s)) - (1-t)*log(1-sigmoid(s))
    return float(np.mean(softplus(scores) - scores * targets))
