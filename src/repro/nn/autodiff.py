"""Minimal reverse-mode automatic differentiation engine.

This is the library's stand-in for the autograd half of PyTorch.  It is
deliberately small: enough operations to express every score function and
loss in this repository, so that the hand-derived analytic gradients used
on the hot path can be *checked* against machine-derived ones, and so the
ER-MLP baseline can be trained without hand-writing MLP backprop.

Design
------
* :class:`Tensor` wraps a float64 numpy array, a ``grad`` buffer and a
  backward closure.
* Broadcasting is supported; :func:`_unbroadcast` sums gradients back over
  broadcast axes.
* :meth:`Tensor.backward` runs a topological sort over the recorded tape.

Example
-------
>>> x = Tensor([1.0, 2.0], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad.tolist()
[2.0, 4.0]
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import ModelError


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum *grad* over axes that were broadcast from *shape*."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were size 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable array node in the autodiff tape."""

    __array_priority__ = 100  # ensure ndarray op Tensor dispatches to Tensor

    def __init__(
        self,
        data: object,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Callable[[np.ndarray], None] | None = None,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) or any(p.requires_grad for p in parents)
        self.grad: np.ndarray | None = None
        self._parents = tuple(parents)
        self._backward_fn = backward_fn
        self.name = name

    # -------------------------------------------------------------- plumbing
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if grad is None:
            if self.data.size != 1:
                raise ModelError("backward() without gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ModelError(f"gradient shape {grad.shape} != tensor shape {self.data.shape}")

        order: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: "Tensor") -> None:
            if id(node) in seen or not node.requires_grad:
                return
            seen.add(id(node))
            for parent in node._parents:
                visit(parent)
            order.append(node)

        visit(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    def zero_grad(self) -> None:
        """Clear this tensor's gradient buffer."""
        self.grad = None

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    # ------------------------------------------------------------ arithmetic
    @staticmethod
    def _lift(value: object) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: object) -> "Tensor":
        other = self._lift(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor(self.data + other.data, parents=(self, other), backward_fn=backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor(-self.data, parents=(self,), backward_fn=backward)

    def __sub__(self, other: object) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: object) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: object) -> "Tensor":
        other = self._lift(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor(self.data * other.data, parents=(self, other), backward_fn=backward)

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> "Tensor":
        other = self._lift(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / np.square(other.data), other.shape)
                )

        return Tensor(self.data / other.data, parents=(self, other), backward_fn=backward)

    def __matmul__(self, other: object) -> "Tensor":
        other = self._lift(other)
        if self.data.ndim != 2 or other.data.ndim != 2:
            raise ModelError("matmul supports 2-D tensors only")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor(self.data @ other.data, parents=(self, other), backward_fn=backward)

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor(self.data**exponent, parents=(self,), backward_fn=backward)

    # ------------------------------------------------------------- reductions
    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor(
            self.data.sum(axis=axis, keepdims=keepdims), parents=(self,), backward_fn=backward
        )

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------ elementwise
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor(out_data, parents=(self,), backward_fn=backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor(np.log(self.data), parents=(self,), backward_fn=backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - np.square(out_data)))

        return Tensor(out_data, parents=(self,), backward_fn=backward)

    def sigmoid(self) -> "Tensor":
        from repro.nn.losses import sigmoid as _sigmoid

        out_data = _sigmoid(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor(out_data, parents=(self,), backward_fn=backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor(self.data * mask, parents=(self,), backward_fn=backward)

    def softplus(self) -> "Tensor":
        from repro.nn.losses import sigmoid as _sigmoid

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * _sigmoid(self.data))

        return Tensor(np.logaddexp(0.0, self.data), parents=(self,), backward_fn=backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor(np.abs(self.data), parents=(self,), backward_fn=backward)

    # ----------------------------------------------------------- restructuring
    def reshape(self, *shape: int) -> "Tensor":
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor(self.data.reshape(*shape), parents=(self,), backward_fn=backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Differentiable row gather: ``out[i] = self[indices[i]]``.

        The backward pass scatter-adds, correctly accumulating duplicate
        indices — the operation underlying every embedding lookup.
        """
        indices = np.asarray(indices, dtype=np.int64)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices, grad)
                self._accumulate(full)

        return Tensor(self.data[indices], parents=(self,), backward_fn=backward)

    def concat(self, other: "Tensor", axis: int = -1) -> "Tensor":
        other = self._lift(other)
        split = self.data.shape[axis]

        def backward(grad: np.ndarray) -> None:
            first, second = np.split(grad, [split], axis=axis)
            if self.requires_grad:
                self._accumulate(first)
            if other.requires_grad:
                other._accumulate(second)

        return Tensor(
            np.concatenate([self.data, other.data], axis=axis),
            parents=(self, other),
            backward_fn=backward,
        )


def numeric_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central finite-difference gradient of a scalar function at *x*.

    Used by the test-suite to validate both the autodiff engine and the
    hand-derived analytic gradients.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        f_plus = fn(x)
        flat[i] = original - eps
        f_minus = fn(x)
        flat[i] = original
        grad_flat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad
