"""Regularizers: L2, N3, and the paper's Dirichlet sparsity loss on ω.

The embedding regulariser of Eq. 16 is an L2 penalty on the embedding
vectors of each triple in the batch, scaled by ``λ / n_D`` where ``n_D``
is the total embedding size of a triple.  N3 (cubic) regularisation from
Lacroix et al. (2018) is provided as an extension.

The Dirichlet negative log-likelihood of Eq. 12 pushes the interaction
weight vector ω toward sparsity:

    L_dir = -λ_dir Σ_p (α - 1) · log(|ω_p| / ||ω||₁)

with ``α < 1`` encouraging sparseness.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class L2Regularizer:
    """Squared L2 penalty ``(strength / scale) * ||θ||²`` with gradient."""

    def __init__(self, strength: float, scale: float = 1.0) -> None:
        if strength < 0:
            raise ConfigError("strength must be non-negative")
        if scale <= 0:
            raise ConfigError("scale must be positive")
        self.strength = float(strength)
        self.scale = float(scale)

    @property
    def coefficient(self) -> float:
        """The effective multiplier ``strength / scale``."""
        return self.strength / self.scale

    def value(self, theta: np.ndarray) -> float:
        return float(self.coefficient * np.sum(np.square(theta)))

    def grad(self, theta: np.ndarray) -> np.ndarray:
        return 2.0 * self.coefficient * theta


class N3Regularizer:
    """Nuclear-3-norm penalty ``(strength / scale) * Σ|θ|³`` (Lacroix 2018)."""

    def __init__(self, strength: float, scale: float = 1.0) -> None:
        if strength < 0:
            raise ConfigError("strength must be non-negative")
        if scale <= 0:
            raise ConfigError("scale must be positive")
        self.strength = float(strength)
        self.scale = float(scale)

    @property
    def coefficient(self) -> float:
        """The effective multiplier ``strength / scale``."""
        return self.strength / self.scale

    def value(self, theta: np.ndarray) -> float:
        return float(self.coefficient * np.sum(np.abs(theta) ** 3))

    def grad(self, theta: np.ndarray) -> np.ndarray:
        return 3.0 * self.coefficient * np.square(theta) * np.sign(theta)


class DirichletSparsityRegularizer:
    """Eq. 12: Dirichlet NLL on the interaction weight vector ω.

    Parameters
    ----------
    alpha:
        Dirichlet concentration; ``alpha < 1`` promotes sparsity (the paper
        tunes it to 1/16).
    strength:
        The multiplier λ_dir (the paper tunes it to 1e-2).
    eps:
        Numerical floor keeping ``log|ω|`` and the gradient finite at 0.
    """

    def __init__(self, alpha: float = 1.0 / 16.0, strength: float = 1e-2, eps: float = 1e-12):
        if alpha <= 0:
            raise ConfigError("alpha must be positive")
        if strength < 0:
            raise ConfigError("strength must be non-negative")
        self.alpha = float(alpha)
        self.strength = float(strength)
        self.eps = float(eps)

    def value(self, omega: np.ndarray) -> float:
        omega = np.asarray(omega, dtype=np.float64).ravel()
        abs_omega = np.abs(omega) + self.eps
        l1 = abs_omega.sum()
        return float(-self.strength * (self.alpha - 1.0) * np.sum(np.log(abs_omega / l1)))

    def grad(self, omega: np.ndarray) -> np.ndarray:
        """Gradient of :meth:`value` with respect to ω (same shape as ω).

        With m = ω.size and L = -λ(α-1) Σ_p [log|ω_p| - log ||ω||₁]:

            dL/dω_q = -λ(α-1) [ sign(ω_q)/|ω_q|  -  m · sign(ω_q)/||ω||₁ ]
        """
        omega = np.asarray(omega, dtype=np.float64)
        flat = omega.ravel()
        sign = np.sign(flat)
        # Treat exact zeros as positive so the gradient pushes them off zero
        # deterministically rather than vanishing.
        sign[sign == 0.0] = 1.0
        abs_omega = np.abs(flat) + self.eps
        l1 = abs_omega.sum()
        grad = -self.strength * (self.alpha - 1.0) * (sign / abs_omega - flat.size * sign / l1)
        return grad.reshape(omega.shape)
