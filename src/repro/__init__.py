"""repro — multi-embedding interaction for knowledge graph embedding.

A from-scratch reproduction of *"Analyzing Knowledge Graph Embedding
Methods from a Multi-Embedding Interaction Perspective"* (Tran & Takasu,
EDBT/DSI4 2019): the Eq. 8 interaction mechanism, the Table 1 model
derivations (DistMult, ComplEx, CP, CPh), learned interaction weights,
the quaternion four-embedding model, and the full training/evaluation
stack they need — in pure numpy.

Quickstart
----------
>>> import numpy as np
>>> from repro import generate_synthetic_kg, SyntheticKGConfig
>>> from repro import make_complex, Trainer, TrainingConfig, LinkPredictionEvaluator
>>> dataset = generate_synthetic_kg(SyntheticKGConfig(num_entities=200, seed=1))
>>> model = make_complex(dataset.num_entities, dataset.num_relations,
...                      total_dim=32, rng=np.random.default_rng(1))
>>> result = Trainer(dataset, TrainingConfig(epochs=5, batch_size=256)).train(model)
>>> metrics = LinkPredictionEvaluator(dataset).evaluate(model, "test")
"""

from repro.core import (
    KGEModel,
    LearnedWeightModel,
    MultiEmbeddingModel,
    WeightVector,
    analyze_weight_vector,
    get_preset,
    make_complex,
    make_cp,
    make_cph,
    make_distmult,
    make_learned_weight_model,
    make_model,
    make_quaternion,
    parity_dim,
)
from repro.errors import ReproError
from repro.eval import EvaluationResult, LinkPredictionEvaluator, RankingMetrics
from repro.kg import (
    KGDataset,
    SyntheticKGConfig,
    TripleSet,
    Vocabulary,
    augment_with_inverses,
    generate_synthetic_kg,
)
from repro.pipeline import (
    Registry,
    RunConfig,
    RunResult,
    evaluate_run,
    load_run,
    run_pipeline,
    serve_run,
    sweep,
)
from repro.parallel import ShardedEvaluator
from repro.serving import BatchedScorer, LinkPredictor, TopKResult
from repro.training import Trainer, TrainingConfig, TrainingResult, train_model

# The retrieval-index subsystem is exported lazily (PEP 562, via the
# shared repro._lazy machinery): its modules pull in the build machinery
# (k-means, process pools), which `import repro` should not pay for.
from repro._lazy import lazy_exports

_LAZY_EXPORTS = {
    "CandidateIndex": "repro.index.base",
    "ExactIndex": "repro.index.exact",
    "FoldedCandidateSource": "repro.index.folded_vectors",
    "IVFIndex": "repro.index.ivf",
    "load_index": "repro.index.base",
    "FaultInjector": "repro.reliability",
    "FaultPlan": "repro.reliability",
    "FaultSpec": "repro.reliability",
    "fault_scope": "repro.reliability",
    "MetricsRegistry": "repro.obs",
    "MetricsSnapshot": "repro.obs",
    "Tracer": "repro.obs",
    "metrics_scope": "repro.obs",
    "prometheus_text": "repro.obs",
    "telemetry_scope": "repro.obs",
    "trace_scope": "repro.obs",
}

__getattr__, __dir__ = lazy_exports(__name__, globals(), _LAZY_EXPORTS)

__version__ = "1.0.0"

__all__ = [
    "BatchedScorer",
    "CandidateIndex",
    "EvaluationResult",
    "ExactIndex",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FoldedCandidateSource",
    "IVFIndex",
    "KGDataset",
    "KGEModel",
    "LearnedWeightModel",
    "LinkPredictionEvaluator",
    "LinkPredictor",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MultiEmbeddingModel",
    "RankingMetrics",
    "Registry",
    "RunConfig",
    "RunResult",
    "ShardedEvaluator",
    "TopKResult",
    "ReproError",
    "SyntheticKGConfig",
    "Tracer",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
    "TripleSet",
    "Vocabulary",
    "WeightVector",
    "__version__",
    "analyze_weight_vector",
    "augment_with_inverses",
    "evaluate_run",
    "fault_scope",
    "generate_synthetic_kg",
    "get_preset",
    "load_index",
    "load_run",
    "make_complex",
    "make_cp",
    "make_cph",
    "make_distmult",
    "make_learned_weight_model",
    "make_model",
    "make_quaternion",
    "metrics_scope",
    "parity_dim",
    "prometheus_text",
    "run_pipeline",
    "serve_run",
    "sweep",
    "telemetry_scope",
    "trace_scope",
    "train_model",
]
