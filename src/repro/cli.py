"""Command-line interface: ``python -m repro <command>`` or ``repro-kge``.

Commands
--------
* ``generate`` — write a synthetic WN18-like dataset directory.
* ``inspect``  — dataset statistics and relation-pattern report.
* ``train``    — train a model (registry name or ``--config`` JSON) and
  report link-prediction metrics; ``--run-dir`` persists a resumable run.
* ``predict``  — top-k link prediction from a checkpoint or ``--run-dir``;
  ``--index`` serves through the run's approximate retrieval index and
  ``--stats`` reports cache/index effectiveness.
* ``build-index`` — build and persist the approximate retrieval index
  of a pipeline run directory.
* ``ingest``   — apply a :class:`~repro.ingest.GraphDelta` JSON file to
  a run: transactional dataset update, embedding-table growth,
  warm-start fine-tuning of touched rows, incremental index upkeep.
* ``serve``    — run the micro-batched async serving daemon
  (:mod:`repro.serving.server`) over a pipeline run directory.
* ``obs``      — render a run's persisted telemetry
  (``telemetry.jsonl``): the span tree and the merged metrics registry,
  optionally in Prometheus text format.
* ``table``    — regenerate paper Table 2, 3 or 4 end-to-end.
* ``weights``  — list ω presets with their §6.1.2 property analysis.

Every command goes through the unified run pipeline
(:mod:`repro.pipeline`): model choices come from the component
registries, and ``--config``/``--run-dir`` expose the declarative
:class:`~repro.pipeline.config.RunConfig` / run-artifact layer.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from repro.core.models import MODEL_FACTORIES
from repro.core.properties import analyze_weight_vector
from repro.core.weights import PRESETS
from repro.errors import ConfigError, ReproError
from repro.kg.io import load_dataset_directory, save_dataset_directory
from repro.kg.patterns import analyze_relations, inverse_leakage
from repro.kg.stats import compute_stats
from repro.kg.synthetic import SyntheticKGConfig, generate_synthetic_kg
from repro.pipeline.config import (
    DatasetSection,
    EvalSection,
    ModelSection,
    RunConfig,
    TrainingSection,
)
from repro.pipeline.runner import run_pipeline


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro-kge`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-kge",
        description="Multi-embedding interaction models for knowledge graph embedding.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic WN18-like dataset")
    gen.add_argument("output", help="directory to write train/valid/test files into")
    gen.add_argument("--entities", type=int, default=1500)
    gen.add_argument("--clusters", type=int, default=60)
    gen.add_argument("--seed", type=int, default=0)

    insp = sub.add_parser("inspect", help="print dataset statistics and patterns")
    insp.add_argument("dataset", help="dataset directory (train/valid/test files)")

    train = sub.add_parser("train", help="train a model and report metrics")
    # Choices come straight from the model-factory registry, so newly
    # registered models are immediately trainable from the CLI.
    train.add_argument("model", nargs="?", choices=sorted(MODEL_FACTORIES),
                       help="registered model name (optional with --config)")
    train.add_argument("--config", help="RunConfig JSON file; replaces the flag-based "
                                        "dataset/model/training setup below")
    train.add_argument("--run-dir", help="directory to persist the run "
                                         "(config + checkpoint + history + metrics)")
    train.add_argument("--dataset", help="dataset directory; synthetic if omitted")
    train.add_argument("--entities", type=int, default=800, help="synthetic dataset size")
    train.add_argument("--total-dim", type=int, default=64)
    train.add_argument("--epochs", type=int, default=200)
    train.add_argument("--batch-size", type=int, default=1024)
    train.add_argument("--learning-rate", type=float, default=0.02)
    train.add_argument("--regularization", type=float, default=3e-3)
    train.add_argument("--negatives", type=int, default=1)
    train.add_argument("--sampler", default="uniform",
                       help="negative sampler registry name (uniform, bernoulli)")
    train.add_argument("--optimizer", default="adam",
                       help="optimizer registry name (sgd, adagrad, adam)")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--shards", type=int, default=None,
                       help="split each ranking evaluation into this many shards "
                            "(metrics are bit-identical to the serial evaluator)")
    train.add_argument("--workers", type=int, default=None,
                       help="worker processes scoring evaluation shards "
                            "(0 = in-process; default from --config, else 0)")
    train.add_argument("--quiet", action="store_true")
    train.add_argument("--memmap", action="store_true",
                       help="store the run checkpoint as a directory of mappable "
                            ".npy files (workers/serving share OS pages) instead "
                            "of one weights.npz")
    train.add_argument("--dtype", choices=("float64", "float32", "float16"),
                       default=None,
                       help="downcast stored embedding tables; refused unless the "
                            "serving-path score deviation stays within the "
                            "storage equivalence tolerance")
    train.add_argument("--save", help="directory to write the trained model checkpoint")
    train.add_argument("--per-relation", action="store_true",
                       help="also print per-relation test metrics")

    pred = sub.add_parser("predict", help="top-k link prediction from a saved checkpoint "
                                          "or pipeline run directory")
    pred.add_argument("checkpoint", nargs="?",
                      help="model checkpoint directory (written by train --save); "
                           "optional with --run-dir")
    pred.add_argument("--run-dir", help="pipeline run directory written by train --run-dir; "
                                        "supplies the checkpoint and (synthetic) dataset")
    pred.add_argument("--dataset",
                      help="dataset directory supplying vocabularies and the filter index "
                           "(optional with --run-dir)")
    pred.add_argument("--head", help="head entity name (omit to predict heads)")
    pred.add_argument("--relation", help="relation name (omit to predict relations)")
    pred.add_argument("--tail", help="tail entity name (omit to predict tails)")
    pred.add_argument("-k", "--top", type=int, default=10, dest="top",
                      help="number of candidates to return")
    pred.add_argument("--raw", action="store_true",
                      help="rank known true triples too instead of filtering them out "
                           "(entity prediction only; relation prediction is always raw)")
    pred.add_argument("--index", action="store_true",
                      help="serve through the run's approximate retrieval index "
                           "(requires --run-dir; loads the persisted index or "
                           "builds one with the run config's settings)")
    pred.add_argument("--nprobe", type=int, default=None,
                      help="override the index's probe budget for this query "
                           "(nprobe == nlist is exact)")
    pred.add_argument("--stats", action="store_true",
                      help="print LRU cache hit-rate and, with --index, probed "
                           "fraction + sampled recall for the query batch")

    build_ix = sub.add_parser(
        "build-index",
        help="build and persist the approximate retrieval index of a pipeline run",
    )
    build_ix.add_argument("run_dir", help="pipeline run directory (train --run-dir)")
    build_ix.add_argument("--kind", choices=("ivf", "exact"), default=None,
                          help="index kind (default: the run config's index.kind, "
                               "or ivf)")
    build_ix.add_argument("--nlist", type=int, default=None,
                          help="k-means cells per partition (default ≈ 2·sqrt(N))")
    build_ix.add_argument("--nprobe", type=int, default=None,
                          help="default cells probed per query (default nlist // 8)")
    build_ix.add_argument("--seed", type=int, default=None,
                          help="k-means seed (deterministic builds)")
    build_ix.add_argument("--iters", type=int, default=None,
                          help="fixed k-means iteration count")
    build_ix.add_argument("--pq-m", type=int, default=None,
                          help="enable the product-quantized coarse pass with this "
                               "many subspaces (must divide the folded feature "
                               "width n_e*D)")
    build_ix.add_argument("--pq-refine", type=int, default=None,
                          help="candidates kept per query after the ADC scan "
                               "(exact re-rank budget; default 64)")
    build_ix.add_argument("--train-sample", type=int, default=None,
                          help="seeded row-sample size for k-means/codebook "
                               "fitting (bounds build cost at scale)")
    build_ix.add_argument("--fold-cache", type=int, default=None,
                          help="LRU capacity of the folded-matrix cache used "
                               "during builds (default 2)")
    build_ix.add_argument("--spill", type=int, default=None,
                          help="cells each entity is assigned to (multi-assignment)")
    build_ix.add_argument("--workers", type=int, default=0,
                          help="worker processes for the per-partition build fan-out "
                               "(0 = in-process)")

    serve = sub.add_parser(
        "serve",
        help="run the micro-batched async serving daemon over a pipeline run",
    )
    serve.add_argument("run_dir", help="pipeline run directory (train --run-dir)")
    serve.add_argument("--host", default=None,
                       help="bind address (default: the run config's serving.host)")
    serve.add_argument("--port", type=int, default=None,
                       help="bind port; 0 picks an ephemeral port "
                            "(default: the run config's serving.port)")
    serve.add_argument("--max-batch", type=int, default=None,
                       help="requests coalesced into one micro-batch per tick")
    serve.add_argument("--max-wait-ms", type=float, default=None,
                       help="max milliseconds a tick waits for stragglers")
    serve.add_argument("--queue-depth", type=int, default=None,
                       help="admission cap; requests beyond it fast-fail "
                            "with a retry-after hint")
    serve.add_argument("--index", choices=("none", "auto", "require"), default=None,
                       help="attach the run's retrieval index (auto: persisted "
                            "only; require: build if missing; none: exact sweeps)")

    ing = sub.add_parser(
        "ingest",
        help="apply a graph-delta JSON to a pipeline run: grow and warm-start "
             "fine-tune the checkpoint, update dataset, filter index and "
             "retrieval index incrementally",
    )
    ing.add_argument("run_dir", help="pipeline run directory (train --run-dir)")
    ing.add_argument("delta", help="GraphDelta JSON file (repro.ingest.GraphDelta)")
    ing.add_argument("--dataset",
                     help="dataset directory overriding the run config's dataset")
    ing.add_argument("--epochs", type=int, default=None,
                     help="warm-start fine-tuning epochs over touched-entity "
                          "triples (0 grows tables without training; default "
                          "from the run config's ingest section)")
    ing.add_argument("--batch-size", type=int, default=None)
    ing.add_argument("--learning-rate", type=float, default=None)
    ing.add_argument("--optimizer", default=None,
                     help="optimizer registry name for fine-tuning")
    ing.add_argument("--negatives", type=int, default=None, dest="num_negatives")
    ing.add_argument("--seed", type=int, default=None)
    ing.add_argument("--drift-threshold", type=float, default=None,
                     help="fraction of re-assigned dirty entities past which "
                          "the retrieval index is rebuilt instead of spliced")
    ing.add_argument("--dry-run", action="store_true",
                     help="apply in memory and print the receipt without "
                          "persisting anything")

    obs_p = sub.add_parser(
        "obs",
        help="render a run's persisted telemetry: span tree + metrics "
             "(train with observability.enabled to produce telemetry.jsonl)",
    )
    obs_p.add_argument("run_dir", help="pipeline run directory containing telemetry.jsonl")
    obs_p.add_argument("--prometheus", action="store_true",
                       help="dump the metrics in Prometheus text format instead "
                            "of the human-readable summary")

    sub.add_parser("weights", help="list weight-vector presets and their properties")

    table = sub.add_parser("table", help="regenerate a paper table (2, 3 or 4)")
    table.add_argument("number", type=int, choices=(2, 3, 4))
    table.add_argument("--config", help="RunConfig JSON file supplying the shared "
                                        "dataset/training setup for every row")
    table.add_argument("--run-dir", help="root directory; each table row is persisted "
                                         "as a reloadable run under it")
    table.add_argument("--entities", type=int, default=800)
    table.add_argument("--total-dim", type=int, default=64)
    table.add_argument("--epochs", type=int, default=300)
    table.add_argument("--seed", type=int, default=0)
    table.add_argument("--shards", type=int, default=None,
                       help="evaluation shards per table row (bit-identical metrics)")
    table.add_argument("--workers", type=int, default=None,
                       help="worker processes scoring evaluation shards (0 = in-process)")
    return parser


def _apply_parallel_flags(config: RunConfig, args: argparse.Namespace) -> RunConfig:
    """Overlay ``--shards``/``--workers`` onto a config's parallel section."""
    if args.shards is None and args.workers is None:
        return config
    data = config.to_dict()
    if args.shards is not None:
        data["parallel"]["eval_shards"] = args.shards
    if args.workers is not None:
        data["parallel"]["eval_workers"] = args.workers
    return RunConfig.from_dict(data)


def _dataset_section(args: argparse.Namespace) -> DatasetSection:
    """The dataset section implied by ``--dataset``/``--entities``/``--seed``."""
    if args.dataset:
        return DatasetSection(generator="directory", params={"path": args.dataset})
    return DatasetSection(
        generator="synthetic_wn18",
        params={
            "num_entities": args.entities,
            "num_clusters": max(1, args.entities // 20),
            "num_domains": max(1, args.entities // 100),
            "seed": args.seed,
        },
    )


def _apply_storage_flags(config: RunConfig, args: argparse.Namespace) -> RunConfig:
    """Overlay ``--memmap``/``--dtype`` onto a config's storage section."""
    if not args.memmap and args.dtype is None:
        return config
    data = config.to_dict()
    if args.memmap:
        data["storage"]["memmap"] = True
    if args.dtype is not None:
        data["storage"]["dtype"] = args.dtype
    return RunConfig.from_dict(data)


def _train_run_config(args: argparse.Namespace) -> RunConfig:
    """Resolve the train command's RunConfig (flag-based or ``--config``)."""
    if args.config:
        config = RunConfig.load(args.config)
        if args.model:
            data = config.to_dict()
            data["model"]["name"] = args.model
            config = RunConfig.from_dict(data)
        return _apply_storage_flags(_apply_parallel_flags(config, args), args)
    if not args.model:
        raise ConfigError("train needs a registered model name or --config FILE")
    return _apply_storage_flags(_apply_parallel_flags(RunConfig(
        dataset=_dataset_section(args),
        model=ModelSection(
            name=args.model,
            total_dim=args.total_dim,
            regularization=args.regularization,
            init_seed=args.seed,
        ),
        training=TrainingSection(
            epochs=args.epochs,
            batch_size=args.batch_size,
            learning_rate=args.learning_rate,
            optimizer=args.optimizer,
            num_negatives=args.negatives,
            negative_sampler=args.sampler,
            verbose=not args.quiet,
        ),
        evaluation=EvalSection(),
        seed=args.seed,
    ), args), args)


def _cmd_generate(args: argparse.Namespace) -> int:
    config = SyntheticKGConfig(
        num_entities=args.entities, num_clusters=args.clusters, seed=args.seed
    )
    dataset = generate_synthetic_kg(config)
    save_dataset_directory(dataset, args.output)
    print(compute_stats(dataset).format_table())
    print(f"\nwritten to {args.output}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    dataset = load_dataset_directory(args.dataset)
    print(compute_stats(dataset).format_table())
    print(f"\ninverse leakage (test vs train): {inverse_leakage(dataset, 'test'):.3f}\n")
    print(f"{'relation':<28} {'count':>7} {'symmetry':>9} {'inverse of':<28} {'score':>6}")
    for report in analyze_relations(dataset.train):
        partner = (
            dataset.relations.name(report.inverse_partner)
            if report.inverse_partner is not None
            else "-"
        )
        print(
            f"{dataset.relations.name(report.relation):<28} {report.count:>7} "
            f"{report.symmetry:>9.3f} {partner:<28} {report.inverse_score:>6.3f}"
        )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    config = _train_run_config(args)
    result = run_pipeline(config, run_dir=args.run_dir)
    model, dataset = result.model, result.dataset
    metrics = result.test_metrics
    print(f"\n{model.name} on {dataset.name} (epochs run: {result.epochs_run})")
    print(f"MRR     {metrics.mrr:.3f}")
    print(f"MR      {metrics.mr:.1f}")
    for k in sorted(metrics.hits):
        print(f"Hits@{k:<2} {metrics.hits[k]:.3f}")
    if args.per_relation:
        from repro.eval.per_relation import evaluate_per_relation, format_per_relation_table

        results = evaluate_per_relation(model, dataset, split="test")
        if results:
            print("\n" + format_per_relation_table(results))
    if args.run_dir:
        print(f"\nrun artifacts written to {args.run_dir}")
    if args.save:
        from repro.core.serialization import save_model

        save_model(model, args.save)
        print(f"\ncheckpoint written to {args.save}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.core.serialization import load_model
    from repro.errors import ServingError
    from repro.serving import LinkPredictor

    if args.index and not args.run_dir:
        raise ConfigError("predict --index needs --run-dir")
    if args.run_dir:
        from repro.pipeline.runner import load_run

        loaded = load_run(args.run_dir)
        model = loaded.model
        dataset = (
            load_dataset_directory(args.dataset) if args.dataset else loaded.build_dataset()
        )
    else:
        if not args.checkpoint:
            raise ConfigError("predict needs a checkpoint directory or --run-dir")
        if not args.dataset:
            raise ConfigError("predict needs --dataset when not using --run-dir")
        model = load_model(args.checkpoint)
        dataset = load_dataset_directory(args.dataset)
    if model.num_entities != dataset.num_entities or (
        model.num_relations != dataset.num_relations
    ):
        raise ServingError(
            f"checkpoint id spaces ({model.num_entities} entities / "
            f"{model.num_relations} relations) do not match dataset "
            f"({dataset.num_entities} / {dataset.num_relations})"
        )
    index = None
    if args.index:
        from repro.pipeline.components import build_index
        from repro.pipeline.config import IndexSection
        from repro.pipeline.runner import load_run_index

        index = load_run_index(
            args.run_dir, model, on_stale=loaded.config.index.on_stale
        )
        if index is None:
            section = loaded.config.index
            if not section.enabled:
                section = IndexSection(kind="ivf")
            index = build_index(model, section)
            print(f"no persisted index under {args.run_dir}; built {index!r} in memory")
        if args.nprobe is not None and hasattr(index, "nprobe"):
            index.nprobe = args.nprobe
    predictor = LinkPredictor(
        model,
        dataset,
        index=index,
        recall_sample_every=1 if (args.stats and index is not None) else 0,
    )
    from repro.obs import MetricsRegistry, metrics_scope

    # Ambient registry so index-level counters (e.g. the PQ prune pass)
    # land somewhere --stats can report them from.
    registry = MetricsRegistry()
    with metrics_scope(registry):
        predictions = predictor.predict(
            head=args.head,
            relation=args.relation,
            tail=args.tail,
            k=args.top,
            filtered=not args.raw,
        )
    missing = "relation" if args.relation is None else ("tail" if args.tail is None else "head")
    query = (args.head or "?", args.relation or "?", args.tail or "?")
    print(f"{model.name}: top-{len(predictions)} {missing} candidates for "
          f"({query[0]}, {query[1]}, {query[2]})")
    print(f"{'rank':>4} {'candidate':<28} {'score':>10}")
    for rank, (name, score) in enumerate(predictions, start=1):
        shown = f"{score:>10.4f}" if np.isfinite(score) else "  filtered"
        print(f"{rank:>4} {name:<28} {shown}")
    if args.stats:
        cache = predictor.cache_stats
        if cache is not None:
            print(f"\ncache: hit-rate {cache.hit_rate:.1%} "
                  f"({cache.hits} hits / {cache.misses} misses, "
                  f"size {cache.size}/{cache.capacity})")
        stats = predictor.index_stats
        if stats is not None and stats.queries:
            recall = stats.recall_estimate
            shown_recall = f"{recall:.3f}" if recall is not None else "n/a"
            print(f"index: probed {stats.probed_fraction:.1%} of entities per query "
                  f"({stats.entities_scored:,} of "
                  f"{stats.queries * stats.num_entities:,}); "
                  f"sampled recall@{args.top} {shown_recall}")
            fold = getattr(predictor.index, "fold_cache_stats", None)
            if fold is not None:
                print(f"fold cache: {fold.hits} hits / {fold.misses} misses, "
                      f"{fold.evictions} evictions, {fold.store_hits} store hits")
        from repro.obs import prometheus_text, publish_predictor_metrics

        publish_predictor_metrics(registry, predictor)
        print("\nregistry metrics:")
        print(prometheus_text(registry.snapshot()).rstrip())
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import load_telemetry, prometheus_text, summarize_run

    if args.prometheus:
        _, metrics = load_telemetry(args.run_dir)
        if metrics is None:
            raise ConfigError(
                f"telemetry at {args.run_dir} carries no metrics record"
            )
        print(prometheus_text(metrics).rstrip())
        return 0
    print(summarize_run(args.run_dir))
    return 0


def _cmd_build_index(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.pipeline.config import IndexSection
    from repro.pipeline.runner import build_run_index, load_run

    loaded = load_run(args.run_dir)
    section = loaded.config.index
    if not section.enabled:
        section = IndexSection(kind="ivf")
    overrides = {
        field_name: value
        for field_name, value in (
            ("kind", args.kind),
            ("nlist", args.nlist),
            ("nprobe", args.nprobe),
            ("seed", args.seed),
            ("iters", args.iters),
            ("spill", args.spill),
            ("pq_m", args.pq_m),
            ("pq_refine", args.pq_refine),
            ("train_sample", args.train_sample),
            ("fold_cache", args.fold_cache),
        )
        if value is not None
    }
    if overrides:
        section = dataclasses.replace(section, **overrides)
    index = build_run_index(args.run_dir, section=section, workers=args.workers)
    print(f"built {index!r}")
    if hasattr(index, "built_partitions"):
        partitions = index.built_partitions
        print(f"partitions: {len(partitions)} "
              f"({index.model.num_relations} relations x tail/head)")
    print(f"index written to {args.run_dir}/index")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.pipeline.runner import load_run
    from repro.serving.server import serve_forever

    # The stored config's serving section supplies the defaults; CLI
    # flags override field by field.
    section = load_run(args.run_dir).config.serving
    overrides = {
        field_name: value
        for field_name, value in (
            ("host", args.host),
            ("port", args.port),
            ("max_batch", args.max_batch),
            ("max_wait_ms", args.max_wait_ms),
            ("queue_depth", args.queue_depth),
            ("index", args.index),
        )
        if value is not None
    }
    if overrides:
        section = dataclasses.replace(section, **overrides)
    serve_forever(
        args.run_dir,
        host=section.host,
        port=section.port,
        max_batch=section.max_batch,
        max_wait_ms=section.max_wait_ms,
        queue_depth=section.queue_depth,
        index=section.index_mode,
    )
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import dataclasses
    import json
    from pathlib import Path

    from repro.core.serialization import load_model, save_model
    from repro.ingest import GraphDelta, ingest_delta
    from repro.kg.io import save_dataset_directory
    from repro.pipeline.runner import load_run, load_run_index
    from repro.reliability.atomic import atomic_write_text
    from repro.reliability.manifest import read_manifest, sha256_bytes, write_manifest

    run_dir = Path(args.run_dir)
    loaded = load_run(run_dir)
    config = loaded.config
    # The warm-start fine-tuner updates rows in place; memmap checkpoints
    # load read-only, so rehydrate the tables as private writable arrays.
    model = load_model(run_dir / "checkpoint", memmap=False)
    dataset = (
        load_dataset_directory(args.dataset) if args.dataset else loaded.build_dataset()
    )
    delta = GraphDelta.load(args.delta)
    index = load_run_index(run_dir, model, on_stale=config.index.on_stale)

    section = config.ingest
    overrides = {
        field_name: value
        for field_name, value in (
            ("epochs", args.epochs),
            ("batch_size", args.batch_size),
            ("learning_rate", args.learning_rate),
            ("optimizer", args.optimizer),
            ("num_negatives", args.num_negatives),
            ("seed", args.seed),
            ("drift_threshold", args.drift_threshold),
        )
        if value is not None
    }
    if overrides:
        section = dataclasses.replace(section, **overrides)

    outcome = ingest_delta(model, dataset, delta, index=index, **section.ingest_kwargs())
    print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
    if not outcome.applied:
        print("\nempty delta; run directory left untouched")
        return 0
    if args.dry_run:
        print("\ndry run; run directory left untouched")
        return 0

    # Persist the post-delta state so the run directory stays coherent:
    # the mutated dataset becomes a directory dataset the config points
    # at, the grown checkpoint replaces the old one, and the manifest is
    # rewritten so load_run keeps verifying.
    storage = config.storage
    dataset_dir = run_dir / "dataset"
    save_dataset_directory(outcome.dataset, dataset_dir)
    data = config.to_dict()
    data["dataset"] = {"generator": "directory", "params": {"path": str(dataset_dir)}}
    config = RunConfig.from_dict(data)

    hashes = {
        name: digest
        for name, digest in (read_manifest(run_dir) or {}).items()
        if not name.startswith("checkpoint/") and name != "config.json"
    }
    checkpoint_hashes = save_model(
        model,
        run_dir / "checkpoint",
        memmap=storage.memmap,
        dtype=None if storage.dtype == "float64" else storage.dtype,
        equivalence_tol=storage.equivalence_tol,
    )
    for name, digest in checkpoint_hashes.items():
        hashes[f"checkpoint/{name}"] = digest
    config_text = config.to_json() + "\n"
    atomic_write_text(run_dir / "config.json", config_text)
    hashes["config.json"] = sha256_bytes(config_text.encode("utf-8"))
    write_manifest(run_dir, hashes)

    if index is not None:
        update = outcome.index_update
        if update is not None and not update.rebuild_triggered:
            index.save(run_dir / "index", memmap=storage.memmap)
            print(f"\nindex updated incrementally (drift {update.drift:.3f}) "
                  f"and re-persisted")
        else:
            from repro.pipeline.runner import build_run_index

            build_run_index(run_dir)
            print("\nassignment drift past threshold; index rebuilt from scratch")
    print(f"run artifacts under {run_dir} updated "
          f"(+{outcome.stats.num_added} / -{outcome.stats.num_deleted} triples)")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentSettings, build_dataset, format_table
    from repro.paper_tables import run_table2, run_table3, run_table4

    if args.config:
        settings = ExperimentSettings.from_run_config(RunConfig.load(args.config))
    else:
        settings = ExperimentSettings(
            dataset_config=SyntheticKGConfig(
                num_entities=args.entities,
                num_clusters=max(1, args.entities // 20),
                num_domains=max(1, args.entities // 100),
                seed=7,
            ),
            total_dim=args.total_dim,
            epochs=args.epochs,
            seed=args.seed,
        )
    if args.shards is not None or args.workers is not None:
        import dataclasses

        replacements = {}
        if args.shards is not None:
            replacements["eval_shards"] = args.shards
        if args.workers is not None:
            replacements["eval_workers"] = args.workers
        settings = dataclasses.replace(settings, **replacements)
    dataset = build_dataset(settings)
    run_root = args.run_dir
    if args.number == 2:
        rows = run_table2(dataset, settings, run_root=run_root)
        print(format_table(f"Table 2: derived weight vectors on {dataset.name}", rows))
    elif args.number == 3:
        rows, learned = run_table3(dataset, settings, run_root=run_root)
        print(format_table(f"Table 3: auto-learned weight vectors on {dataset.name}", rows))
        print("\nlearned omega snapshots:")
        for label, omega in learned.items():
            values = ", ".join(f"{v:+.2f}" for v in omega.flatten())
            print(f"  {label:<42} ({values})")
    else:
        quaternion_row, complex_row = run_table4(dataset, settings, run_root=run_root)
        print(format_table(
            f"Table 4: quaternion four-embedding on {dataset.name}",
            [quaternion_row, complex_row],
        ))
    if run_root:
        print(f"\nper-row run artifacts written under {run_root}")
    return 0


def _cmd_weights(args: argparse.Namespace) -> int:
    print(f"{'preset':<18} {'weights':<30} {'complete':>8} {'stable':>7} "
          f"{'disting.':>8} {'prediction':>11}")
    for key, preset in sorted(PRESETS.items()):
        props = analyze_weight_vector(preset)
        flat = preset.flatten()
        shown = ",".join(f"{v:g}" for v in flat) if len(flat) <= 8 else f"<{len(flat)} terms>"
        print(
            f"{key:<18} {shown:<30} {str(props.complete):>8} {str(props.stable):>7} "
            f"{str(props.distinguishable):>8} {props.predicted_quality():>11}"
        )
    return 0


_COMMANDS = {
    "build-index": _cmd_build_index,
    "generate": _cmd_generate,
    "ingest": _cmd_ingest,
    "inspect": _cmd_inspect,
    "obs": _cmd_obs,
    "predict": _cmd_predict,
    "serve": _cmd_serve,
    "table": _cmd_table,
    "train": _cmd_train,
    "weights": _cmd_weights,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
