"""Programmatic reproduction of the paper's evaluation tables.

Each ``run_tableN`` function trains every row of the corresponding table
on a synthetic WN18-like dataset and returns
:class:`~repro.experiments.ExperimentRow` objects; ``format_table``
renders them in the paper's layout.  The pytest-benchmark files under
``benchmarks/`` are thin wrappers over these functions that add timing
and shape assertions; the CLI exposes them as ``repro-kge table N``.
"""

from __future__ import annotations

from repro.core import weights as W
from repro.core.models import (
    make_complex,
    make_distmult,
    make_learned_weight_model,
    make_model,
    make_quaternion,
)
from repro.core.weights import WeightVector
from repro.experiments import (
    ExperimentRow,
    ExperimentSettings,
    run_experiment_row,
    seeded_rng,
)
from repro.kg.graph import KGDataset

#: Table 2 rows: (label, preset-or-"distmult_n1", evaluate-train-too).
TABLE2_ROWS: tuple[tuple[str, object, bool], ...] = (
    ("DistMult (1, 0, 0, 0, 0, 0, 0, 0)", "distmult_n1", True),
    ("ComplEx (1, 0, 0, 1, 0, -1, 1, 0)", W.COMPLEX, True),
    ("CP (0, 0, 1, 0, 0, 0, 0, 0)", W.CP, True),
    ("CPh (0, 0, 1, 0, 0, 1, 0, 0)", W.CPH, True),
    ("Bad example 1 (0, 0, 20, 0, 0, 1, 0, 0)", W.BAD_EXAMPLE_1, False),
    ("Bad example 2 (0, 0, 1, 1, 1, 1, 0, 0)", W.BAD_EXAMPLE_2, False),
    ("Good example 1 (0, 0, 20, 1, 1, 20, 0, 0)", W.GOOD_EXAMPLE_1, False),
    ("Good example 2 (1, 1, -1, 1, 1, -1, 1, 1)", W.GOOD_EXAMPLE_2, False),
)

#: Table 3 rows: (label, transform-or-None-for-fixed-uniform, sparse).
TABLE3_ROWS: tuple[tuple[str, str | None, bool], ...] = (
    ("Uniform weight (1, 1, 1, 1, 1, 1, 1, 1)", None, False),
    ("Auto weight no restriction", "identity", False),
    ("Auto weight in (-1, 1) by tanh", "tanh", False),
    ("Auto weight in (0, 1) by sigmoid", "sigmoid", False),
    ("Auto weight in (0, 1) by softmax", "softmax", False),
    ("Auto weight no restriction, sparse", "identity", True),
    ("Auto weight in (-1, 1) by tanh, sparse", "tanh", True),
    ("Auto weight in (0, 1) by sigmoid, sparse", "sigmoid", True),
    ("Auto weight in (0, 1) by softmax, sparse", "softmax", True),
)


def run_table2(dataset: KGDataset, settings: ExperimentSettings) -> list[ExperimentRow]:
    """Train and evaluate every Table 2 row (derived ω + variants)."""
    rows = []
    for offset, (label, preset, with_train) in enumerate(TABLE2_ROWS):
        rng = seeded_rng(settings, offset)
        if preset == "distmult_n1":
            model = make_distmult(
                dataset.num_entities, dataset.num_relations, settings.total_dim,
                rng, regularization=settings.regularization,
            )
        else:
            model = make_model(
                preset, dataset.num_entities, dataset.num_relations, rng,
                total_dim=settings.total_dim, regularization=settings.regularization,
            )
        rows.append(
            run_experiment_row(model, dataset, settings, label=label,
                               evaluate_train=with_train)
        )
    return rows


def run_table3(
    dataset: KGDataset, settings: ExperimentSettings
) -> tuple[list[ExperimentRow], dict[str, WeightVector]]:
    """Train every Table 3 row; also return the learned ω snapshots."""
    rows = []
    learned_omegas: dict[str, WeightVector] = {}
    for offset, (label, transform, sparse) in enumerate(TABLE3_ROWS):
        rng = seeded_rng(settings, 100 + offset)
        if transform is None:
            model = make_model(
                W.UNIFORM, dataset.num_entities, dataset.num_relations, rng,
                total_dim=settings.total_dim, regularization=settings.regularization,
            )
        else:
            model = make_learned_weight_model(
                dataset.num_entities, dataset.num_relations, settings.total_dim,
                rng, transform=transform, sparse=sparse,
                regularization=settings.regularization,
            )
        rows.append(run_experiment_row(model, dataset, settings, label=label))
        if transform is not None:
            learned_omegas[label] = model.current_weight_vector()
    return rows, learned_omegas


def run_table4(
    dataset: KGDataset, settings: ExperimentSettings
) -> tuple[ExperimentRow, ExperimentRow]:
    """Train the Table 4 quaternion model plus a ComplEx reference."""
    quaternion = make_quaternion(
        dataset.num_entities, dataset.num_relations, settings.total_dim,
        seeded_rng(settings, 200), regularization=settings.regularization,
    )
    quaternion_row = run_experiment_row(
        quaternion, dataset, settings,
        label="Quaternion-based four-embedding", evaluate_train=True,
    )
    complex_model = make_complex(
        dataset.num_entities, dataset.num_relations, settings.total_dim,
        seeded_rng(settings, 201), regularization=settings.regularization,
    )
    complex_row = run_experiment_row(
        complex_model, dataset, settings, label="ComplEx (reference)"
    )
    return quaternion_row, complex_row
