"""Programmatic reproduction of the paper's evaluation tables.

Each ``run_tableN`` function trains every row of the corresponding table
on a synthetic WN18-like dataset and returns
:class:`~repro.experiments.ExperimentRow` objects; ``format_table``
renders them in the paper's layout.  The pytest-benchmark files under
``benchmarks/`` are thin wrappers over these functions that add timing
and shape assertions; the CLI exposes them as ``repro-kge table N``.

Every row is declarative — a model name resolved through the pipeline
registries (ω preset keys double as model names) plus a per-row
``seed_offset`` — and runs through
:func:`~repro.pipeline.runner.run_pipeline`.  Pass ``run_root`` to any
runner to persist each row as a reloadable run directory.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.weights import WeightVector
from repro.experiments import (
    ExperimentRow,
    ExperimentSettings,
    row_from_result,
    run_config_row,
)
from repro.kg.graph import KGDataset
from repro.pipeline.config import ModelSection
from repro.pipeline.runner import run_pipeline

#: Table 2 rows: (label, model/preset registry key, evaluate-train-too).
TABLE2_ROWS: tuple[tuple[str, str, bool], ...] = (
    ("DistMult (1, 0, 0, 0, 0, 0, 0, 0)", "distmult_n1", True),
    ("ComplEx (1, 0, 0, 1, 0, -1, 1, 0)", "complex", True),
    ("CP (0, 0, 1, 0, 0, 0, 0, 0)", "cp", True),
    ("CPh (0, 0, 1, 0, 0, 1, 0, 0)", "cph", True),
    ("Bad example 1 (0, 0, 20, 0, 0, 1, 0, 0)", "bad_example_1", False),
    ("Bad example 2 (0, 0, 1, 1, 1, 1, 0, 0)", "bad_example_2", False),
    ("Good example 1 (0, 0, 20, 1, 1, 20, 0, 0)", "good_example_1", False),
    ("Good example 2 (1, 1, -1, 1, 1, -1, 1, 1)", "good_example_2", False),
)

#: Table 3 rows: (label, transform-or-None-for-fixed-uniform, sparse).
TABLE3_ROWS: tuple[tuple[str, str | None, bool], ...] = (
    ("Uniform weight (1, 1, 1, 1, 1, 1, 1, 1)", None, False),
    ("Auto weight no restriction", "identity", False),
    ("Auto weight in (-1, 1) by tanh", "tanh", False),
    ("Auto weight in (0, 1) by sigmoid", "sigmoid", False),
    ("Auto weight in (0, 1) by softmax", "softmax", False),
    ("Auto weight no restriction, sparse", "identity", True),
    ("Auto weight in (-1, 1) by tanh, sparse", "tanh", True),
    ("Auto weight in (0, 1) by sigmoid, sparse", "sigmoid", True),
    ("Auto weight in (0, 1) by softmax, sparse", "softmax", True),
)


def _row_dir(run_root: str | Path | None, index: int, label: str) -> str | None:
    """Per-row run directory under *run_root* (or None to skip artifacts)."""
    if run_root is None:
        return None
    slug = re.sub(r"[^a-z0-9]+", "-", label.lower()).strip("-")[:48]
    return str(Path(run_root) / f"row{index:02d}-{slug}")


def _model_section(
    settings: ExperimentSettings,
    name: str,
    seed_offset: int,
    **options: object,
) -> ModelSection:
    return ModelSection(
        name=name,
        total_dim=settings.total_dim,
        regularization=settings.regularization,
        seed_offset=seed_offset,
        options=dict(options),
    )


def run_table2(
    dataset: KGDataset,
    settings: ExperimentSettings,
    run_root: str | Path | None = None,
) -> list[ExperimentRow]:
    """Train and evaluate every Table 2 row (derived ω + variants)."""
    rows = []
    for offset, (label, name, with_train) in enumerate(TABLE2_ROWS):
        config = settings.to_run_config(
            model=_model_section(settings, name, offset),
            evaluate_train=with_train,
            label=label,
        )
        rows.append(
            run_config_row(config, dataset=dataset, run_dir=_row_dir(run_root, offset, label))
        )
    return rows


def run_table3(
    dataset: KGDataset,
    settings: ExperimentSettings,
    run_root: str | Path | None = None,
) -> tuple[list[ExperimentRow], dict[str, WeightVector]]:
    """Train every Table 3 row; also return the learned ω snapshots."""
    rows = []
    learned_omegas: dict[str, WeightVector] = {}
    for offset, (label, transform, sparse) in enumerate(TABLE3_ROWS):
        if transform is None:
            model = _model_section(settings, "uniform", 100 + offset)
        else:
            model = _model_section(
                settings, "learned", 100 + offset, transform=transform, sparse=sparse
            )
        config = settings.to_run_config(model=model, label=label)
        result = run_pipeline(
            config, dataset=dataset, run_dir=_row_dir(run_root, offset, label)
        )
        rows.append(row_from_result(result, label=label))
        if transform is not None:
            learned_omegas[label] = result.model.current_weight_vector()
    return rows, learned_omegas


def run_table4(
    dataset: KGDataset,
    settings: ExperimentSettings,
    run_root: str | Path | None = None,
) -> tuple[ExperimentRow, ExperimentRow]:
    """Train the Table 4 quaternion model plus a ComplEx reference."""
    quaternion_label = "Quaternion-based four-embedding"
    quaternion_row = run_config_row(
        settings.to_run_config(
            model=_model_section(settings, "quaternion", 200),
            evaluate_train=True,
            label=quaternion_label,
        ),
        dataset=dataset,
        run_dir=_row_dir(run_root, 0, quaternion_label),
    )
    complex_row = run_config_row(
        settings.to_run_config(
            model=_model_section(settings, "complex", 201),
            label="ComplEx (reference)",
        ),
        dataset=dataset,
        run_dir=_row_dir(run_root, 1, "ComplEx (reference)"),
    )
    return quaternion_row, complex_row
