"""Interaction weight vectors — the ω of Eq. 8 and Table 1.

A weight vector assigns a scalar ω_{ijk} to every trilinear term
⟨h^(i), t^(j), r^(k)⟩.  We store ω as an ``(n_h, n_t, n_r)`` tensor; the
paper's 8-tuples (n = 2) are its row-major flattening in the order

    ⟨h1t1r1⟩, ⟨h1t1r2⟩, ⟨h1t2r1⟩, ⟨h1t2r2⟩,
    ⟨h2t1r1⟩, ⟨h2t1r2⟩, ⟨h2t2r1⟩, ⟨h2t2r2⟩

matching the row order of Table 1.  This module ships every preset the
paper uses: Table 1's model derivations (with all listed equivalents),
Table 2's good/bad hand-crafted variants, Table 3's uniform baseline, and
the quaternion tensor of Eq. 14.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.algebra.quaternion import quaternion_weight_tensor
from repro.errors import ConfigError
from repro.pipeline.registry import Registry


@dataclass(frozen=True)
class WeightVector:
    """An immutable interaction weight tensor with a display name.

    Attributes
    ----------
    name:
        Human-readable identifier used in tables and logs.
    tensor:
        ``(n_h, n_t, n_r)`` float array; ``tensor[i, j, k]`` weighs the
        trilinear term ⟨h^(i+1), t^(j+1), r^(k+1)⟩.
    """

    name: str
    tensor: np.ndarray

    def __post_init__(self) -> None:
        tensor = np.asarray(self.tensor, dtype=np.float64)
        if tensor.ndim != 3:
            raise ConfigError(f"weight tensor must be 3-D (n_h, n_t, n_r), got {tensor.shape}")
        if min(tensor.shape) < 1:
            raise ConfigError("weight tensor axes must be non-empty")
        tensor = tensor.copy()
        tensor.setflags(write=False)
        object.__setattr__(self, "tensor", tensor)

    # ------------------------------------------------------------------ shape
    @property
    def num_head_vectors(self) -> int:
        """Number of embedding vectors per entity in the head role."""
        return self.tensor.shape[0]

    @property
    def num_tail_vectors(self) -> int:
        """Number of embedding vectors per entity in the tail role."""
        return self.tensor.shape[1]

    @property
    def num_entity_vectors(self) -> int:
        """Embedding vectors per entity (head and tail share one table)."""
        if self.tensor.shape[0] != self.tensor.shape[1]:
            raise ConfigError("head/tail vector counts differ; no shared entity table")
        return self.tensor.shape[0]

    @property
    def num_relation_vectors(self) -> int:
        """Number of embedding vectors per relation."""
        return self.tensor.shape[2]

    def flatten(self) -> tuple[float, ...]:
        """Row-major 8-tuple (for n=2) in the paper's Table 1 order."""
        return tuple(float(x) for x in self.tensor.ravel())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightVector):
            return NotImplemented
        return self.name == other.name and np.array_equal(self.tensor, other.tensor)

    def __hash__(self) -> int:
        return hash((self.name, self.tensor.tobytes(), self.tensor.shape))

    def __repr__(self) -> str:
        return f"WeightVector({self.name!r}, {self.flatten()})"

    # -------------------------------------------------------------- transforms
    def renamed(self, name: str) -> "WeightVector":
        """Copy with a different display name."""
        return WeightVector(name, self.tensor)

    def scaled(self, factor: float) -> "WeightVector":
        """Copy with every weight multiplied by *factor*."""
        return WeightVector(f"{self.name}*{factor:g}", self.tensor * factor)

    def head_tail_swapped(self) -> "WeightVector":
        """The ω obtained by exchanging the head and tail slots.

        The paper uses this symmetry to derive "ComplEx equiv. 1" and
        "CPh equiv." from the primary weight vectors.
        """
        return WeightVector(f"{self.name}(h<->t)", np.swapaxes(self.tensor, 0, 1))

    def nonzero_terms(self) -> list[tuple[int, int, int, float]]:
        """All (i, j, k, weight) with weight != 0, 0-indexed."""
        out = []
        for (i, j, k), value in np.ndenumerate(self.tensor):
            if value != 0.0:
                out.append((i, j, k, float(value)))
        return out

    @classmethod
    def from_flat(
        cls, name: str, values: object, shape: tuple[int, int, int] = (2, 2, 2)
    ) -> "WeightVector":
        """Build from a flat sequence in Table 1 row order."""
        arr = np.asarray(values, dtype=np.float64)
        expected = int(np.prod(shape))
        if arr.size != expected:
            raise ConfigError(f"expected {expected} weights for shape {shape}, got {arr.size}")
        return cls(name, arr.reshape(shape))


def _flat(name: str, values: tuple[float, ...]) -> WeightVector:
    return WeightVector.from_flat(name, values)


# --- Table 1: model derivations -------------------------------------------
DISTMULT = _flat("DistMult", (1, 0, 0, 0, 0, 0, 0, 0))
COMPLEX = _flat("ComplEx", (1, 0, 0, 1, 0, -1, 1, 0))
COMPLEX_EQUIV_1 = _flat("ComplEx equiv. 1", (1, 0, 0, -1, 0, 1, 1, 0))
COMPLEX_EQUIV_2 = _flat("ComplEx equiv. 2", (0, 1, -1, 0, 1, 0, 0, 1))
COMPLEX_EQUIV_3 = _flat("ComplEx equiv. 3", (0, 1, 1, 0, -1, 0, 0, 1))
CP = _flat("CP", (0, 0, 1, 0, 0, 0, 0, 0))
CPH = _flat("CPh", (0, 0, 1, 0, 0, 1, 0, 0))
CPH_EQUIV = _flat("CPh equiv.", (0, 0, 0, 1, 1, 0, 0, 0))

# --- Table 2: hand-crafted variants ----------------------------------------
BAD_EXAMPLE_1 = _flat("Bad example 1", (0, 0, 20, 0, 0, 1, 0, 0))
BAD_EXAMPLE_2 = _flat("Bad example 2", (0, 0, 1, 1, 1, 1, 0, 0))
GOOD_EXAMPLE_1 = _flat("Good example 1", (0, 0, 20, 1, 1, 20, 0, 0))
GOOD_EXAMPLE_2 = _flat("Good example 2", (1, 1, -1, 1, 1, -1, 1, 1))

# --- Table 3: the uniform baseline ------------------------------------------
UNIFORM = _flat("Uniform weight", (1, 1, 1, 1, 1, 1, 1, 1))

# --- Eq. 14: quaternion four-embedding --------------------------------------
QUATERNION = WeightVector("Quaternion", quaternion_weight_tensor())

#: One-embedding special case: DistMult expressed with n = 1.
DISTMULT_N1 = WeightVector("DistMult(n=1)", np.ones((1, 1, 1)))

#: Registry of all named presets, keyed by a lowercase identifier.  New ω
#: presets registered here are immediately usable as model names in
#: :class:`~repro.pipeline.config.RunConfig` and the CLI.
PRESETS: Registry = Registry("weight preset")
for _key, _preset in (
    ("distmult", DISTMULT),
    ("complex", COMPLEX),
    ("complex_equiv_1", COMPLEX_EQUIV_1),
    ("complex_equiv_2", COMPLEX_EQUIV_2),
    ("complex_equiv_3", COMPLEX_EQUIV_3),
    ("cp", CP),
    ("cph", CPH),
    ("cph_equiv", CPH_EQUIV),
    ("bad_example_1", BAD_EXAMPLE_1),
    ("bad_example_2", BAD_EXAMPLE_2),
    ("good_example_1", GOOD_EXAMPLE_1),
    ("good_example_2", GOOD_EXAMPLE_2),
    ("uniform", UNIFORM),
    ("quaternion", QUATERNION),
    ("distmult_n1", DISTMULT_N1),
):
    PRESETS.register(_key, _preset)
del _key, _preset


def get_preset(name: str) -> WeightVector:
    """Look up a preset ω by identifier; raises :class:`ConfigError` if unknown."""
    return PRESETS.get(name)


def complex_equivalents() -> tuple[WeightVector, ...]:
    """ComplEx and its three Table 1 equivalents."""
    return (COMPLEX, COMPLEX_EQUIV_1, COMPLEX_EQUIV_2, COMPLEX_EQUIV_3)


def cph_equivalents() -> tuple[WeightVector, ...]:
    """CPh and its Table 1 equivalent."""
    return (CPH, CPH_EQUIV)
