"""Algebra substrates: complex and quaternion arithmetic for KGE scores."""

from repro.core.algebra.complex_ops import (
    complex_score,
    complex_score_expanded,
    complex_trilinear,
    pack_complex,
    real_trilinear,
    unpack_complex,
)
from repro.core.algebra.quaternion import (
    COMPONENTS,
    conjugate,
    hamilton_product,
    norm,
    normalize,
    quaternion_score,
    quaternion_score_expanded,
    quaternion_trilinear,
    quaternion_weight_tensor,
    real_part,
)

__all__ = [
    "COMPONENTS",
    "complex_score",
    "complex_score_expanded",
    "complex_trilinear",
    "conjugate",
    "hamilton_product",
    "norm",
    "normalize",
    "pack_complex",
    "quaternion_score",
    "quaternion_score_expanded",
    "quaternion_trilinear",
    "quaternion_weight_tensor",
    "real_part",
    "real_trilinear",
    "unpack_complex",
]
