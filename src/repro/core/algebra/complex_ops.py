"""Complex algebra for the ComplEx score function.

ComplEx (Trouillon et al. 2016) scores a triple as ``Re(⟨h, t̄, r⟩)`` with
complex-valued embeddings and the complex conjugate of the tail.  The
paper's Eq. 9 expands this into four real trilinear products:

    Re(⟨h, t̄, r⟩) =  ⟨Re h, Re t, Re r⟩ + ⟨Re h, Im t, Im r⟩
                   − ⟨Im h, Re t, Im r⟩ + ⟨Im h, Im t, Re r⟩

which is exactly a two-embedding interaction with the "ComplEx" weight
vector of Table 1.  This module provides both sides of that identity so
tests can certify the derivation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


def complex_trilinear(h: np.ndarray, t: np.ndarray, r: np.ndarray) -> np.ndarray:
    """The complex trilinear product ``⟨h, t̄, r⟩ = Σ_d h_d · conj(t_d) · r_d``.

    Accepts arrays of shape ``(..., D)`` with complex dtype and reduces the
    last axis; the conjugate is applied to *t* per complex-algebra
    convention (paper §2.2.3).
    """
    h, t, r = (np.asarray(x) for x in (h, t, r))
    if not (h.shape == t.shape == r.shape):
        raise ModelError("h, t, r must share a shape")
    return np.sum(h * np.conj(t) * r, axis=-1)


def complex_score(h: np.ndarray, t: np.ndarray, r: np.ndarray) -> np.ndarray:
    """ComplEx score (paper Eq. 5): ``Re(⟨h, t̄, r⟩)``."""
    return np.real(complex_trilinear(h, t, r))


def real_trilinear(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """The real trilinear product ``⟨a, b, c⟩ = Σ_d a_d b_d c_d`` (Eq. 3)."""
    a, b, c = (np.asarray(x, dtype=np.float64) for x in (a, b, c))
    if not (a.shape == b.shape == c.shape):
        raise ModelError("a, b, c must share a shape")
    return np.sum(a * b * c, axis=-1)


def complex_score_expanded(h: np.ndarray, t: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Paper Eq. 9/10: the four-term real expansion of the ComplEx score.

    Mapping ``Re → embedding (1)`` and ``Im → embedding (2)`` turns this
    into the multi-embedding weight vector ``(1, 0, 0, 1, 0, -1, 1, 0)``.
    """
    h_re, h_im = np.real(h), np.imag(h)
    t_re, t_im = np.real(t), np.imag(t)
    r_re, r_im = np.real(r), np.imag(r)
    return (
        real_trilinear(h_re, t_re, r_re)
        + real_trilinear(h_re, t_im, r_im)
        - real_trilinear(h_im, t_re, r_im)
        + real_trilinear(h_im, t_im, r_re)
    )


def pack_complex(re: np.ndarray, im: np.ndarray) -> np.ndarray:
    """Combine real/imaginary parts into one complex array."""
    re = np.asarray(re, dtype=np.float64)
    im = np.asarray(im, dtype=np.float64)
    if re.shape != im.shape:
        raise ModelError("real and imaginary parts must share a shape")
    return re + 1j * im


def unpack_complex(z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a complex array into its (real, imaginary) components."""
    z = np.asarray(z)
    return np.real(z).copy(), np.imag(z).copy()
