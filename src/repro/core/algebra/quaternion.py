"""Quaternion algebra for the four-embedding interaction model.

A quaternion ``q = a + b·i + c·j + d·k`` is represented as an array whose
*first* axis has length 4 holding ``(a, b, c, d)``; batched quaternion
vectors therefore have shape ``(4, ..., D)``.  The Hamilton product is
noncommutative, and the paper (Eq. 13) picks the score

    S(h, t, r) = Re(⟨h, t̄, r⟩)   with   ⟨h, t̄, r⟩ = Σ_d (h_d · t̄_d) · r_d

whose 16-term real expansion (paper Eq. 14) is verified against this
module by the test-suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError

#: Number of components of a quaternion.
COMPONENTS = 4


def _check_quaternion(q: np.ndarray, name: str) -> np.ndarray:
    q = np.asarray(q, dtype=np.float64)
    if q.ndim < 1 or q.shape[0] != COMPONENTS:
        raise ModelError(f"{name} must have a leading axis of length 4, got shape {q.shape}")
    return q


def hamilton_product(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Component-wise Hamilton product of two quaternion arrays.

    Both inputs have shape ``(4, ...)``; the product is applied
    element-wise over the trailing axes (i.e. each scalar position holds
    an independent quaternion).
    """
    p = _check_quaternion(p, "p")
    q = _check_quaternion(q, "q")
    a1, b1, c1, d1 = p
    a2, b2, c2, d2 = q
    return np.stack(
        [
            a1 * a2 - b1 * b2 - c1 * c2 - d1 * d2,
            a1 * b2 + b1 * a2 + c1 * d2 - d1 * c2,
            a1 * c2 - b1 * d2 + c1 * a2 + d1 * b2,
            a1 * d2 + b1 * c2 - c1 * b2 + d1 * a2,
        ]
    )


def conjugate(q: np.ndarray) -> np.ndarray:
    """Quaternion conjugate ``q̄ = a - b·i - c·j - d·k``."""
    q = _check_quaternion(q, "q")
    out = -q
    out[0] = q[0]
    return out


def real_part(q: np.ndarray) -> np.ndarray:
    """The scalar (real) component ``a`` of each quaternion."""
    return _check_quaternion(q, "q")[0]


def norm(q: np.ndarray) -> np.ndarray:
    """Quaternion norm ``sqrt(a² + b² + c² + d²)`` per scalar position."""
    q = _check_quaternion(q, "q")
    return np.sqrt(np.sum(np.square(q), axis=0))


def normalize(q: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Scale each quaternion to unit norm (zero quaternions left in place)."""
    q = _check_quaternion(q, "q")
    n = norm(q)
    safe = np.where(n > eps, n, 1.0)
    return q / safe


def quaternion_trilinear(h: np.ndarray, t: np.ndarray, r: np.ndarray) -> np.ndarray:
    """``Σ_d (h_d · t̄_d) · r_d`` — a quaternion per batch element.

    Inputs have shape ``(4, ..., D)``; the last axis is reduced after the
    two Hamilton products, in the order ``(h · t̄) · r`` (the order the
    paper's Eq. 14 expansion corresponds to; quaternion multiplication is
    noncommutative so the order matters).
    """
    h = _check_quaternion(h, "h")
    t = _check_quaternion(t, "t")
    r = _check_quaternion(r, "r")
    if not (h.shape == t.shape == r.shape):
        raise ModelError("h, t, r must share a shape")
    return np.sum(hamilton_product(hamilton_product(h, conjugate(t)), r), axis=-1)


def quaternion_score(h: np.ndarray, t: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Paper Eq. 13: ``Re(⟨h, t̄, r⟩)`` for quaternion embeddings."""
    return real_part(quaternion_trilinear(h, t, r))


def quaternion_score_expanded(h: np.ndarray, t: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Paper Eq. 14: the 16-term real expansion of the quaternion score.

    Components are mapped to multi-embedding slots ``h^(1..4)`` etc.; the
    signs below are the signed weight vector of the quaternion-based
    four-embedding interaction model.
    """
    h = _check_quaternion(h, "h")
    t = _check_quaternion(t, "t")
    r = _check_quaternion(r, "r")

    def tri(i: int, j: int, k: int) -> np.ndarray:
        return np.sum(h[i] * t[j] * r[k], axis=-1)

    return (
        tri(0, 0, 0) + tri(1, 1, 0) + tri(2, 2, 0) + tri(3, 3, 0)
        + tri(0, 1, 1) - tri(1, 0, 1) + tri(2, 3, 1) - tri(3, 2, 1)
        + tri(0, 2, 2) - tri(1, 3, 2) - tri(2, 0, 2) + tri(3, 1, 2)
        + tri(0, 3, 3) + tri(1, 2, 3) - tri(2, 1, 3) - tri(3, 0, 3)
    )


def quaternion_weight_tensor() -> np.ndarray:
    """The ``(4, 4, 4)`` interaction weight tensor realising Eq. 14.

    ``tensor[i, j, k]`` weighs ``⟨h^(i+1), t^(j+1), r^(k+1)⟩``; exactly 16
    of the 64 entries are nonzero, with values ±1.
    """
    omega = np.zeros((COMPONENTS, COMPONENTS, COMPONENTS), dtype=np.float64)
    terms = [
        (0, 0, 0, 1), (1, 1, 0, 1), (2, 2, 0, 1), (3, 3, 0, 1),
        (0, 1, 1, 1), (1, 0, 1, -1), (2, 3, 1, 1), (3, 2, 1, -1),
        (0, 2, 2, 1), (1, 3, 2, -1), (2, 0, 2, -1), (3, 1, 2, 1),
        (0, 3, 3, 1), (1, 2, 3, 1), (2, 1, 3, -1), (3, 0, 3, -1),
    ]
    for i, j, k, sign in terms:
        omega[i, j, k] = sign
    return omega
