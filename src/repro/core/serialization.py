"""Saving and loading trained multi-embedding models.

Checkpoints are a directory with two files:

* ``weights.npz`` — the embedding tables (and ρ for learned-ω models),
* ``meta.json``  — model class, ω (name + values), dimensions, flags.

The format is deliberately framework-free so checkpoints written here
can be consumed by any numpy-reading tool.

The directory format is a thin shell around two in-memory halves,
:func:`model_state` and :func:`model_from_state`, which are also what
the parallel execution engine pickles to rebuild models inside worker
processes (:mod:`repro.parallel.payload`) — one serialization contract,
two transports.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.interaction import MultiEmbeddingModel
from repro.core.learned import LearnedWeightModel
from repro.core.weights import WeightVector
from repro.errors import CorruptArtifactError, ModelError
from repro.reliability.atomic import atomic_write_bytes, atomic_write_text, npz_bytes
from repro.reliability.manifest import sha256_bytes, sha256_file

_FORMAT_VERSION = 1


def model_state(model: MultiEmbeddingModel) -> tuple[dict, dict[str, np.ndarray]]:
    """The ``(meta, arrays)`` pair fully describing *model*.

    ``meta`` is JSON-compatible plain data, ``arrays`` maps array names
    to the live embedding tables (no copies are taken — callers that
    need isolation from further training must copy, and pickling or
    ``np.savez`` both do).
    """
    if not isinstance(model, MultiEmbeddingModel):
        raise ModelError(
            f"only multi-embedding models are serializable, got {type(model).__name__}"
        )
    arrays = {
        "entity_embeddings": model.entity_embeddings,
        "relation_embeddings": model.relation_embeddings,
        "omega": np.asarray(model.omega),
    }
    meta = {
        "format_version": _FORMAT_VERSION,
        "model_class": type(model).__name__,
        "name": model.name,
        "num_entities": model.num_entities,
        "num_relations": model.num_relations,
        "dim": model.dim,
        "weight_name": model.weights.name,
        "weight_shape": list(model.weights.tensor.shape),
        "regularization": model.regularizer.strength,
        "unit_norm_entities": model.constraint is not None,
        "use_compiled_kernel": model.use_compiled_kernel,
    }
    if isinstance(model, LearnedWeightModel):
        arrays["rho"] = model.rho
        meta["transform"] = model.transform.name
        meta["has_sparsity"] = model.sparsity is not None
        if model.sparsity is not None:
            meta["sparsity_alpha"] = model.sparsity.alpha
            meta["sparsity_strength"] = model.sparsity.strength
    return meta, arrays


def model_from_state(meta: dict, arrays: dict[str, np.ndarray]) -> MultiEmbeddingModel:
    """Rebuild a model from a :func:`model_state` pair.

    The returned model scores bit-identically to the source model: the
    embedding tables are adopted as-is and the scoring engine flag
    (``use_compiled_kernel``) is restored, so both take the same einsum
    paths.  Optimizer state is not part of the contract (retraining
    restarts moments from zero).
    """
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ModelError(f"unsupported checkpoint version: {meta.get('format_version')}")
    # Checkpoints written before the engine flag existed ran the default.
    use_kernel = bool(meta.get("use_compiled_kernel", True))

    rng = np.random.default_rng(0)  # tables are overwritten below
    if meta["model_class"] == "LearnedWeightModel":
        from repro.nn.regularizers import DirichletSparsityRegularizer

        sparsity = None
        if meta.get("has_sparsity"):
            sparsity = DirichletSparsityRegularizer(
                alpha=meta["sparsity_alpha"], strength=meta["sparsity_strength"]
            )
        shape = meta["weight_shape"]
        model: MultiEmbeddingModel = LearnedWeightModel(
            meta["num_entities"],
            meta["num_relations"],
            meta["dim"],
            rng,
            num_entity_vectors=shape[0],
            num_relation_vectors=shape[2],
            transform=meta["transform"],
            sparsity=sparsity,
            regularization=meta["regularization"],
            use_compiled_kernel=use_kernel,
        )
        model.rho = arrays["rho"]
        model.refresh_omega()
    elif meta["model_class"] == "MultiEmbeddingModel":
        weights = WeightVector(meta["weight_name"], arrays["omega"])
        model = MultiEmbeddingModel(
            meta["num_entities"],
            meta["num_relations"],
            meta["dim"],
            weights,
            rng,
            regularization=meta["regularization"],
            unit_norm_entities=meta["unit_norm_entities"],
            use_compiled_kernel=use_kernel,
        )
    else:
        raise ModelError(f"unknown model class in checkpoint: {meta['model_class']}")

    model.entity_embeddings = arrays["entity_embeddings"]
    model.relation_embeddings = arrays["relation_embeddings"]
    model.name = meta["name"]
    return model


def save_model(model: MultiEmbeddingModel, directory: str | Path) -> dict[str, str]:
    """Write *model* to *directory* (created if needed).

    Both files are written crash-safely (tempfile + fsync + rename) and
    ``meta.json`` records the sha256 of the weights payload, so a torn
    or bit-rotted ``weights.npz`` is *detected* at load time instead of
    surfacing as a zipfile traceback (or, worse, silently wrong
    parameters).  Returns the ``{relative filename: sha256}`` mapping of
    everything written — run-dir manifests aggregate it.
    """
    meta, arrays = model_state(model)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    weights_payload = npz_bytes(arrays)
    meta = {**meta, "weights_sha256": sha256_bytes(weights_payload)}
    meta_payload = json.dumps(meta, indent=2)
    atomic_write_bytes(directory / "weights.npz", weights_payload)
    atomic_write_text(directory / "meta.json", meta_payload)
    return {
        "weights.npz": meta["weights_sha256"],
        "meta.json": sha256_bytes(meta_payload.encode("utf-8")),
    }


def load_model(directory: str | Path) -> MultiEmbeddingModel:
    """Rebuild a model saved by :func:`save_model`.

    The returned model scores identically to the saved one; optimizer
    state is not checkpointed (retraining restarts moments from zero).
    Torn/corrupt checkpoint files raise
    :class:`~repro.errors.CorruptArtifactError` naming the offending
    path; checkpoints written before the integrity hash existed load
    without the weights check (the npz parse still guards gross damage).
    """
    directory = Path(directory)
    meta_path = directory / "meta.json"
    npz_path = directory / "weights.npz"
    if not meta_path.exists() or not npz_path.exists():
        raise ModelError(f"not a model checkpoint directory: {directory}")
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CorruptArtifactError(
            f"checkpoint metadata is torn or corrupt ({error}): {meta_path}",
            path=meta_path,
        ) from None
    expected = meta.get("weights_sha256")
    if expected is not None and sha256_file(npz_path) != expected:
        raise CorruptArtifactError(
            "checkpoint weights failed their integrity check (sha256 mismatch "
            f"against meta.json): {npz_path}",
            path=npz_path,
        )
    try:
        with np.load(npz_path) as payload:
            arrays = {key: payload[key] for key in payload.files}
    except Exception as error:  # zipfile.BadZipFile, ValueError, OSError
        raise CorruptArtifactError(
            f"checkpoint weights are unreadable ({error}): {npz_path}", path=npz_path
        ) from None
    return model_from_state(meta, arrays)
