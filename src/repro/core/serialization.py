"""Saving and loading trained multi-embedding models.

Checkpoints are a directory with two layouts sharing one ``meta.json``:

* **packed** (default) — ``weights.npz`` holding every table, loaded
  into private process memory;
* **memory-mapped** (``save_model(..., memmap=True)``) — a ``store/``
  subdirectory of plain ``.npy`` files (:class:`~repro.core.memstore.MemStore`)
  that :func:`load_model` maps read-only, so every process serving the
  same checkpoint shares OS page-cache pages instead of holding a
  pickled float64 copy each.

Either layout may downcast the embedding tables (``dtype="float32"`` /
``"float16"``); the downcast is gated by :func:`score_equivalence_gap`,
which measures the worst relative score deviation the parameter
rounding introduces on a seeded probe batch and refuses to write a
checkpoint whose gap exceeds ``equivalence_tol`` (default ``1e-6`` —
float32 passes comfortably, float16 needs an explicit looser tolerance).
Scoring promotes mixed-dtype einsum operands to float64, so serving a
downcast checkpoint computes in float64 arithmetic over the rounded
parameters — exactly what the gate measures.

The format is deliberately framework-free so checkpoints written here
can be consumed by any numpy-reading tool.

The directory format is a thin shell around two in-memory halves,
:func:`model_state` and :func:`model_from_state`, which are also what
the parallel execution engine pickles to rebuild models inside worker
processes (:mod:`repro.parallel.payload`) — one serialization contract,
two transports.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.interaction import MultiEmbeddingModel
from repro.core.learned import LearnedWeightModel
from repro.core.memstore import DOWNCAST_DTYPES, MemStore
from repro.core.weights import WeightVector
from repro.errors import CorruptArtifactError, ModelError
from repro.reliability.atomic import atomic_write_bytes, atomic_write_text, npz_bytes
from repro.reliability.manifest import sha256_bytes, sha256_file

_FORMAT_VERSION = 1

#: Subdirectory of a memmap checkpoint holding the ``.npy`` store.
CHECKPOINT_STORE_DIR = "store"

#: Default score-equivalence tolerance for downcast checkpoints.
DEFAULT_EQUIVALENCE_TOL = 1e-6

#: Array names the dtype policy applies to (ω stays float64: it is the
#: tiny interaction tensor the kernel compiles, not a per-entity table).
_DOWNCASTABLE = ("entity_embeddings", "relation_embeddings", "rho")


def model_state(model: MultiEmbeddingModel) -> tuple[dict, dict[str, np.ndarray]]:
    """The ``(meta, arrays)`` pair fully describing *model*.

    ``meta`` is JSON-compatible plain data, ``arrays`` maps array names
    to the live embedding tables (no copies are taken — callers that
    need isolation from further training must copy, and pickling or
    ``np.savez`` both do).
    """
    if not isinstance(model, MultiEmbeddingModel):
        raise ModelError(
            f"only multi-embedding models are serializable, got {type(model).__name__}"
        )
    arrays = {
        "entity_embeddings": model.entity_embeddings,
        "relation_embeddings": model.relation_embeddings,
        "omega": np.asarray(model.omega),
    }
    meta = {
        "format_version": _FORMAT_VERSION,
        "model_class": type(model).__name__,
        "name": model.name,
        "num_entities": model.num_entities,
        "num_relations": model.num_relations,
        "dim": model.dim,
        "weight_name": model.weights.name,
        "weight_shape": list(model.weights.tensor.shape),
        "regularization": model.regularizer.strength,
        "unit_norm_entities": model.constraint is not None,
        "use_compiled_kernel": model.use_compiled_kernel,
    }
    if isinstance(model, LearnedWeightModel):
        arrays["rho"] = model.rho
        meta["transform"] = model.transform.name
        meta["has_sparsity"] = model.sparsity is not None
        if model.sparsity is not None:
            meta["sparsity_alpha"] = model.sparsity.alpha
            meta["sparsity_strength"] = model.sparsity.strength
    return meta, arrays


def model_from_state(meta: dict, arrays: dict[str, np.ndarray]) -> MultiEmbeddingModel:
    """Rebuild a model from a :func:`model_state` pair.

    The returned model scores bit-identically to the source model: the
    embedding tables are adopted as-is and the scoring engine flag
    (``use_compiled_kernel``) is restored, so both take the same einsum
    paths.  Optimizer state is not part of the contract (retraining
    restarts moments from zero).
    """
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ModelError(f"unsupported checkpoint version: {meta.get('format_version')}")
    # Checkpoints written before the engine flag existed ran the default.
    use_kernel = bool(meta.get("use_compiled_kernel", True))

    # Tables are overwritten below, so skip the random init entirely
    # ("empty" allocates untouched pages): at million-entity scale the
    # discarded draw would cost seconds and a full-table transient.
    rng = np.random.default_rng(0)
    if meta["model_class"] == "LearnedWeightModel":
        from repro.nn.regularizers import DirichletSparsityRegularizer

        sparsity = None
        if meta.get("has_sparsity"):
            sparsity = DirichletSparsityRegularizer(
                alpha=meta["sparsity_alpha"], strength=meta["sparsity_strength"]
            )
        shape = meta["weight_shape"]
        model: MultiEmbeddingModel = LearnedWeightModel(
            meta["num_entities"],
            meta["num_relations"],
            meta["dim"],
            rng,
            num_entity_vectors=shape[0],
            num_relation_vectors=shape[2],
            transform=meta["transform"],
            sparsity=sparsity,
            regularization=meta["regularization"],
            initializer="empty",
            use_compiled_kernel=use_kernel,
        )
        model.rho = np.array(arrays["rho"])  # ρ must stay trainable/writable
        model.refresh_omega()
    elif meta["model_class"] == "MultiEmbeddingModel":
        weights = WeightVector(meta["weight_name"], arrays["omega"])
        model = MultiEmbeddingModel(
            meta["num_entities"],
            meta["num_relations"],
            meta["dim"],
            weights,
            rng,
            regularization=meta["regularization"],
            initializer="empty",
            unit_norm_entities=meta["unit_norm_entities"],
            use_compiled_kernel=use_kernel,
        )
    else:
        raise ModelError(f"unknown model class in checkpoint: {meta['model_class']}")

    model.entity_embeddings = arrays["entity_embeddings"]
    model.relation_embeddings = arrays["relation_embeddings"]
    model.name = meta["name"]
    return model


def _downcast_arrays(arrays: dict[str, np.ndarray], dtype: str) -> dict[str, np.ndarray]:
    """The checkpoint arrays with the big tables cast to *dtype* (ω untouched)."""
    return {
        name: (
            np.asarray(array).astype(dtype, copy=False)
            if name in _DOWNCASTABLE
            else np.asarray(array)
        )
        for name, array in arrays.items()
    }


def score_equivalence_gap(
    model: MultiEmbeddingModel, dtype: str, probes: int = 256, seed: int = 0
) -> float:
    """Worst relative score deviation a dtype downcast would introduce.

    A seeded probe batch of random triples is scored by *model* and by a
    rebuilt model whose embedding tables were rounded through *dtype*;
    the return value is ``max |Δscore| / max(1, max |score|)``.  Because
    mixed-dtype einsums promote to float64, the rebuilt model is exactly
    what serving the downcast checkpoint computes — so a gap under the
    save-time tolerance is a guarantee about served scores, not a proxy.
    """
    if dtype not in DOWNCAST_DTYPES:
        raise ModelError(f"dtype must be one of {list(DOWNCAST_DTYPES)}, got {dtype!r}")
    if probes < 1:
        raise ModelError(f"probes must be >= 1, got {probes}")
    if dtype == "float64":
        return 0.0
    meta, arrays = model_state(model)
    rounded = model_from_state(meta, _downcast_arrays(arrays, dtype))
    rng = np.random.default_rng(seed)
    heads = rng.integers(0, model.num_entities, size=probes)
    tails = rng.integers(0, model.num_entities, size=probes)
    relations = rng.integers(0, model.num_relations, size=probes)
    base = np.asarray(model.score_triples(heads, tails, relations), dtype=np.float64)
    approx = np.asarray(rounded.score_triples(heads, tails, relations), dtype=np.float64)
    scale = max(1.0, float(np.max(np.abs(base))) if len(base) else 1.0)
    return float(np.max(np.abs(base - approx))) / scale


def save_model(
    model: MultiEmbeddingModel,
    directory: str | Path,
    *,
    memmap: bool = False,
    dtype: str | None = None,
    equivalence_tol: float | None = DEFAULT_EQUIVALENCE_TOL,
    probes: int = 256,
) -> dict[str, str]:
    """Write *model* to *directory* (created if needed).

    ``memmap=False`` (default) writes the packed ``weights.npz`` layout;
    ``memmap=True`` writes a ``store/`` of plain ``.npy`` files that
    :func:`load_model` memory-maps, so concurrent readers share pages.
    ``dtype`` downcasts the embedding tables (``"float32"``/``"float16"``;
    ω always stays float64); the downcast is refused — :class:`ModelError`
    — when its measured :func:`score_equivalence_gap` exceeds
    ``equivalence_tol`` (pass ``equivalence_tol=None`` to skip the gate,
    e.g. for float16 where ~1e-3 gaps are expected and accepted).

    Everything is written crash-safely (tempfile + fsync + rename) and
    ``meta.json``/``store.json`` record the sha256 of each payload, so a
    torn or bit-rotted weights file is *detected* at load time instead
    of surfacing as a numpy traceback (or, worse, silently wrong
    parameters).  Returns the ``{relative filename: sha256}`` mapping of
    everything written — run-dir manifests aggregate it.
    """
    meta, arrays = model_state(model)
    dtype = dtype or "float64"
    if dtype not in DOWNCAST_DTYPES:
        raise ModelError(f"dtype must be one of {list(DOWNCAST_DTYPES)}, got {dtype!r}")
    if dtype != "float64":
        gap = score_equivalence_gap(model, dtype, probes=probes)
        if equivalence_tol is not None and gap > equivalence_tol:
            raise ModelError(
                f"downcasting this checkpoint to {dtype} moves scores by a "
                f"relative {gap:.3e}, above the equivalence tolerance "
                f"{equivalence_tol:.1e}; keep float64, loosen equivalence_tol, "
                "or pass equivalence_tol=None to accept the loss explicitly"
            )
        arrays = _downcast_arrays(arrays, dtype)
        meta = {**meta, "dtype": dtype, "score_equivalence_gap": gap}
    else:
        meta = {**meta, "dtype": dtype}
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    hashes: dict[str, str] = {}
    if memmap:
        # begin/flush so rewriting an existing checkpoint commits the
        # store meta once, at the end — a torn rewrite leaves the
        # previous store.json (and usually the previous payloads) intact.
        store = MemStore.begin(directory / CHECKPOINT_STORE_DIR)
        for name, array in arrays.items():
            store.put(name, array, flush=False)
        store.flush()
        meta = {**meta, "storage": "memmap"}
        hashes.update(store.hashes(prefix=f"{CHECKPOINT_STORE_DIR}/"))
    else:
        weights_payload = npz_bytes(arrays)
        meta = {**meta, "storage": "npz", "weights_sha256": sha256_bytes(weights_payload)}
        atomic_write_bytes(directory / "weights.npz", weights_payload)
        hashes["weights.npz"] = meta["weights_sha256"]
    meta_payload = json.dumps(meta, indent=2)
    atomic_write_text(directory / "meta.json", meta_payload)
    hashes["meta.json"] = sha256_bytes(meta_payload.encode("utf-8"))
    return hashes


def load_model(directory: str | Path, *, memmap: bool | None = None) -> MultiEmbeddingModel:
    """Rebuild a model saved by :func:`save_model`.

    The returned model scores identically to the saved one; optimizer
    state is not checkpointed (retraining restarts moments from zero).
    Memmap-layout checkpoints come back with read-only mapped tables by
    default (pass ``memmap=False`` to materialise private in-memory
    copies — required before training, which updates tables in place);
    ``memmap`` is ignored for packed ``weights.npz`` checkpoints, which
    are never mappable.  Torn/corrupt checkpoint files raise
    :class:`~repro.errors.CorruptArtifactError` naming the offending
    path; checkpoints written before the integrity hash existed load
    without the weights check (the npz parse still guards gross damage).
    """
    directory = Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise ModelError(f"not a model checkpoint directory: {directory}")
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CorruptArtifactError(
            f"checkpoint metadata is torn or corrupt ({error}): {meta_path}",
            path=meta_path,
        ) from None
    if meta.get("storage") == "memmap":
        store = MemStore.open(directory / CHECKPOINT_STORE_DIR)
        arrays = store.get_all()
        if memmap is False:
            arrays = {name: np.array(array) for name, array in arrays.items()}
        try:
            return model_from_state(meta, arrays)
        except KeyError as error:
            raise CorruptArtifactError(
                f"checkpoint store is missing array {error} promised by "
                f"meta.json: {directory / CHECKPOINT_STORE_DIR}",
                path=directory / CHECKPOINT_STORE_DIR,
            ) from None
    npz_path = directory / "weights.npz"
    if not npz_path.exists():
        raise ModelError(f"not a model checkpoint directory: {directory}")
    expected = meta.get("weights_sha256")
    if expected is not None and sha256_file(npz_path) != expected:
        raise CorruptArtifactError(
            "checkpoint weights failed their integrity check (sha256 mismatch "
            f"against meta.json): {npz_path}",
            path=npz_path,
        )
    try:
        with np.load(npz_path) as payload:
            arrays = {key: payload[key] for key in payload.files}
    except Exception as error:  # zipfile.BadZipFile, ValueError, OSError
        raise CorruptArtifactError(
            f"checkpoint weights are unreadable ({error}): {npz_path}", path=npz_path
        ) from None
    return model_from_state(meta, arrays)
