"""Structural properties of interaction weight vectors (paper §6.1.2).

The paper observes that *good* weight vectors share three properties:

* **Completeness** — every embedding vector in a triple participates in
  the weighted sum (no dead slots).
* **Stability** — the embedding vectors of the same entity or relation
  contribute equal total weight, so no slot dominates.
* **Distinguishability** — the score function is not symmetric under
  exchanging head and tail, otherwise the model collapses to
  DistMult-like behaviour on asymmetric data.

These checks correctly separate the paper's presets: ComplEx/CPh/the good
examples satisfy all three; CP and bad example 1 break completeness or
stability; DistMult, bad example 2 and the uniform vector break
distinguishability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.weights import WeightVector


@dataclass(frozen=True)
class WeightVectorProperties:
    """Diagnostic report for one weight vector."""

    name: str
    complete: bool
    stable: bool
    distinguishable: bool
    dead_slots: tuple[str, ...]
    slot_masses: dict[str, tuple[float, ...]]

    @property
    def satisfies_all(self) -> bool:
        """Whether all three §6.1.2 properties hold."""
        return self.complete and self.stable and self.distinguishable

    def predicted_quality(self) -> str:
        """Heuristic prediction of empirical behaviour (paper §6.1.2).

        * all three properties       -> "good" (ComplEx/CPh-level)
        * not distinguishable        -> "symmetric" (DistMult-level)
        * incomplete or unstable     -> "poor" (CP-level overfitting risk)
        """
        if self.satisfies_all:
            return "good"
        if not self.distinguishable and self.complete and self.stable:
            return "symmetric"
        return "poor"


def _axis_masses(tensor: np.ndarray) -> dict[str, tuple[float, ...]]:
    """Total |ω| mass attributed to each slot along each axis."""
    abs_tensor = np.abs(tensor)
    return {
        "head": tuple(float(x) for x in abs_tensor.sum(axis=(1, 2))),
        "tail": tuple(float(x) for x in abs_tensor.sum(axis=(0, 2))),
        "relation": tuple(float(x) for x in abs_tensor.sum(axis=(0, 1))),
    }


def is_complete(weights: WeightVector) -> bool:
    """Every head, tail and relation slot appears in a nonzero term."""
    masses = _axis_masses(weights.tensor)
    return all(all(m > 0.0 for m in slot_masses) for slot_masses in masses.values())


def dead_slots(weights: WeightVector) -> tuple[str, ...]:
    """Labels like ``'head[2]'`` for slots with zero total weight."""
    masses = _axis_masses(weights.tensor)
    dead = []
    for axis, slot_masses in masses.items():
        for slot, mass in enumerate(slot_masses, start=1):
            if mass == 0.0:
                dead.append(f"{axis}[{slot}]")
    return tuple(dead)


def is_stable(weights: WeightVector, rtol: float = 1e-9) -> bool:
    """Slots of the same axis carry equal total |ω| mass."""
    masses = _axis_masses(weights.tensor)
    for slot_masses in masses.values():
        arr = np.asarray(slot_masses)
        if arr.max() == 0.0:
            return False
        if not np.allclose(arr, arr[0], rtol=rtol, atol=0.0):
            return False
    return True


def is_distinguishable(weights: WeightVector) -> bool:
    """The score function changes when head and tail are exchanged.

    The trilinear product is symmetric in its arguments, so swapping h and
    t maps term ``(i, j, k)`` to ``(j, i, k)``; the score function of a
    shared entity table is symmetric — hence indistinguishable — exactly
    when ω equals its head/tail transpose.
    """
    tensor = weights.tensor
    if tensor.shape[0] != tensor.shape[1]:
        return True  # role-based tables cannot be transposed onto themselves
    return not np.array_equal(tensor, np.swapaxes(tensor, 0, 1))


def analyze_weight_vector(weights: WeightVector) -> WeightVectorProperties:
    """Full §6.1.2 diagnostic for one weight vector."""
    return WeightVectorProperties(
        name=weights.name,
        complete=is_complete(weights),
        stable=is_stable(weights),
        distinguishable=is_distinguishable(weights),
        dead_slots=dead_slots(weights),
        slot_masses=_axis_masses(weights.tensor),
    )
