"""Model factory: the paper's model zoo as multi-embedding special cases.

Every constructor returns a :class:`~repro.core.interaction.MultiEmbeddingModel`
configured with the appropriate ω preset from Table 1 and, for fair
comparisons, a per-vector dimension derived from a shared parameter
budget (paper §5.3: embedding size 400 for one-embedding models, 200 for
two-embedding, 100 for four-embedding).
"""

from __future__ import annotations

import numpy as np

from repro.core import weights as W
from repro.core.interaction import MultiEmbeddingModel
from repro.core.learned import LearnedWeightModel
from repro.core.weights import WeightVector, get_preset
from repro.errors import ConfigError
from repro.nn.regularizers import DirichletSparsityRegularizer
from repro.pipeline.registry import Registry

#: Model factory registry.  Every factory takes
#: ``(num_entities, num_relations, total_dim, rng, **kwargs)`` and returns
#: a trainable model; registering a new factory here makes it available to
#: the CLI ``train`` command, :class:`~repro.pipeline.config.RunConfig`,
#: and sweeps automatically.
MODEL_FACTORIES: Registry = Registry("model")


def parity_dim(total_dim: int, weights: WeightVector) -> int:
    """Per-vector dimension under the paper's parameter-parity rule.

    ``total_dim`` is the budget of a one-embedding model (400 in the
    paper); an ``n``-embedding model gets ``total_dim // n`` per vector.
    """
    n = weights.num_entity_vectors
    if total_dim % n != 0:
        raise ConfigError(f"total_dim={total_dim} not divisible by {n} embedding vectors")
    return total_dim // n


def make_model(
    weights: WeightVector | str,
    num_entities: int,
    num_relations: int,
    rng: np.random.Generator,
    dim: int | None = None,
    total_dim: int | None = None,
    regularization: float = 0.0,
    use_compiled_kernel: bool = True,
    **kwargs: object,
) -> MultiEmbeddingModel:
    """Build a multi-embedding model from a weight vector or preset name.

    Exactly one of ``dim`` (per-vector dimension) or ``total_dim``
    (parameter-parity budget, split across vectors) must be given.

    ``use_compiled_kernel`` selects the scoring engine: the default
    compiles ω's nonzero terms into batched kernels
    (:mod:`repro.core.kernels`) shared by training and serving;
    ``False`` keeps the dense-einsum reference path, which every
    benchmark uses as its baseline arm.
    """
    if isinstance(weights, str):
        weights = get_preset(weights)
    if (dim is None) == (total_dim is None):
        raise ConfigError("give exactly one of dim or total_dim")
    if dim is None:
        dim = parity_dim(int(total_dim), weights)
    return MultiEmbeddingModel(
        num_entities,
        num_relations,
        dim,
        weights,
        rng,
        regularization=regularization,
        use_compiled_kernel=use_compiled_kernel,
        **kwargs,
    )


@MODEL_FACTORIES.register("distmult")
def make_distmult(
    num_entities: int,
    num_relations: int,
    total_dim: int,
    rng: np.random.Generator,
    **kwargs: object,
) -> MultiEmbeddingModel:
    """DistMult (Eq. 4) as a one-embedding model at the full budget.

    This is the paper's §5.3 configuration (embedding size 400 when
    two-embedding models use 200).  The two-embedding representation
    ``(1, 0, ..., 0)`` from Table 1 is available via
    ``make_model("distmult", ...)`` and is used in Table 2 to show the
    derivation; both score identically at equal effective dimension.
    """
    model = make_model(W.DISTMULT_N1, num_entities, num_relations, rng, dim=total_dim, **kwargs)
    model.name = "DistMult"
    return model


@MODEL_FACTORIES.register("complex")
def make_complex(
    num_entities: int,
    num_relations: int,
    total_dim: int,
    rng: np.random.Generator,
    **kwargs: object,
) -> MultiEmbeddingModel:
    """ComplEx (Eq. 5) as the two-embedding model of Table 1."""
    return make_model(W.COMPLEX, num_entities, num_relations, rng, total_dim=total_dim, **kwargs)


@MODEL_FACTORIES.register("cp")
def make_cp(
    num_entities: int,
    num_relations: int,
    total_dim: int,
    rng: np.random.Generator,
    **kwargs: object,
) -> MultiEmbeddingModel:
    """CP (Eq. 6): role-based two-embedding model, known to overfit badly."""
    return make_model(W.CP, num_entities, num_relations, rng, total_dim=total_dim, **kwargs)


@MODEL_FACTORIES.register("cph")
def make_cph(
    num_entities: int,
    num_relations: int,
    total_dim: int,
    rng: np.random.Generator,
    **kwargs: object,
) -> MultiEmbeddingModel:
    """CPh (Eq. 7/11): CP + inverse-triple heuristic as a weight vector.

    In the multi-embedding view the augmented relation ``r^(a)`` becomes
    the second relation vector, so no dataset augmentation is needed; the
    ω preset ``(0, 0, 1, 0, 0, 1, 0, 0)`` adds the inverse-triple score
    directly (paper Eq. 11 and Table 1).
    """
    return make_model(W.CPH, num_entities, num_relations, rng, total_dim=total_dim, **kwargs)


@MODEL_FACTORIES.register("quaternion")
def make_quaternion(
    num_entities: int,
    num_relations: int,
    total_dim: int,
    rng: np.random.Generator,
    **kwargs: object,
) -> MultiEmbeddingModel:
    """The paper's quaternion-based four-embedding model (Eq. 13/14)."""
    model = make_model(
        W.QUATERNION, num_entities, num_relations, rng, total_dim=total_dim, **kwargs
    )
    model.name = "Quaternion-based four-embedding"
    return model


@MODEL_FACTORIES.register("learned")
def make_learned_weight_model(
    num_entities: int,
    num_relations: int,
    total_dim: int,
    rng: np.random.Generator,
    transform: str = "identity",
    sparse: bool = False,
    sparsity_alpha: float = 1.0 / 16.0,
    sparsity_strength: float = 1e-2,
    regularization: float = 0.0,
    **kwargs: object,
) -> LearnedWeightModel:
    """A two-embedding model with ω learned end-to-end (§3.3, Table 3).

    ``sparse=True`` adds the Dirichlet sparsity loss of Eq. 12 with the
    paper's tuned hyperparameters (α = 1/16, λ_dir = 1e-2).
    """
    if total_dim % 2 != 0:
        raise ConfigError("total_dim must be even for the two-embedding learned model")
    sparsity = (
        DirichletSparsityRegularizer(alpha=sparsity_alpha, strength=sparsity_strength)
        if sparse
        else None
    )
    return LearnedWeightModel(
        num_entities,
        num_relations,
        total_dim // 2,
        rng,
        transform=transform,
        sparsity=sparsity,
        regularization=regularization,
        **kwargs,
    )


