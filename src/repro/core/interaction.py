"""The multi-embedding interaction model — the paper's Eq. 8.

Entities own ``n_e`` embedding vectors each, relations ``n_r``; the score
of ``(h, t, r)`` is the ω-weighted sum of all ``n_e · n_e · n_r``
trilinear products:

    S(h, t, r; Θ, ω) = Σ_{ijk} ω_{ijk} ⟨h^(i), t^(j), r^(k)⟩

Training uses analytic gradients (the score is trilinear, so they are
closed-form) with the logistic loss of Eq. 16, per-triple L2
regularisation, lazy sparse optimizer updates, and the paper's
unit-L2-norm constraint on entity embeddings after each step.  The
gradients are certified against the autodiff engine and finite
differences by the test-suite.

Scoring and training run on one of two engines:

* the **compiled kernel** (default) — ω is compiled once per model into
  a term-grouped program over its nonzero entries
  (:mod:`repro.core.kernels`), and ``train_step`` runs a fused hot path
  with preallocated gather buffers, a reused forward combination, and
  duplicate-aware scatter accumulation;
* the **dense reference** (``use_compiled_kernel=False``) — the
  original per-call ``np.einsum`` contraction of the full ω lattice,
  kept verbatim as the correctness oracle the kernel is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import KGEModel
from repro.core.kernels import OmegaKernel, compile_kernel, gather_transposed
from repro.core.weights import WeightVector
from repro.errors import ConfigError, ModelError
from repro.nn.constraints import UnitNormConstraint
from repro.nn.initializers import get_initializer
from repro.nn.losses import LogisticLoss
from repro.nn.optimizers import Optimizer, aggregate_rows, scatter_accumulate_transposed
from repro.nn.regularizers import L2Regularizer, N3Regularizer


@dataclass
class _BatchCache:
    """Forward-pass tensors reused by the backward pass.

    The fused train step fills the embedding fields with transposed
    *views* into its per-batch workspace buffers, so the layout contract
    (``(b, slots, D)``) holds either way but fused-path views are only
    valid until the next step.
    """

    heads: np.ndarray  # (b,) entity ids
    tails: np.ndarray
    relations: np.ndarray
    h_vecs: np.ndarray  # (b, n_e, D)
    t_vecs: np.ndarray  # (b, n_e, D)
    r_vecs: np.ndarray  # (b, n_r, D)
    scores: np.ndarray  # (b,)


class _TrainWorkspace:
    """Preallocated per-batch-size buffers for the fused train step.

    One train step gathers three transposed embedding blocks and emits
    three gradient blocks of identical shape; reallocating ~10 MB of
    scratch every step costs more than the arithmetic on small batches.
    Buffers are keyed by batch size on the model (training alternates
    between the full batch size and one remainder batch per epoch).
    """

    def __init__(
        self, batch: int, n_ent: int, n_rel: int, dim: int, num_entities: int, num_relations: int
    ) -> None:
        self.h_t = np.empty((n_ent, batch, dim), dtype=np.float64)
        self.t_t = np.empty((n_ent, batch, dim), dtype=np.float64)
        self.r_t = np.empty((n_rel, batch, dim), dtype=np.float64)
        self.combined = np.empty((n_ent, batch, dim), dtype=np.float64)
        self.grad_h = np.empty((n_ent, batch, dim), dtype=np.float64)
        self.grad_r = np.empty((n_rel, batch, dim), dtype=np.float64)
        self.scaled_t = np.empty((n_ent, batch, dim), dtype=np.float64)
        # Scatter-accumulation buffers; a batch can touch at most
        # min(occurrences, table size) unique rows.  The *_sums buffers
        # hold standard-layout results for the optimizer, the *_slot
        # buffers are the per-slot accumulation scratch.
        unique_entities = min(2 * batch, num_entities)
        unique_relations = min(batch, num_relations)
        self.entity_sums = np.empty((unique_entities, n_ent, dim), dtype=np.float64)
        self.relation_sums = np.empty((unique_relations, n_rel, dim), dtype=np.float64)
        self.entity_slot_sums = np.empty((n_ent, unique_entities, dim), dtype=np.float64)
        self.relation_slot_sums = np.empty((n_rel, unique_relations, dim), dtype=np.float64)


#: Max distinct batch sizes whose workspaces a model keeps alive.
_MAX_WORKSPACES = 4

#: Row-chunk size of the fused forward/backward sweep.  The loss and its
#: score gradient are elementwise per triple, so the whole
#: gather → combine → score → gradient pipeline runs chunk by chunk with
#: every slice still cache-hot, instead of streaming each full-batch
#: tensor through memory once per stage.  192 keeps the ~7 live chunk
#: slices inside L2/L3 for four-embedding models while amortising the
#: term programs' numpy dispatch overhead (measured sweet spot on the
#: training benchmark; 128–512 are all within ~15%).
_FUSED_CHUNK_ROWS = 192


class MultiEmbeddingModel(KGEModel):
    """Eq. 8 scorer with a fixed (non-trainable) interaction weight ω.

    Parameters
    ----------
    num_entities, num_relations:
        Id-space sizes.
    dim:
        Dimension ``D`` of each component embedding vector.  At fixed
        parameter budget, one-embedding models use ``D``, two-embedding
        models ``D/2``, four-embedding ``D/4`` (paper §5.3).
    weights:
        The interaction weight vector ω (see :mod:`repro.core.weights`).
    rng:
        Generator for embedding initialisation.
    regularization:
        λ of Eq. 16.  The effective coefficient is ``λ / n_D`` with
        ``n_D`` the per-triple embedding size, as in the paper.
    initializer:
        Name from :mod:`repro.nn.initializers`.
    unit_norm_entities:
        Apply the paper's unit-L2-norm constraint to touched entity rows
        after every step.
    regularizer_kind:
        ``"l2"`` (paper Eq. 16, default) or ``"n3"`` (the cubic nuclear
        norm of Lacroix et al. 2018, the regulariser that — together
        with inverse augmentation — makes CP competitive at scale).
    use_compiled_kernel:
        Route scoring and training through the compiled ω kernel and the
        fused train step (default).  ``False`` selects the dense-einsum
        reference engine — the original implementation, kept as the
        oracle the kernel is certified against.
    """

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        weights: WeightVector,
        rng: np.random.Generator,
        regularization: float = 0.0,
        initializer: str = "unit_normalized",
        unit_norm_entities: bool = True,
        loss: LogisticLoss | None = None,
        regularizer_kind: str = "l2",
        use_compiled_kernel: bool = True,
    ) -> None:
        if num_entities < 1 or num_relations < 1:
            raise ConfigError("id spaces must be non-empty")
        if dim < 1:
            raise ConfigError("dim must be >= 1")
        self.name = weights.name
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)
        self.dim = int(dim)
        self.weights = weights
        self.num_entity_vectors = weights.num_entity_vectors
        self.num_relation_vectors = weights.num_relation_vectors
        init = get_initializer(initializer)
        self.entity_embeddings = init(
            (self.num_entities, self.num_entity_vectors, self.dim), rng
        ).astype(np.float64, copy=False)
        self.relation_embeddings = init(
            (self.num_relations, self.num_relation_vectors, self.dim), rng
        ).astype(np.float64, copy=False)
        # n_D of Eq. 16: number of embedding scalars touched by one triple.
        per_triple_size = (2 * self.num_entity_vectors + self.num_relation_vectors) * self.dim
        if regularizer_kind == "l2":
            self.regularizer: L2Regularizer | N3Regularizer = L2Regularizer(
                regularization, scale=per_triple_size
            )
        elif regularizer_kind == "n3":
            self.regularizer = N3Regularizer(regularization, scale=per_triple_size)
        else:
            raise ConfigError(f"unknown regularizer_kind {regularizer_kind!r}; use 'l2' or 'n3'")
        self.loss = loss or LogisticLoss()
        self.constraint = UnitNormConstraint() if unit_norm_entities else None
        self.use_compiled_kernel = bool(use_compiled_kernel)
        self._kernel: OmegaKernel | None = None
        self._kernel_omega: np.ndarray | None = None
        self._kernel_version: int = -1
        self._workspaces: dict[int, _TrainWorkspace] = {}

    # ------------------------------------------------------------------ omega
    @property
    def omega(self) -> np.ndarray:
        """The interaction weight tensor used for scoring.

        Subclasses with trainable ω override this property.
        """
        return self.weights.tensor

    # ----------------------------------------------------------------- kernel
    @property
    def kernel(self) -> OmegaKernel:
        """The compiled ω kernel, recompiled whenever ω is replaced.

        Fixed-weight models compile exactly once: their ω tensors are
        write-locked :class:`WeightVector` arrays whose identity never
        changes.  Learned-ω models recompile lazily on the next access
        after ω is replaced *or* — because the identity transform hands
        back its mutable ρ array — whenever ``scoring_version`` moved
        under a writeable ω.  For their dense ω a recompile is an object
        allocation; einsum paths live in a shared module cache.
        """
        omega = self.omega
        if (
            self._kernel is None
            or self._kernel_omega is not omega
            or (omega.flags.writeable and self._kernel_version != self._scoring_version)
        ):
            self._kernel = compile_kernel(omega)
            self._kernel_omega = omega
            self._kernel_version = self._scoring_version
        return self._kernel

    def _workspace(self, batch: int) -> _TrainWorkspace:
        workspace = self._workspaces.get(batch)
        if workspace is None:
            if len(self._workspaces) >= _MAX_WORKSPACES:
                # Evict only the oldest entry so loops rotating through
                # several recurring batch sizes keep their hot buffers.
                self._workspaces.pop(next(iter(self._workspaces)))
            workspace = _TrainWorkspace(
                batch,
                self.num_entity_vectors,
                self.num_relation_vectors,
                self.dim,
                self.num_entities,
                self.num_relations,
            )
            self._workspaces[batch] = workspace
        return workspace

    def release_training_buffers(self) -> None:
        """Drop the fused train step's scratch workspaces.

        A trained model handed to the serving layer otherwise keeps up
        to :data:`_MAX_WORKSPACES` batch-sized buffer sets alive for its
        lifetime.  Training after a release simply reallocates them.
        """
        self._workspaces.clear()

    # ----------------------------------------------------------------- growth
    def grow(
        self,
        num_entities: int | None = None,
        num_relations: int | None = None,
        rng: np.random.Generator | None = None,
        initializer: str = "unit_normalized",
    ) -> tuple[int, int]:
        """Grow the embedding tables in place for an ingested graph delta.

        New rows are drawn from *initializer*; existing rows are carried
        over bit-identically into fresh writable arrays (so growth also
        works on a read-only memmapped checkpoint).  The scratch
        workspaces are dropped — their scatter buffers are sized to the
        old id spaces — and ``scoring_version`` is bumped so every
        cache/index keyed on it re-syncs.  Returns the number of new
        ``(entity, relation)`` rows; ``(0, 0)`` growth is a no-op that
        leaves the version untouched.
        """
        target_e = self.num_entities if num_entities is None else int(num_entities)
        target_r = self.num_relations if num_relations is None else int(num_relations)
        if target_e < self.num_entities or target_r < self.num_relations:
            raise ModelError(
                f"embedding tables never shrink: ({self.num_entities}, "
                f"{self.num_relations}) -> ({target_e}, {target_r})"
            )
        added_e = target_e - self.num_entities
        added_r = target_r - self.num_relations
        if not added_e and not added_r:
            return (0, 0)
        if rng is None:
            rng = np.random.default_rng(0)
        init = get_initializer(initializer)
        if added_e:
            fresh = init((added_e, self.num_entity_vectors, self.dim), rng).astype(
                np.float64, copy=False
            )
            self.entity_embeddings = np.concatenate([self.entity_embeddings, fresh])
            self.num_entities = target_e
        if added_r:
            fresh = init((added_r, self.num_relation_vectors, self.dim), rng).astype(
                np.float64, copy=False
            )
            self.relation_embeddings = np.concatenate([self.relation_embeddings, fresh])
            self.num_relations = target_r
        self._workspaces.clear()
        self._bump_scoring_version()
        return (added_e, added_r)

    # ---------------------------------------------------------------- scoring
    @staticmethod
    def _validate_triples(
        heads: np.ndarray, tails: np.ndarray, relations: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        heads = np.asarray(heads, dtype=np.int64)
        tails = np.asarray(tails, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        if not (heads.shape == tails.shape == relations.shape) or heads.ndim != 1:
            raise ModelError("heads, tails, relations must be 1-D arrays of equal length")
        return heads, tails, relations

    def _forward(
        self, heads: np.ndarray, tails: np.ndarray, relations: np.ndarray
    ) -> _BatchCache:
        """Reference forward pass: dense per-call einsum over the ω lattice."""
        heads, tails, relations = self._validate_triples(heads, tails, relations)
        h_vecs = self.entity_embeddings[heads]
        t_vecs = self.entity_embeddings[tails]
        r_vecs = self.relation_embeddings[relations]
        # ⟨·,·,·⟩ lattice contracted with ω:  C[b, j, d] = Σ_{ik} ω_ijk h_i r_k
        combined = np.einsum("ijk,bid,bkd->bjd", self.omega, h_vecs, r_vecs, optimize=True)
        scores = np.einsum("bjd,bjd->b", combined, t_vecs, optimize=True)
        return _BatchCache(heads, tails, relations, h_vecs, t_vecs, r_vecs, scores)

    def score_triples(
        self, heads: np.ndarray, tails: np.ndarray, relations: np.ndarray
    ) -> np.ndarray:
        """Eq. 8 scores for a batch of triples."""
        if not self.use_compiled_kernel:
            return self._forward(heads, tails, relations).scores
        heads, tails, relations = self._validate_triples(heads, tails, relations)
        return self.kernel.score_triples(
            gather_transposed(self.entity_embeddings, heads),
            gather_transposed(self.entity_embeddings, tails),
            gather_transposed(self.relation_embeddings, relations),
        )

    def _combined_query_flat(
        self, anchors: np.ndarray, relations: np.ndarray, side: str
    ) -> np.ndarray:
        """``(b, n_e * D)`` anchor/relation combination for sweep scoring.

        For ``side="tail"`` the anchors are heads and the combination
        lives in the tail slots (and vice versa).  Dispatches to the
        compiled kernel or the reference einsum.
        """
        anchor_vecs_needed = not self.use_compiled_kernel
        if anchor_vecs_needed:
            anchor_vecs = self.entity_embeddings[anchors]
            r_vecs = self.relation_embeddings[relations]
            spec = "ijk,bid,bkd->bjd" if side == "tail" else "ijk,bjd,bkd->bid"
            combined = np.einsum(spec, self.omega, anchor_vecs, r_vecs, optimize=True)
            return combined.reshape(len(anchors), -1)
        anchor_t = gather_transposed(self.entity_embeddings, anchors)
        r_t = gather_transposed(self.relation_embeddings, relations)
        kernel = self.kernel
        combined = (
            kernel.combine_hr(anchor_t, r_t)
            if side == "tail"
            else kernel.combine_tr(anchor_t, r_t)
        )
        return combined.transpose(1, 0, 2).reshape(len(anchors), -1)

    def score_all_tails(self, heads: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """Score every entity as the tail of ``(h, ?, r)``.

        Uses the factorisation ``S(h, e, r) = Σ_j C_j · e^(j)`` with
        ``C_j = Σ_{ik} ω_ijk h^(i) ⊙ r^(k)``, so the all-entity sweep is a
        single matmul.
        """
        heads = np.asarray(heads, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        flat = self._combined_query_flat(heads, relations, "tail")
        entity_flat = self.entity_embeddings.reshape(self.num_entities, -1)
        return flat @ entity_flat.T

    def score_all_heads(self, tails: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """Score every entity as the head of ``(?, t, r)``."""
        tails = np.asarray(tails, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        flat = self._combined_query_flat(tails, relations, "head")
        entity_flat = self.entity_embeddings.reshape(self.num_entities, -1)
        return flat @ entity_flat.T

    def score_candidates(
        self,
        anchors: np.ndarray,
        relations: np.ndarray,
        candidates: np.ndarray,
        side: str = "tail",
    ) -> np.ndarray:
        """Candidate-set scoring without the full 1-vs-all sweep.

        Reuses the :meth:`score_all_tails` factorisation but contracts the
        combined tensor only with the requested candidate rows, so the
        cost is ``O(b · c · n_e · D)`` instead of ``O(b · N · n_e · D)``.

        When every query shares one ``(c,)`` candidate id array (the
        sharded-evaluation sweep shape), the contraction is a single
        matmul against one gathered ``(c, f)`` block instead of a
        ``(b, c, f)`` per-query gather — same scores, ``b``× less gather
        memory.
        """
        shared = np.ndim(candidates) == 1
        anchors, relations, candidates = self._validate_candidate_query(
            anchors, relations, candidates, side
        )
        flat = self._combined_query_flat(anchors, relations, side)
        entity_flat = self.entity_embeddings.reshape(self.num_entities, -1)
        if shared and len(candidates):
            return flat @ entity_flat[candidates[0]].T
        return np.einsum("bf,bcf->bc", flat, entity_flat[candidates], optimize=True)

    # --------------------------------------------------------------- gradients
    def _score_gradients(
        self, cache: _BatchCache, grad_scores: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-occurrence gradients of the weighted loss w.r.t. H, T, R rows.

        ``grad_scores`` is dL/dS per batch element; the trilinear form
        gives, e.g., ``dS/dh^(i) = Σ_{jk} ω_ijk (t^(j) ⊙ r^(k))``.
        """
        omega = self.omega
        g = grad_scores[:, None, None]
        grad_h = g * np.einsum("ijk,bjd,bkd->bid", omega, cache.t_vecs, cache.r_vecs, optimize=True)
        grad_t = g * np.einsum("ijk,bid,bkd->bjd", omega, cache.h_vecs, cache.r_vecs, optimize=True)
        grad_r = g * np.einsum("ijk,bid,bjd->bkd", omega, cache.h_vecs, cache.t_vecs, optimize=True)
        return grad_h, grad_t, grad_r

    def _omega_gradient(self, cache: _BatchCache, grad_scores: np.ndarray) -> np.ndarray:
        """dL/dω — used only by trainable-ω subclasses."""
        return np.einsum(
            "b,bid,bjd,bkd->ijk",
            grad_scores,
            cache.h_vecs,
            cache.t_vecs,
            cache.r_vecs,
            optimize=True,
        )

    # ---------------------------------------------------------------- training
    def train_step(
        self, positives: np.ndarray, negatives: np.ndarray, optimizer: Optimizer
    ) -> float:
        """One optimisation step on a batch (Eq. 16 loss + L2 + constraint).

        Runs the fused kernel hot path by default; the dense reference
        step (``use_compiled_kernel=False``) computes the same update
        through the original einsum/`aggregate_rows` pipeline.
        """
        positives = np.asarray(positives, dtype=np.int64)
        negatives = np.asarray(negatives, dtype=np.int64)
        if self.use_compiled_kernel:
            return self._train_step_fused(positives, negatives, optimizer)
        return self._train_step_reference(positives, negatives, optimizer)

    def _train_step_reference(
        self, positives: np.ndarray, negatives: np.ndarray, optimizer: Optimizer
    ) -> float:
        """The original dense train step, kept as the equivalence oracle."""
        triples = np.concatenate([positives, negatives], axis=0)
        labels = np.concatenate(
            [np.ones(len(positives)), -np.ones(len(negatives))]
        )
        cache = self._forward(triples[:, 0], triples[:, 1], triples[:, 2])
        loss_value = self.loss.value(cache.scores, labels)
        grad_scores = self.loss.grad_score(cache.scores, labels)
        grad_h, grad_t, grad_r = self._score_gradients(cache, grad_scores)

        # Per-occurrence L2 of Eq. 16 (each triple penalises its own
        # embedding vectors), averaged over the batch like the data loss.
        if self.regularizer.strength > 0.0:
            inv_batch = 1.0 / len(triples)
            loss_value += inv_batch * (
                self.regularizer.value(cache.h_vecs)
                + self.regularizer.value(cache.t_vecs)
                + self.regularizer.value(cache.r_vecs)
            )
            grad_h = grad_h + inv_batch * self.regularizer.grad(cache.h_vecs)
            grad_t = grad_t + inv_batch * self.regularizer.grad(cache.t_vecs)
            grad_r = grad_r + inv_batch * self.regularizer.grad(cache.r_vecs)

        self._apply_updates(cache, grad_h, grad_t, grad_r, optimizer)
        self._extra_updates(cache, grad_scores, optimizer)
        self._bump_scoring_version()
        return float(loss_value)

    def _train_step_fused(
        self, positives: np.ndarray, negatives: np.ndarray, optimizer: Optimizer
    ) -> float:
        """Compiled-kernel hot path: one step, three contractions, no lattice.

        Identical update to :meth:`_train_step_reference` (within float
        re-association; certified to 1e-10 by the test-suite) but:

        * embeddings are gathered into preallocated transposed buffers,
        * the forward combination is reused as the tail gradient,
        * per-occurrence gradients are collapsed with
          :func:`~repro.nn.optimizers.scatter_accumulate` instead of
          ``np.add.at`` over full-width temporaries, and
        * the optimizer update runs through
          :meth:`~repro.nn.optimizers.Optimizer.step_sparse_fused`.
        """
        kernel = self.kernel
        heads = np.concatenate([positives[:, 0], negatives[:, 0]])
        tails = np.concatenate([positives[:, 1], negatives[:, 1]])
        relations = np.concatenate([positives[:, 2], negatives[:, 2]])
        batch = len(heads)
        if batch == 0:
            # Match the reference path, which fails in the loss' checks.
            raise ConfigError("loss requires at least one example")
        ws = self._workspace(batch)
        labels = np.concatenate(
            [np.ones(len(positives)), -np.ones(len(negatives))]
        )
        scores = np.empty(batch, dtype=np.float64)
        grad_scores = np.empty(batch, dtype=np.float64)
        regularizing = self.regularizer.strength > 0.0
        inv_batch = 1.0 / batch
        loss_sum = 0.0

        for start in range(0, batch, _FUSED_CHUNK_ROWS):
            stop = min(start + _FUSED_CHUNK_ROWS, batch)
            span = np.s_[:, start:stop]
            h_c = ws.h_t[span]
            t_c = ws.t_t[span]
            r_c = ws.r_t[span]
            gather_transposed(self.entity_embeddings, heads[start:stop], out=h_c)
            gather_transposed(self.entity_embeddings, tails[start:stop], out=t_c)
            gather_transposed(self.relation_embeddings, relations[start:stop], out=r_c)

            scores_c = kernel.score_triples(h_c, t_c, r_c, combined_out=ws.combined[span])
            scores[start:stop] = scores_c
            labels_c = labels[start:stop]
            # The loss is a mean over triples, so chunk values/gradients
            # rescale from the chunk denominator to the batch denominator.
            loss_sum += self.loss.value(scores_c, labels_c) * (stop - start)
            grad_scores_c = self.loss.grad_score(scores_c, labels_c)
            grad_scores_c *= (stop - start) * inv_batch
            grad_scores[start:stop] = grad_scores_c
            grad_h_c, grad_t_c, grad_r_c = kernel.gradients(
                h_c,
                t_c,
                r_c,
                grad_scores_c,
                forward_combined=ws.combined[span],
                out_h=ws.grad_h[span],
                out_r=ws.grad_r[span],
                scaled_t=ws.scaled_t[span],
            )
            if regularizing:
                loss_sum += (
                    self.regularizer.value(h_c)
                    + self.regularizer.value(t_c)
                    + self.regularizer.value(r_c)
                )
                grad_h_c += inv_batch * self.regularizer.grad(h_c)
                grad_t_c += inv_batch * self.regularizer.grad(t_c)
                grad_r_c += inv_batch * self.regularizer.grad(r_c)

        loss_value = loss_sum * inv_batch

        # Duplicate-aware scatter accumulation straight off the transposed
        # gradient buffers (grad_t lives in the reused forward combination).
        rows, grads = scatter_accumulate_transposed(
            (heads, tails),
            (ws.grad_h, ws.combined),
            out=ws.entity_sums,
            slot_scratch=ws.entity_slot_sums,
        )
        optimizer.step_sparse_fused("entities", self.entity_embeddings, rows, grads)
        if self.constraint is not None:
            self.constraint.apply(self.entity_embeddings, rows)
        rel_rows, rel_grads = scatter_accumulate_transposed(
            (relations,),
            (ws.grad_r,),
            out=ws.relation_sums,
            slot_scratch=ws.relation_slot_sums,
        )
        optimizer.step_sparse_fused(
            "relations", self.relation_embeddings, rel_rows, rel_grads
        )

        # Transposed views keep the _extra_updates hook layout-compatible.
        cache = _BatchCache(
            heads,
            tails,
            relations,
            ws.h_t.transpose(1, 0, 2),
            ws.t_t.transpose(1, 0, 2),
            ws.r_t.transpose(1, 0, 2),
            scores,
        )
        self._extra_updates(cache, grad_scores, optimizer)
        self._bump_scoring_version()
        return float(loss_value)

    def _apply_updates(
        self,
        cache: _BatchCache,
        grad_h: np.ndarray,
        grad_t: np.ndarray,
        grad_r: np.ndarray,
        optimizer: Optimizer,
    ) -> None:
        entity_indices = np.concatenate([cache.heads, cache.tails])
        entity_grads = np.concatenate([grad_h, grad_t], axis=0)
        rows, grads = aggregate_rows(entity_indices, entity_grads)
        optimizer.step_sparse("entities", self.entity_embeddings, rows, grads)
        if self.constraint is not None:
            self.constraint.apply(self.entity_embeddings, rows)
        rel_rows, rel_grads = aggregate_rows(cache.relations, grad_r)
        optimizer.step_sparse("relations", self.relation_embeddings, rel_rows, rel_grads)

    def _extra_updates(
        self, cache: _BatchCache, grad_scores: np.ndarray, optimizer: Optimizer
    ) -> None:
        """Hook for subclasses that own extra parameters (e.g. trainable ω)."""

    # ------------------------------------------------------------------- misc
    def parameter_count(self) -> int:
        """Trainable scalars across both embedding tables."""
        return int(self.entity_embeddings.size + self.relation_embeddings.size)

    def entity_features(self) -> np.ndarray:
        """Concatenated real-valued entity features, shape ``(N, n_e * D)``.

        §3.2's practical insight: multiple embedding vectors can simply be
        concatenated into one long real vector for downstream analysis.
        """
        return self.entity_embeddings.reshape(self.num_entities, -1).copy()

    def relation_features(self) -> np.ndarray:
        """Concatenated real-valued relation features, shape ``(R, n_r * D)``."""
        return self.relation_embeddings.reshape(self.num_relations, -1).copy()
