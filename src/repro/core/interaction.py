"""The multi-embedding interaction model — the paper's Eq. 8.

Entities own ``n_e`` embedding vectors each, relations ``n_r``; the score
of ``(h, t, r)`` is the ω-weighted sum of all ``n_e · n_e · n_r``
trilinear products:

    S(h, t, r; Θ, ω) = Σ_{ijk} ω_{ijk} ⟨h^(i), t^(j), r^(k)⟩

Training uses analytic gradients (the score is trilinear, so they are
closed-form) with the logistic loss of Eq. 16, per-triple L2
regularisation, lazy sparse optimizer updates, and the paper's
unit-L2-norm constraint on entity embeddings after each step.  The
gradients are certified against the autodiff engine and finite
differences by the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import KGEModel
from repro.core.weights import WeightVector
from repro.errors import ConfigError, ModelError
from repro.nn.constraints import UnitNormConstraint
from repro.nn.initializers import get_initializer
from repro.nn.losses import LogisticLoss
from repro.nn.optimizers import Optimizer, aggregate_rows
from repro.nn.regularizers import L2Regularizer, N3Regularizer


@dataclass
class _BatchCache:
    """Forward-pass tensors reused by the backward pass."""

    heads: np.ndarray  # (b,) entity ids
    tails: np.ndarray
    relations: np.ndarray
    h_vecs: np.ndarray  # (b, n_e, D)
    t_vecs: np.ndarray  # (b, n_e, D)
    r_vecs: np.ndarray  # (b, n_r, D)
    scores: np.ndarray  # (b,)


class MultiEmbeddingModel(KGEModel):
    """Eq. 8 scorer with a fixed (non-trainable) interaction weight ω.

    Parameters
    ----------
    num_entities, num_relations:
        Id-space sizes.
    dim:
        Dimension ``D`` of each component embedding vector.  At fixed
        parameter budget, one-embedding models use ``D``, two-embedding
        models ``D/2``, four-embedding ``D/4`` (paper §5.3).
    weights:
        The interaction weight vector ω (see :mod:`repro.core.weights`).
    rng:
        Generator for embedding initialisation.
    regularization:
        λ of Eq. 16.  The effective coefficient is ``λ / n_D`` with
        ``n_D`` the per-triple embedding size, as in the paper.
    initializer:
        Name from :mod:`repro.nn.initializers`.
    unit_norm_entities:
        Apply the paper's unit-L2-norm constraint to touched entity rows
        after every step.
    regularizer_kind:
        ``"l2"`` (paper Eq. 16, default) or ``"n3"`` (the cubic nuclear
        norm of Lacroix et al. 2018, the regulariser that — together
        with inverse augmentation — makes CP competitive at scale).
    """

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        weights: WeightVector,
        rng: np.random.Generator,
        regularization: float = 0.0,
        initializer: str = "unit_normalized",
        unit_norm_entities: bool = True,
        loss: LogisticLoss | None = None,
        regularizer_kind: str = "l2",
    ) -> None:
        if num_entities < 1 or num_relations < 1:
            raise ConfigError("id spaces must be non-empty")
        if dim < 1:
            raise ConfigError("dim must be >= 1")
        self.name = weights.name
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)
        self.dim = int(dim)
        self.weights = weights
        self.num_entity_vectors = weights.num_entity_vectors
        self.num_relation_vectors = weights.num_relation_vectors
        init = get_initializer(initializer)
        self.entity_embeddings = init(
            (self.num_entities, self.num_entity_vectors, self.dim), rng
        ).astype(np.float64)
        self.relation_embeddings = init(
            (self.num_relations, self.num_relation_vectors, self.dim), rng
        ).astype(np.float64)
        # n_D of Eq. 16: number of embedding scalars touched by one triple.
        per_triple_size = (2 * self.num_entity_vectors + self.num_relation_vectors) * self.dim
        if regularizer_kind == "l2":
            self.regularizer: L2Regularizer | N3Regularizer = L2Regularizer(
                regularization, scale=per_triple_size
            )
        elif regularizer_kind == "n3":
            self.regularizer = N3Regularizer(regularization, scale=per_triple_size)
        else:
            raise ConfigError(f"unknown regularizer_kind {regularizer_kind!r}; use 'l2' or 'n3'")
        self.loss = loss or LogisticLoss()
        self.constraint = UnitNormConstraint() if unit_norm_entities else None

    # ------------------------------------------------------------------ omega
    @property
    def omega(self) -> np.ndarray:
        """The interaction weight tensor used for scoring.

        Subclasses with trainable ω override this property.
        """
        return self.weights.tensor

    # ---------------------------------------------------------------- scoring
    def _forward(
        self, heads: np.ndarray, tails: np.ndarray, relations: np.ndarray
    ) -> _BatchCache:
        heads = np.asarray(heads, dtype=np.int64)
        tails = np.asarray(tails, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        if not (heads.shape == tails.shape == relations.shape) or heads.ndim != 1:
            raise ModelError("heads, tails, relations must be 1-D arrays of equal length")
        h_vecs = self.entity_embeddings[heads]
        t_vecs = self.entity_embeddings[tails]
        r_vecs = self.relation_embeddings[relations]
        # ⟨·,·,·⟩ lattice contracted with ω:  C[b, j, d] = Σ_{ik} ω_ijk h_i r_k
        combined = np.einsum("ijk,bid,bkd->bjd", self.omega, h_vecs, r_vecs, optimize=True)
        scores = np.einsum("bjd,bjd->b", combined, t_vecs, optimize=True)
        return _BatchCache(heads, tails, relations, h_vecs, t_vecs, r_vecs, scores)

    def score_triples(
        self, heads: np.ndarray, tails: np.ndarray, relations: np.ndarray
    ) -> np.ndarray:
        """Eq. 8 scores for a batch of triples."""
        return self._forward(heads, tails, relations).scores

    def score_all_tails(self, heads: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """Score every entity as the tail of ``(h, ?, r)``.

        Uses the factorisation ``S(h, e, r) = Σ_j C_j · e^(j)`` with
        ``C_j = Σ_{ik} ω_ijk h^(i) ⊙ r^(k)``, so the all-entity sweep is a
        single matmul.
        """
        heads = np.asarray(heads, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        h_vecs = self.entity_embeddings[heads]
        r_vecs = self.relation_embeddings[relations]
        combined = np.einsum("ijk,bid,bkd->bjd", self.omega, h_vecs, r_vecs, optimize=True)
        flat = combined.reshape(len(heads), -1)
        entity_flat = self.entity_embeddings.reshape(self.num_entities, -1)
        return flat @ entity_flat.T

    def score_all_heads(self, tails: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """Score every entity as the head of ``(?, t, r)``."""
        tails = np.asarray(tails, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        t_vecs = self.entity_embeddings[tails]
        r_vecs = self.relation_embeddings[relations]
        combined = np.einsum("ijk,bjd,bkd->bid", self.omega, t_vecs, r_vecs, optimize=True)
        flat = combined.reshape(len(tails), -1)
        entity_flat = self.entity_embeddings.reshape(self.num_entities, -1)
        return flat @ entity_flat.T

    def score_candidates(
        self,
        anchors: np.ndarray,
        relations: np.ndarray,
        candidates: np.ndarray,
        side: str = "tail",
    ) -> np.ndarray:
        """Candidate-set scoring without the full 1-vs-all sweep.

        Reuses the :meth:`score_all_tails` factorisation but contracts the
        combined tensor only with the requested candidate rows, so the
        cost is ``O(b · c · n_e · D)`` instead of ``O(b · N · n_e · D)``.
        """
        anchors, relations, candidates = self._validate_candidate_query(
            anchors, relations, candidates, side
        )
        anchor_vecs = self.entity_embeddings[anchors]
        r_vecs = self.relation_embeddings[relations]
        if side == "tail":
            combined = np.einsum(
                "ijk,bid,bkd->bjd", self.omega, anchor_vecs, r_vecs, optimize=True
            )
        else:
            combined = np.einsum(
                "ijk,bjd,bkd->bid", self.omega, anchor_vecs, r_vecs, optimize=True
            )
        flat = combined.reshape(len(anchors), -1)
        entity_flat = self.entity_embeddings.reshape(self.num_entities, -1)
        return np.einsum("bf,bcf->bc", flat, entity_flat[candidates], optimize=True)

    # --------------------------------------------------------------- gradients
    def _score_gradients(
        self, cache: _BatchCache, grad_scores: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-occurrence gradients of the weighted loss w.r.t. H, T, R rows.

        ``grad_scores`` is dL/dS per batch element; the trilinear form
        gives, e.g., ``dS/dh^(i) = Σ_{jk} ω_ijk (t^(j) ⊙ r^(k))``.
        """
        omega = self.omega
        g = grad_scores[:, None, None]
        grad_h = g * np.einsum("ijk,bjd,bkd->bid", omega, cache.t_vecs, cache.r_vecs, optimize=True)
        grad_t = g * np.einsum("ijk,bid,bkd->bjd", omega, cache.h_vecs, cache.r_vecs, optimize=True)
        grad_r = g * np.einsum("ijk,bid,bjd->bkd", omega, cache.h_vecs, cache.t_vecs, optimize=True)
        return grad_h, grad_t, grad_r

    def _omega_gradient(self, cache: _BatchCache, grad_scores: np.ndarray) -> np.ndarray:
        """dL/dω — used only by trainable-ω subclasses."""
        return np.einsum(
            "b,bid,bjd,bkd->ijk",
            grad_scores,
            cache.h_vecs,
            cache.t_vecs,
            cache.r_vecs,
            optimize=True,
        )

    # ---------------------------------------------------------------- training
    def train_step(
        self, positives: np.ndarray, negatives: np.ndarray, optimizer: Optimizer
    ) -> float:
        """One optimisation step on a batch (Eq. 16 loss + L2 + constraint)."""
        positives = np.asarray(positives, dtype=np.int64)
        negatives = np.asarray(negatives, dtype=np.int64)
        triples = np.concatenate([positives, negatives], axis=0)
        labels = np.concatenate(
            [np.ones(len(positives)), -np.ones(len(negatives))]
        )
        cache = self._forward(triples[:, 0], triples[:, 1], triples[:, 2])
        loss_value = self.loss.value(cache.scores, labels)
        grad_scores = self.loss.grad_score(cache.scores, labels)
        grad_h, grad_t, grad_r = self._score_gradients(cache, grad_scores)

        # Per-occurrence L2 of Eq. 16 (each triple penalises its own
        # embedding vectors), averaged over the batch like the data loss.
        if self.regularizer.strength > 0.0:
            inv_batch = 1.0 / len(triples)
            loss_value += inv_batch * (
                self.regularizer.value(cache.h_vecs)
                + self.regularizer.value(cache.t_vecs)
                + self.regularizer.value(cache.r_vecs)
            )
            grad_h = grad_h + inv_batch * self.regularizer.grad(cache.h_vecs)
            grad_t = grad_t + inv_batch * self.regularizer.grad(cache.t_vecs)
            grad_r = grad_r + inv_batch * self.regularizer.grad(cache.r_vecs)

        self._apply_updates(cache, grad_h, grad_t, grad_r, optimizer)
        self._extra_updates(cache, grad_scores, optimizer)
        self._bump_scoring_version()
        return float(loss_value)

    def _apply_updates(
        self,
        cache: _BatchCache,
        grad_h: np.ndarray,
        grad_t: np.ndarray,
        grad_r: np.ndarray,
        optimizer: Optimizer,
    ) -> None:
        entity_indices = np.concatenate([cache.heads, cache.tails])
        entity_grads = np.concatenate([grad_h, grad_t], axis=0)
        rows, grads = aggregate_rows(entity_indices, entity_grads)
        optimizer.step_sparse("entities", self.entity_embeddings, rows, grads)
        if self.constraint is not None:
            self.constraint.apply(self.entity_embeddings, rows)
        rel_rows, rel_grads = aggregate_rows(cache.relations, grad_r)
        optimizer.step_sparse("relations", self.relation_embeddings, rel_rows, rel_grads)

    def _extra_updates(
        self, cache: _BatchCache, grad_scores: np.ndarray, optimizer: Optimizer
    ) -> None:
        """Hook for subclasses that own extra parameters (e.g. trainable ω)."""

    # ------------------------------------------------------------------- misc
    def parameter_count(self) -> int:
        """Trainable scalars across both embedding tables."""
        return int(self.entity_embeddings.size + self.relation_embeddings.size)

    def entity_features(self) -> np.ndarray:
        """Concatenated real-valued entity features, shape ``(N, n_e * D)``.

        §3.2's practical insight: multiple embedding vectors can simply be
        concatenated into one long real vector for downstream analysis.
        """
        return self.entity_embeddings.reshape(self.num_entities, -1).copy()

    def relation_features(self) -> np.ndarray:
        """Concatenated real-valued relation features, shape ``(R, n_r * D)``."""
        return self.relation_embeddings.reshape(self.num_relations, -1).copy()
