"""The paper's contribution: the multi-embedding interaction mechanism.

* :mod:`repro.core.weights` — the ω presets of Table 1 (and Tables 2/3).
* :mod:`repro.core.kernels` — compiled sparse-ω scoring/gradient kernels.
* :mod:`repro.core.interaction` — the Eq. 8 scorer with analytic gradients.
* :mod:`repro.core.learned` — ω learned end-to-end (§3.3).
* :mod:`repro.core.models` — factory for DistMult/ComplEx/CP/CPh/Quaternion.
* :mod:`repro.core.properties` — completeness/stability/distinguishability.
* :mod:`repro.core.direct` — algebra-native cross-check scorers.
* :mod:`repro.core.algebra` — complex and quaternion arithmetic.
"""

from repro.core.base import KGEModel
from repro.core.interaction import MultiEmbeddingModel
from repro.core.kernels import (
    DENSE_DENSITY_THRESHOLD,
    DenseEinsumKernel,
    OmegaKernel,
    SparseTermKernel,
    compile_kernel,
)
from repro.core.learned import (
    LearnedWeightModel,
    SigmoidTransform,
    SoftmaxTransform,
    TanhTransform,
    WeightTransform,
    make_transform,
)
from repro.core.models import (
    MODEL_FACTORIES,
    make_complex,
    make_cp,
    make_cph,
    make_distmult,
    make_learned_weight_model,
    make_model,
    make_quaternion,
    parity_dim,
)
from repro.core.serialization import load_model, save_model
from repro.core.properties import (
    WeightVectorProperties,
    analyze_weight_vector,
    dead_slots,
    is_complete,
    is_distinguishable,
    is_stable,
)
from repro.core.weights import (
    BAD_EXAMPLE_1,
    BAD_EXAMPLE_2,
    COMPLEX,
    COMPLEX_EQUIV_1,
    COMPLEX_EQUIV_2,
    COMPLEX_EQUIV_3,
    CP,
    CPH,
    CPH_EQUIV,
    DISTMULT,
    DISTMULT_N1,
    GOOD_EXAMPLE_1,
    GOOD_EXAMPLE_2,
    PRESETS,
    QUATERNION,
    UNIFORM,
    WeightVector,
    complex_equivalents,
    cph_equivalents,
    get_preset,
)

__all__ = [
    "BAD_EXAMPLE_1",
    "BAD_EXAMPLE_2",
    "COMPLEX",
    "COMPLEX_EQUIV_1",
    "COMPLEX_EQUIV_2",
    "COMPLEX_EQUIV_3",
    "CP",
    "CPH",
    "CPH_EQUIV",
    "DENSE_DENSITY_THRESHOLD",
    "DISTMULT",
    "DISTMULT_N1",
    "DenseEinsumKernel",
    "GOOD_EXAMPLE_1",
    "GOOD_EXAMPLE_2",
    "KGEModel",
    "LearnedWeightModel",
    "MODEL_FACTORIES",
    "MultiEmbeddingModel",
    "OmegaKernel",
    "PRESETS",
    "QUATERNION",
    "SparseTermKernel",
    "SigmoidTransform",
    "SoftmaxTransform",
    "TanhTransform",
    "UNIFORM",
    "WeightTransform",
    "WeightVector",
    "WeightVectorProperties",
    "analyze_weight_vector",
    "compile_kernel",
    "complex_equivalents",
    "cph_equivalents",
    "dead_slots",
    "get_preset",
    "is_complete",
    "is_distinguishable",
    "is_stable",
    "load_model",
    "make_complex",
    "make_cp",
    "make_cph",
    "make_distmult",
    "make_learned_weight_model",
    "make_model",
    "make_quaternion",
    "make_transform",
    "parity_dim",
    "save_model",
]
