"""Abstract interface shared by all knowledge graph embedding models.

The trainer and evaluator only ever talk to this interface, so the
trilinear family (:mod:`repro.core.interaction`), the learned-ω variant
and every baseline (:mod:`repro.baselines`) are interchangeable in
experiments.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.nn.optimizers import Optimizer


class KGEModel(abc.ABC):
    """A scorer over ``(h, t, r)`` triples that can train itself on a batch.

    A higher score means the triple is more likely to be valid (paper
    §2.1, component 3).
    """

    #: Display name used in logs and benchmark tables.
    name: str = "model"
    #: Id-space sizes; set by concrete constructors.
    num_entities: int
    num_relations: int

    @abc.abstractmethod
    def score_triples(
        self, heads: np.ndarray, tails: np.ndarray, relations: np.ndarray
    ) -> np.ndarray:
        """Matching scores for a batch of triples; shape ``(b,)``."""

    @abc.abstractmethod
    def score_all_tails(self, heads: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """Scores of every entity as tail: shape ``(b, num_entities)``."""

    @abc.abstractmethod
    def score_all_heads(self, tails: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """Scores of every entity as head: shape ``(b, num_entities)``."""

    @abc.abstractmethod
    def train_step(
        self, positives: np.ndarray, negatives: np.ndarray, optimizer: Optimizer
    ) -> float:
        """One SGD step on positive ``(b, 3)`` and negative ``(m, 3)`` triples.

        Returns the batch training loss (before the step).
        """

    def parameter_count(self) -> int:
        """Total number of trainable scalars (for parameter-parity checks)."""
        return 0

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, entities={self.num_entities}, "
            f"relations={self.num_relations}, parameters={self.parameter_count():,})"
        )
