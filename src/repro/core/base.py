"""Abstract interface shared by all knowledge graph embedding models.

The trainer and evaluator only ever talk to this interface, so the
trilinear family (:mod:`repro.core.interaction`), the learned-ω variant
and every baseline (:mod:`repro.baselines`) are interchangeable in
experiments.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ModelError
from repro.nn.optimizers import Optimizer

#: Valid values for the ``side`` argument of candidate scoring.
CANDIDATE_SIDES = ("tail", "head")

#: Max flattened triples per ``score_triples`` call in the default
#: candidate-scoring fallback — bounds peak memory for wide grids.
CANDIDATE_BLOCK_TRIPLES = 65536


class KGEModel(abc.ABC):
    """A scorer over ``(h, t, r)`` triples that can train itself on a batch.

    A higher score means the triple is more likely to be valid (paper
    §2.1, component 3).
    """

    #: Display name used in logs and benchmark tables.
    name: str = "model"
    #: Id-space sizes; set by concrete constructors.
    num_entities: int
    num_relations: int
    #: Monotonic counter bumped by every parameter update (``train_step``
    #: implementations call :meth:`_bump_scoring_version`).  The serving
    #: layer keys its caches and precomputed tensors on this value, so
    #: stale scores are never served after training.  Code that mutates
    #: embedding tables directly (outside ``train_step``) must bump the
    #: version itself or clear any caches explicitly.
    _scoring_version: int = 0

    @property
    def scoring_version(self) -> int:
        """Current parameter version; changes whenever training updates weights."""
        return self._scoring_version

    def _bump_scoring_version(self) -> None:
        self._scoring_version += 1

    @abc.abstractmethod
    def score_triples(
        self, heads: np.ndarray, tails: np.ndarray, relations: np.ndarray
    ) -> np.ndarray:
        """Matching scores for a batch of triples; shape ``(b,)``."""

    @abc.abstractmethod
    def score_all_tails(self, heads: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """Scores of every entity as tail: shape ``(b, num_entities)``."""

    @abc.abstractmethod
    def score_all_heads(self, tails: np.ndarray, relations: np.ndarray) -> np.ndarray:
        """Scores of every entity as head: shape ``(b, num_entities)``."""

    def score_candidates(
        self,
        anchors: np.ndarray,
        relations: np.ndarray,
        candidates: np.ndarray,
        side: str = "tail",
    ) -> np.ndarray:
        """Scores of an explicit candidate set per query: shape ``(b, c)``.

        ``anchors`` are heads when ``side="tail"`` (candidates replace the
        tail) and tails when ``side="head"``.  ``candidates`` is either a
        shared ``(c,)`` id array or a per-query ``(b, c)`` array.

        This default flattens the candidate grid into vectorised
        ``score_triples`` calls over ``b · c`` triples (split into
        bounded column blocks so a full-entity candidate grid cannot
        materialise huge per-occurrence embedding gathers), which is
        correct for any model; subclasses override it with fast paths
        that avoid scoring each candidate as an independent triple.
        """
        anchors, relations, candidates = self._validate_candidate_query(
            anchors, relations, candidates, side
        )
        num_queries, num_candidates = candidates.shape
        out = np.empty((num_queries, num_candidates), dtype=np.float64)
        columns_per_block = max(1, CANDIDATE_BLOCK_TRIPLES // max(1, num_queries))
        for start in range(0, num_candidates, columns_per_block):
            stop = min(start + columns_per_block, num_candidates)
            block = candidates[:, start:stop]
            flat_anchors = np.repeat(anchors, stop - start)
            flat_relations = np.repeat(relations, stop - start)
            flat_candidates = block.reshape(-1)
            if side == "tail":
                scores = self.score_triples(flat_anchors, flat_candidates, flat_relations)
            else:
                scores = self.score_triples(flat_candidates, flat_anchors, flat_relations)
            out[:, start:stop] = scores.reshape(num_queries, stop - start)
        return out

    def _validate_candidate_query(
        self,
        anchors: np.ndarray,
        relations: np.ndarray,
        candidates: np.ndarray,
        side: str,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shared input checking for :meth:`score_candidates` implementations.

        Returns int64 arrays with ``candidates`` broadcast to ``(b, c)``.
        """
        if side not in CANDIDATE_SIDES:
            raise ModelError(f"unknown side {side!r}; known: {CANDIDATE_SIDES}")
        anchors = np.asarray(anchors, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        candidates = np.asarray(candidates, dtype=np.int64)
        if anchors.ndim != 1 or anchors.shape != relations.shape:
            raise ModelError("anchors and relations must be 1-D arrays of equal length")
        if candidates.ndim == 1:
            candidates = np.broadcast_to(candidates, (len(anchors), len(candidates)))
        if candidates.ndim != 2 or len(candidates) != len(anchors):
            raise ModelError("candidates must be (c,) or (b, c) matching the queries")
        if candidates.size and (
            candidates.min() < 0 or candidates.max() >= self.num_entities
        ):
            raise ModelError("candidate ids out of range")
        return anchors, relations, candidates

    @abc.abstractmethod
    def train_step(
        self, positives: np.ndarray, negatives: np.ndarray, optimizer: Optimizer
    ) -> float:
        """One SGD step on positive ``(b, 3)`` and negative ``(m, 3)`` triples.

        Returns the batch training loss (before the step).
        """

    def parameter_count(self) -> int:
        """Total number of trainable scalars (for parameter-parity checks)."""
        return 0

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, entities={self.num_entities}, "
            f"relations={self.num_relations}, parameters={self.parameter_count():,})"
        )
