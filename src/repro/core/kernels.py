"""Compiled sparse-ω interaction kernels.

Every model the paper derives from Eq. 8 (DistMult, ComplEx, CP, CPh,
the quaternion model, Table 2's hand-crafted variants) instantiates a
*mostly zero* interaction tensor ω, yet the reference scorer contracts
the full dense ``(n_h, n_t, n_r)`` lattice with ``np.einsum`` on every
call — recomputing the contraction path each time and touching every
zero term.  This module compiles ω **once per model** into a
term-grouped program over its nonzero ``(i, j, k, weight)`` entries:

* each output slot of a contraction is produced by a short sequence of
  batched elementwise products (one per nonzero term), with the first
  term written directly into the output buffer and ±1 weights handled
  without a multiply;
* all batch tensors use the *transposed* layout ``(slots, b, D)`` so
  every slice touched by the program is C-contiguous;
* the same three programs power scoring, the all-entity sweeps, the
  candidate fast path, **and** the three analytic gradients — the
  forward combination is reused as the tail gradient, so a fused train
  step needs three contractions where the dense path needs five einsums.

When ω is dense (the uniform baseline, learned-ω models) a sparse
program would enumerate every lattice position and win nothing; above
:data:`DENSE_DENSITY_THRESHOLD` the compiler instead emits a
:class:`DenseEinsumKernel` that keeps the dense einsum but reuses
precomputed contraction paths (cached per spec × operand shapes).  The
uncompiled per-call einsum in :mod:`repro.core.interaction` remains the
reference oracle; the test-suite certifies every kernel against it to
1e-10 for scores and all gradient tensors.

The design follows the tabling insight of Fodor & Kifer (pre-compiling
repeated logic-program evaluations): the ω structure never changes
between calls for fixed-weight models, so all structure-dependent work
is hoisted to compile time.  Learned-ω models recompile whenever their
ω tensor is replaced (each train step / checkpoint load), which for the
dense kernel costs only an object allocation — the einsum paths live in
a module-level cache shared across recompilations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError

#: ω density (nonzero fraction) at or above which compilation falls back
#: to the dense-einsum kernel.  All of Table 1's derived models compile
#: sparse (quaternion 0.25, ComplEx 0.5, CP/CPh ≤ 0.25); the uniform
#: baseline and learned-ω tensors (density 1.0) stay dense.
DENSE_DENSITY_THRESHOLD = 0.75

#: Contraction paths keyed by ``(spec, operand shapes)``; shared across
#: kernel instances so learned-ω recompilation never re-plans an einsum.
_EINSUM_PATH_CACHE: dict[tuple, list] = {}


def cached_einsum(spec: str, *operands: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """``np.einsum`` with the contraction path precomputed and memoised."""
    key = (spec,) + tuple(op.shape for op in operands)
    path = _EINSUM_PATH_CACHE.get(key)
    if path is None:
        path = np.einsum_path(spec, *operands, optimize="optimal")[0]
        _EINSUM_PATH_CACHE[key] = path
    if out is None:
        return np.einsum(spec, *operands, optimize=path)
    return np.einsum(spec, *operands, out=out, optimize=path)


def _check_transposed(name: str, tensor: np.ndarray, slots: int) -> None:
    if tensor.ndim != 3 or tensor.shape[0] != slots:
        raise ModelError(
            f"{name} must have transposed layout (slots={slots}, b, D); got {tensor.shape}"
        )


class OmegaKernel:
    """Base class: a compiled scoring/gradient engine for one ω tensor.

    All batch inputs and outputs use the transposed ``(slots, b, D)``
    layout.  ``combine_hr`` realises ``C[j] = Σ_ik ω_ijk h_i ⊙ r_k``
    (the forward combination, also the tail gradient direction),
    ``combine_tr`` the head direction ``Σ_jk ω_ijk t_j ⊙ r_k`` and
    ``combine_ht`` the relation direction ``Σ_ij ω_ijk h_i ⊙ t_j``.
    """

    #: "sparse" or "dense"; set by subclasses.
    mode: str = "abstract"

    def __init__(self, omega: np.ndarray) -> None:
        omega = np.asarray(omega, dtype=np.float64)
        if omega.ndim != 3:
            raise ModelError(f"omega must be 3-D (n_h, n_t, n_r); got shape {omega.shape}")
        self.omega = omega
        self.num_head_slots, self.num_tail_slots, self.num_relation_slots = omega.shape
        self.num_terms = int(np.count_nonzero(omega))
        self.density = self.num_terms / omega.size

    # ------------------------------------------------------------ contractions
    def combine_hr(self, h_t: np.ndarray, r_t: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``(n_t, b, D)`` combination of head and relation slots."""
        raise NotImplementedError

    def combine_tr(self, t_t: np.ndarray, r_t: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``(n_h, b, D)`` combination of tail and relation slots."""
        raise NotImplementedError

    def combine_ht(self, h_t: np.ndarray, t_t: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``(n_r, b, D)`` combination of head and tail slots."""
        raise NotImplementedError

    # ----------------------------------------------------------------- scoring
    def score_triples(
        self,
        h_t: np.ndarray,
        t_t: np.ndarray,
        r_t: np.ndarray,
        combined_out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Eq. 8 scores ``(b,)`` from transposed per-triple embeddings.

        When ``combined_out`` is given the forward combination is left in
        it so the caller can reuse it as the tail-gradient direction.
        """
        combined = self.combine_hr(h_t, r_t, out=combined_out)
        scores = np.zeros(h_t.shape[1], dtype=np.float64)
        for j in range(self.num_tail_slots):
            scores += np.einsum("bd,bd->b", combined[j], t_t[j])
        return scores

    def gradients(
        self,
        h_t: np.ndarray,
        t_t: np.ndarray,
        r_t: np.ndarray,
        grad_scores: np.ndarray,
        forward_combined: np.ndarray | None = None,
        out_h: np.ndarray | None = None,
        out_r: np.ndarray | None = None,
        scaled_t: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Analytic score gradients ``(grad_h, grad_t, grad_r)``, transposed.

        ``forward_combined`` — the combination produced by
        :meth:`score_triples` — is scaled **in place** into the tail
        gradient when provided, saving one full contraction.  The score
        gradient enters the head and relation directions through one
        shared pre-scaled tail tensor ``g ⊙ t`` (score trilinearity makes
        ``g·Σω(t⊙r) = Σω((g·t)⊙r)``), which is one full-width pass
        cheaper than scaling both outputs.
        """
        g_row = grad_scores[None, :, None]
        if forward_combined is None:
            grad_t = self.combine_hr(h_t, r_t)
        else:
            grad_t = forward_combined
        grad_t *= g_row
        if scaled_t is None:
            scaled_t = t_t * g_row
        else:
            np.multiply(t_t, g_row, out=scaled_t)
        grad_h = self.combine_tr(scaled_t, r_t, out=out_h)
        grad_r = self.combine_ht(h_t, scaled_t, out=out_r)
        return grad_h, grad_t, grad_r

    def omega_gradient(
        self,
        grad_scores: np.ndarray,
        h_vecs: np.ndarray,
        t_vecs: np.ndarray,
        r_vecs: np.ndarray,
    ) -> np.ndarray:
        """dL/dω from standard-layout ``(b, slots, D)`` embeddings.

        The ω gradient is inherently dense (every lattice position gets a
        gradient signal), so both kernel flavours use the cached-path
        einsum.
        """
        return cached_einsum(
            "b,bid,bjd,bkd->ijk", grad_scores, h_vecs, t_vecs, r_vecs
        )

    def fold_relations(self, relation_table: np.ndarray) -> np.ndarray:
        """Per-relation mixing tensor ``W[r, i, j, d] = Σ_k ω_ijk r^(k)_d``.

        Serving folds ω into this once per parameter version (see
        :mod:`repro.serving.folded`); the sparse kernel builds it from
        the nonzero terms only.
        """
        return cached_einsum("ijk,rkd->rijd", self.omega, relation_table)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(shape={self.omega.shape}, "
            f"terms={self.num_terms}, density={self.density:.2f})"
        )


def _group_terms(
    terms: list[tuple[int, int, int, float]], out_axis: int, a_axis: int, b_axis: int, num_out: int
) -> tuple[tuple[tuple[int, int, float], ...], ...]:
    """Term-grouped program: per output slot, the ``(a, b, weight)`` ops."""
    slots: list[list[tuple[int, int, float]]] = [[] for _ in range(num_out)]
    for term in terms:
        slots[term[out_axis]].append((term[a_axis], term[b_axis], term[3]))
    return tuple(tuple(ops) for ops in slots)


def _apply_program(
    program: tuple[tuple[tuple[int, int, float], ...], ...],
    a_t: np.ndarray,
    b_t: np.ndarray,
    out: np.ndarray,
    tmp: np.ndarray | None,
) -> np.ndarray:
    """Run one term-grouped program over transposed operands.

    Each output slot's first term is written straight into the output
    buffer (negated in place for weight -1); later terms accumulate via
    a single shared ``(b, D)`` scratch buffer.  No dense lattice and no
    ``(b, n, n, D)`` einsum intermediate is ever materialised.
    """
    for slot, ops in enumerate(program):
        acc = out[slot]
        if not ops:
            acc.fill(0.0)
            continue
        a, b, w = ops[0]
        np.multiply(a_t[a], b_t[b], out=acc)
        if w == -1.0:
            np.negative(acc, out=acc)
        elif w != 1.0:
            acc *= w
        if len(ops) > 1:
            if tmp is None:
                tmp = np.empty_like(acc)
            for a, b, w in ops[1:]:
                np.multiply(a_t[a], b_t[b], out=tmp)
                if w == 1.0:
                    acc += tmp
                elif w == -1.0:
                    acc -= tmp
                else:
                    tmp *= w
                    acc += tmp
    return out


class SparseTermKernel(OmegaKernel):
    """Term-grouped programs over the nonzero entries of ω."""

    mode = "sparse"

    def __init__(self, omega: np.ndarray) -> None:
        super().__init__(omega)
        terms = [
            (int(i), int(j), int(k), float(v))
            for (i, j, k), v in np.ndenumerate(self.omega)
            if v != 0.0
        ]
        self.terms = tuple(terms)
        # Output axis / operand axes per contraction direction.
        self._program_hr = _group_terms(terms, 1, 0, 2, self.num_tail_slots)
        self._program_tr = _group_terms(terms, 0, 1, 2, self.num_head_slots)
        self._program_ht = _group_terms(terms, 2, 0, 1, self.num_relation_slots)

    def _run(self, program, a_t, b_t, num_out, out):
        batch, dim = a_t.shape[1], a_t.shape[2]
        if out is None:
            out = np.empty((num_out, batch, dim), dtype=np.float64)
        return _apply_program(program, a_t, b_t, out, None)

    def combine_hr(self, h_t, r_t, out=None):
        _check_transposed("h_t", h_t, self.num_head_slots)
        _check_transposed("r_t", r_t, self.num_relation_slots)
        return self._run(self._program_hr, h_t, r_t, self.num_tail_slots, out)

    def combine_tr(self, t_t, r_t, out=None):
        _check_transposed("t_t", t_t, self.num_tail_slots)
        _check_transposed("r_t", r_t, self.num_relation_slots)
        return self._run(self._program_tr, t_t, r_t, self.num_head_slots, out)

    def combine_ht(self, h_t, t_t, out=None):
        _check_transposed("h_t", h_t, self.num_head_slots)
        _check_transposed("t_t", t_t, self.num_tail_slots)
        return self._run(self._program_ht, h_t, t_t, self.num_relation_slots, out)

    def fold_relations(self, relation_table: np.ndarray) -> np.ndarray:
        num_relations, _, dim = relation_table.shape
        out = np.zeros(
            (num_relations, self.num_head_slots, self.num_tail_slots, dim), dtype=np.float64
        )
        written = set()
        for i, j, k, w in self.terms:
            target = out[:, i, j, :]
            source = relation_table[:, k, :]
            if (i, j) in written:
                if w == 1.0:
                    target += source
                elif w == -1.0:
                    target -= source
                else:
                    target += w * source
            else:
                np.multiply(source, w, out=target)
                written.add((i, j))
        return out


class DenseEinsumKernel(OmegaKernel):
    """Dense fallback: einsum contractions with precomputed paths.

    Used when ω has too few zeros for a term program to pay off (the
    uniform baseline, learned-ω models).  Semantically identical to the
    reference einsums in :mod:`repro.core.interaction`, minus the
    per-call contraction-path search.
    """

    mode = "dense"

    def combine_hr(self, h_t, r_t, out=None):
        _check_transposed("h_t", h_t, self.num_head_slots)
        _check_transposed("r_t", r_t, self.num_relation_slots)
        return cached_einsum("ijk,ibd,kbd->jbd", self.omega, h_t, r_t, out=out)

    def combine_tr(self, t_t, r_t, out=None):
        _check_transposed("t_t", t_t, self.num_tail_slots)
        _check_transposed("r_t", r_t, self.num_relation_slots)
        return cached_einsum("ijk,jbd,kbd->ibd", self.omega, t_t, r_t, out=out)

    def combine_ht(self, h_t, t_t, out=None):
        _check_transposed("h_t", h_t, self.num_head_slots)
        _check_transposed("t_t", t_t, self.num_tail_slots)
        return cached_einsum("ijk,ibd,jbd->kbd", self.omega, h_t, t_t, out=out)


def compile_kernel(
    omega: np.ndarray, density_threshold: float | None = None
) -> OmegaKernel:
    """Compile ω into the best kernel for its sparsity structure.

    Returns a :class:`SparseTermKernel` when the nonzero fraction is
    below *density_threshold* (default :data:`DENSE_DENSITY_THRESHOLD`),
    otherwise a :class:`DenseEinsumKernel`.
    """
    if density_threshold is None:
        density_threshold = DENSE_DENSITY_THRESHOLD
    omega = np.asarray(omega, dtype=np.float64)
    if omega.ndim != 3:
        raise ModelError(f"omega must be 3-D (n_h, n_t, n_r); got shape {omega.shape}")
    density = np.count_nonzero(omega) / omega.size
    if density < density_threshold:
        return SparseTermKernel(omega)
    return DenseEinsumKernel(omega)


def gather_transposed(
    table: np.ndarray, rows: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Gather embedding rows into the kernels' ``(slots, b, D)`` layout.

    Writing slot-by-slot keeps every destination slice contiguous, which
    is what makes the term programs' elementwise passes fast.  (Plain
    fancy indexing beats ``np.take`` with ``out=`` here: ``take`` pays
    for the strided column view of the source table.)
    """
    num_slots, dim = table.shape[1], table.shape[2]
    if out is None:
        out = np.empty((num_slots, len(rows), dim), dtype=table.dtype)
    for slot in range(num_slots):
        out[slot] = table[rows, slot]
    return out
