"""Direct (algebra-native) score implementations for cross-checking.

The multi-embedding mechanism claims that ComplEx and the quaternion
model are special cases of Eq. 8.  These functions compute the scores the
*original* way — complex/quaternion arithmetic on the very same embedding
tables — so tests can assert bit-level agreement with
:class:`~repro.core.interaction.MultiEmbeddingModel` under the
corresponding ω presets, and with the role-based formulation of CP/CPh.
"""

from __future__ import annotations

import numpy as np

from repro.core.algebra.complex_ops import complex_score, pack_complex
from repro.core.algebra.quaternion import quaternion_score
from repro.core.interaction import MultiEmbeddingModel
from repro.errors import ModelError


def _gather(model: MultiEmbeddingModel, heads, tails, relations):
    heads = np.asarray(heads, dtype=np.int64)
    tails = np.asarray(tails, dtype=np.int64)
    relations = np.asarray(relations, dtype=np.int64)
    return (
        model.entity_embeddings[heads],
        model.entity_embeddings[tails],
        model.relation_embeddings[relations],
    )


def distmult_score_direct(
    model: MultiEmbeddingModel, heads, tails, relations
) -> np.ndarray:
    """Paper Eq. 4 computed directly on the first embedding vectors."""
    h, t, r = _gather(model, heads, tails, relations)
    return np.sum(h[:, 0] * t[:, 0] * r[:, 0], axis=-1)


def complex_score_direct(
    model: MultiEmbeddingModel, heads, tails, relations
) -> np.ndarray:
    """Paper Eq. 5 via complex arithmetic: vectors (1)/(2) = real/imaginary."""
    h, t, r = _gather(model, heads, tails, relations)
    if h.shape[1] < 2 or r.shape[1] < 2:
        raise ModelError("ComplEx needs two embedding vectors per entity and relation")
    return complex_score(
        pack_complex(h[:, 0], h[:, 1]),
        pack_complex(t[:, 0], t[:, 1]),
        pack_complex(r[:, 0], r[:, 1]),
    )


def cp_score_direct(model: MultiEmbeddingModel, heads, tails, relations) -> np.ndarray:
    """Paper Eq. 6: role-based CP — head uses vector (1), tail uses vector (2)."""
    h, t, r = _gather(model, heads, tails, relations)
    return np.sum(h[:, 0] * t[:, 1] * r[:, 0], axis=-1)


def cph_score_direct(model: MultiEmbeddingModel, heads, tails, relations) -> np.ndarray:
    """Paper Eq. 11: CP score of the triple plus CP score of its inverse.

    The augmented relation ``r^(a)`` maps to the second relation vector.
    """
    h, t, r = _gather(model, heads, tails, relations)
    if r.shape[1] < 2:
        raise ModelError("CPh needs two embedding vectors per relation")
    forward = np.sum(h[:, 0] * t[:, 1] * r[:, 0], axis=-1)
    inverse = np.sum(t[:, 0] * h[:, 1] * r[:, 1], axis=-1)
    return forward + inverse


def score_candidates_direct(
    model, anchors, relations, candidates, side: str = "tail"
) -> np.ndarray:
    """Brute-force reference for ``KGEModel.score_candidates``.

    Scores each ``(query, candidate)`` pair with an independent
    single-triple ``score_triples`` call — maximally simple and obviously
    correct, so the vectorised fast paths in the model classes and the
    serving layer can be asserted against it.  Works for *any*
    :class:`~repro.core.base.KGEModel`, not just the multi-embedding one.
    """
    if side not in ("tail", "head"):
        raise ModelError(f"unknown side {side!r}")
    anchors = np.asarray(anchors, dtype=np.int64)
    relations = np.asarray(relations, dtype=np.int64)
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.ndim == 1:
        candidates = np.broadcast_to(candidates, (len(anchors), len(candidates)))
    out = np.empty(candidates.shape, dtype=np.float64)
    for row in range(candidates.shape[0]):
        for col in range(candidates.shape[1]):
            anchor = np.array([anchors[row]])
            cand = np.array([candidates[row, col]])
            rel = np.array([relations[row]])
            if side == "tail":
                out[row, col] = model.score_triples(anchor, cand, rel)[0]
            else:
                out[row, col] = model.score_triples(cand, anchor, rel)[0]
    return out


def quaternion_score_direct(
    model: MultiEmbeddingModel, heads, tails, relations
) -> np.ndarray:
    """Paper Eq. 13 via quaternion arithmetic on four-embedding tables."""
    h, t, r = _gather(model, heads, tails, relations)
    if h.shape[1] != 4 or r.shape[1] != 4:
        raise ModelError("the quaternion model needs four embedding vectors")
    # (b, 4, D) -> (4, b, D): component axis first, as the algebra expects.
    to_quat = lambda x: np.moveaxis(x, 1, 0)  # noqa: E731 - tiny local adapter
    return quaternion_score(to_quat(h), to_quat(t), to_quat(r))
