"""Learning the interaction weight vector ω end-to-end (paper §3.3, Table 3).

The model keeps an unconstrained parameter ρ and scores with
``ω = f(ρ)`` where ``f`` is one of:

* ``identity`` — "no restriction",
* ``tanh`` — ω ∈ (-1, 1),
* ``sigmoid`` — ω ∈ (0, 1),
* ``softmax`` — ω ∈ (0, 1) summing to 1,

optionally adding the Dirichlet sparsity regulariser of Eq. 12.  The
paper's finding (reproduced in the Table 3 benchmark) is that every such
variant gets stuck near a symmetric ω and performs at DistMult level.
"""

from __future__ import annotations

import numpy as np

from repro.core.interaction import MultiEmbeddingModel, _BatchCache
from repro.core.weights import WeightVector
from repro.errors import ConfigError
from repro.nn.losses import LogisticLoss, sigmoid
from repro.nn.optimizers import Optimizer
from repro.nn.regularizers import DirichletSparsityRegularizer


class WeightTransform:
    """A differentiable reparameterisation ``ω = f(ρ)``."""

    #: Registry name.
    name = "identity"

    def forward(self, rho: np.ndarray) -> np.ndarray:
        """Map the free parameter ρ to the weight tensor ω."""
        return rho

    def backward(self, rho: np.ndarray, omega: np.ndarray, grad_omega: np.ndarray) -> np.ndarray:
        """Chain dL/dω into dL/dρ."""
        return grad_omega


class TanhTransform(WeightTransform):
    """ω = tanh(ρ) ∈ (-1, 1)."""

    name = "tanh"

    def forward(self, rho: np.ndarray) -> np.ndarray:
        return np.tanh(rho)

    def backward(self, rho: np.ndarray, omega: np.ndarray, grad_omega: np.ndarray) -> np.ndarray:
        return grad_omega * (1.0 - np.square(omega))


class SigmoidTransform(WeightTransform):
    """ω = σ(ρ) ∈ (0, 1)."""

    name = "sigmoid"

    def forward(self, rho: np.ndarray) -> np.ndarray:
        return sigmoid(rho)

    def backward(self, rho: np.ndarray, omega: np.ndarray, grad_omega: np.ndarray) -> np.ndarray:
        return grad_omega * omega * (1.0 - omega)


class SoftmaxTransform(WeightTransform):
    """ω = softmax(ρ) over all lattice positions (sums to 1)."""

    name = "softmax"

    def forward(self, rho: np.ndarray) -> np.ndarray:
        flat = rho.ravel()
        shifted = flat - flat.max()
        exp = np.exp(shifted)
        return (exp / exp.sum()).reshape(rho.shape)

    def backward(self, rho: np.ndarray, omega: np.ndarray, grad_omega: np.ndarray) -> np.ndarray:
        w = omega.ravel()
        g = grad_omega.ravel()
        out = w * (g - float(np.dot(g, w)))
        return out.reshape(rho.shape)


TRANSFORMS: dict[str, type[WeightTransform]] = {
    cls.name: cls
    for cls in (WeightTransform, TanhTransform, SigmoidTransform, SoftmaxTransform)
}


def make_transform(name: str) -> WeightTransform:
    """Build a transform by name (identity, tanh, sigmoid, softmax)."""
    try:
        return TRANSFORMS[name]()
    except KeyError:
        known = ", ".join(sorted(TRANSFORMS))
        raise ConfigError(f"unknown weight transform {name!r}; known: {known}") from None


class LearnedWeightModel(MultiEmbeddingModel):
    """Multi-embedding model whose ω is trained jointly with embeddings.

    Parameters
    ----------
    transform:
        Transform name (``identity``/``tanh``/``sigmoid``/``softmax``).
    sparsity:
        Optional :class:`DirichletSparsityRegularizer` applying Eq. 12.
    init_scale:
        Standard deviation of the Gaussian initialising ρ around the
        value whose transform is (near-)uniform.
    """

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        rng: np.random.Generator,
        num_entity_vectors: int = 2,
        num_relation_vectors: int = 2,
        transform: str = "identity",
        sparsity: DirichletSparsityRegularizer | None = None,
        regularization: float = 0.0,
        initializer: str = "unit_normalized",
        init_scale: float = 0.1,
        loss: LogisticLoss | None = None,
        use_compiled_kernel: bool = True,
    ) -> None:
        shape = (num_entity_vectors, num_entity_vectors, num_relation_vectors)
        placeholder = WeightVector(f"Auto weight ({transform})", np.ones(shape))
        super().__init__(
            num_entities,
            num_relations,
            dim,
            placeholder,
            rng,
            regularization=regularization,
            initializer=initializer,
            loss=loss,
            use_compiled_kernel=use_compiled_kernel,
        )
        self.transform = make_transform(transform)
        self.sparsity = sparsity
        if init_scale <= 0:
            raise ConfigError("init_scale must be positive")
        # Start near the uniform weight vector, as the paper's learned runs
        # do; symmetric gradients then keep ω near-uniform (§6.2).
        self.rho = np.ones(shape, dtype=np.float64) + rng.normal(0.0, init_scale, size=shape)
        self._omega_cache = self.transform.forward(self.rho)
        suffix = ", sparse" if sparsity is not None else ""
        self.name = f"Auto weight ({transform}{suffix})"

    @property
    def omega(self) -> np.ndarray:
        """The current transformed weight tensor ω = f(ρ).

        Every update replaces the cached array, so the model's compiled
        kernel (keyed on the array's identity) recompiles on next use —
        learned ω is dense, which makes that a cheap
        :class:`~repro.core.kernels.DenseEinsumKernel` rebuild whose
        contraction paths come from a shared module-level cache.
        """
        return self._omega_cache

    def refresh_omega(self) -> None:
        """Recompute ω = f(ρ) after ρ was replaced outside ``train_step``.

        Checkpoint loading assigns ρ directly; calling this keeps the
        cached ω consistent and bumps :attr:`scoring_version` so serving
        caches and folded tensors built from the old ω are invalidated.
        """
        self._omega_cache = self.transform.forward(self.rho)
        self._bump_scoring_version()

    def _extra_updates(
        self, cache: _BatchCache, grad_scores: np.ndarray, optimizer: Optimizer
    ) -> None:
        # The kernel's ω gradient reuses a cached contraction path; in
        # reference mode the inherited ``_omega_gradient`` einsum runs so
        # the oracle arm shares no code with the compiled engine.
        if self.use_compiled_kernel:
            grad_omega = self.kernel.omega_gradient(
                grad_scores, cache.h_vecs, cache.t_vecs, cache.r_vecs
            )
        else:
            grad_omega = self._omega_gradient(cache, grad_scores)
        if self.sparsity is not None:
            grad_omega = grad_omega + self.sparsity.grad(self._omega_cache)
        grad_rho = self.transform.backward(self.rho, self._omega_cache, grad_omega)
        optimizer.step_dense("omega_rho", self.rho, grad_rho)
        self._omega_cache = self.transform.forward(self.rho)

    def parameter_count(self) -> int:
        """Embedding scalars plus the ρ lattice."""
        return super().parameter_count() + int(self.rho.size)

    def current_weight_vector(self) -> WeightVector:
        """Snapshot of the learned ω as an immutable :class:`WeightVector`."""
        return WeightVector(self.name, self._omega_cache)
