"""Memory-mapped array store: a directory of ``.npy`` files + JSON meta.

The scale layer's storage primitive.  A :class:`MemStore` is a directory
holding one plain ``.npy`` file per named array and a ``store.json``
recording, for every entry, its shape, dtype, byte size and the sha256
of the *intended* file bytes.  Arrays come back as read-only
``np.memmap`` views (``np.load(..., mmap_mode="r")``), so

* every process mapping the same store shares one set of OS page-cache
  pages — pool workers, the sharded evaluator and the serving daemon
  read the same physical memory instead of holding pickled private
  copies, and
* resident cost is pay-per-touch: an array the workload never reads
  costs address space, not RAM, and cold pages are evictable under
  pressure (file-backed, clean).

Stores are artifacts like any other: writes go through
:func:`~repro.reliability.atomic.atomic_write_bytes` (crash-safe, and
the ``io.write`` fault-injection site applies, so torn/byte-flipped
``.npy`` chaos is testable), and every open verifies the recorded
sha256 before handing out a mapping — damage surfaces as a typed
:class:`~repro.errors.CorruptArtifactError` naming the file, never a
raw numpy/OS traceback.
"""

from __future__ import annotations

import io
import json
import re
from pathlib import Path
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.errors import CorruptArtifactError, MissingArtifactError, ServingError
from repro.reliability.atomic import atomic_write_bytes, atomic_write_json
from repro.reliability.manifest import sha256_bytes, sha256_file

#: Meta filename inside a store directory.
STORE_META_FILE = "store.json"

_FORMAT_VERSION = 1

#: Array names must be filesystem-safe (they become ``<name>.npy``).
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

#: dtypes checkpoints may downcast embedding tables to (policy lives in
#: :mod:`repro.core.serialization`; the store itself accepts any numeric
#: dtype — PQ codes are uint8, member lists int32).
DOWNCAST_DTYPES = ("float64", "float32", "float16")


def npy_bytes(array: np.ndarray) -> bytes:
    """The exact bytes ``np.save`` would write for *array*.

    Serialized in-memory so callers can hash the payload for the store
    meta and hand the same bytes to the atomic writer — one
    serialization, both uses (hashing the *intended* bytes, so injected
    write corruption cannot self-certify).
    """
    buffer = io.BytesIO()
    np.lib.format.write_array(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return buffer.getvalue()


def is_mapped(array) -> bool:
    """True when *array* is a file-backed ``np.memmap`` with a known path."""
    return isinstance(array, np.memmap) and bool(getattr(array, "filename", None))


def array_memory(arrays: Iterable[np.ndarray]) -> tuple[int, int]:
    """``(in_process_bytes, mapped_bytes)`` split of an array collection.

    Memory accounting for the scale benchmarks: mapped arrays are
    file-backed (shared, evictable) and counted separately from private
    in-process copies.
    """
    in_process = 0
    mapped = 0
    for array in arrays:
        if array is None:
            continue
        if is_mapped(array):
            mapped += int(array.nbytes)
        else:
            in_process += int(array.nbytes)
    return in_process, mapped


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_PATTERN.match(name):
        raise ServingError(
            f"store array names must be filesystem-safe identifiers, got {name!r}"
        )
    return name


class MemStore:
    """A directory of memory-mappable ``.npy`` arrays with integrity meta.

    Use :meth:`create` for a new (or re-written) store and :meth:`open`
    for an existing one; :meth:`put` writes an array crash-safely,
    :meth:`get` maps one read-only after checking its recorded sha256.
    ``extra`` is a free-form JSON dict callers stamp provenance into
    (e.g. the model fingerprint a folded-matrix store was built from).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        _entries: dict | None = None,
        _extra: dict | None = None,
    ) -> None:
        self.directory = Path(directory)
        self._entries: dict[str, dict] = _entries if _entries is not None else {}
        self.extra: dict = _extra if _extra is not None else {}
        self._verified: set[str] = set()

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def create(cls, directory: str | Path, extra: dict | None = None) -> "MemStore":
        """Start an empty store at *directory* (created if needed)."""
        store = cls(directory, _extra=dict(extra or {}))
        store.directory.mkdir(parents=True, exist_ok=True)
        store._write_meta()
        return store

    @classmethod
    def begin(cls, directory: str | Path, extra: dict | None = None) -> "MemStore":
        """Open a store for (re)writing without committing its meta yet.

        Payload files land as entries are :meth:`put` (with
        ``flush=False``); nothing becomes visible to fresh readers until
        :meth:`flush` atomically replaces ``store.json`` — the single
        commit point.  Rewriting an existing store this way keeps the
        previous version loadable if the write is torn before the flush,
        instead of destroying its meta up front the way :meth:`create`
        (which persists an empty index immediately) would.
        """
        store = cls(directory, _extra=dict(extra or {}))
        store.directory.mkdir(parents=True, exist_ok=True)
        return store

    @classmethod
    def open(cls, directory: str | Path) -> "MemStore":
        """Open an existing store; typed errors for missing/damaged meta."""
        directory = Path(directory)
        meta_path = directory / STORE_META_FILE
        if not meta_path.exists():
            raise MissingArtifactError(
                f"not an array store (no {STORE_META_FILE}): {directory}",
                path=meta_path,
            )
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CorruptArtifactError(
                f"array store meta is torn or corrupt ({error}): {meta_path}",
                path=meta_path,
            ) from None
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ServingError(
                f"unsupported array store version: {meta.get('format_version')}"
            )
        entries = meta.get("arrays")
        if not isinstance(entries, dict):
            raise CorruptArtifactError(
                f"array store meta has no 'arrays' mapping: {meta_path}",
                path=meta_path,
            )
        return cls(directory, _entries=dict(entries), _extra=dict(meta.get("extra", {})))

    def _write_meta(self) -> None:
        atomic_write_json(
            self.directory / STORE_META_FILE,
            {
                "format_version": _FORMAT_VERSION,
                "arrays": dict(sorted(self._entries.items())),
                "extra": self.extra,
            },
            sort_keys=True,
        )

    # ------------------------------------------------------------- contents
    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def entry(self, name: str) -> dict:
        """The recorded ``{file, shape, dtype, nbytes, sha256}`` of *name*."""
        try:
            return dict(self._entries[name])
        except KeyError:
            raise MissingArtifactError(
                f"array {name!r} is not in this store: {self.directory}",
                path=self.directory / f"{name}.npy",
            ) from None

    def nbytes(self) -> int:
        """Total logical bytes of every stored array."""
        return int(sum(entry["nbytes"] for entry in self._entries.values()))

    def update_extra(self, **values) -> None:
        """Merge provenance keys into ``extra`` and persist the meta."""
        self.extra.update(values)
        self._write_meta()

    def flush(self) -> None:
        """Atomically persist the meta — the commit point for :meth:`begin`."""
        self._write_meta()

    def hashes(self, prefix: str = "") -> dict[str, str]:
        """``{relative path: sha256}`` of every file, for run manifests.

        Includes ``store.json`` itself (hashed from disk — it is small),
        so a manifest covering the store covers the index of the store
        too, not just the payload files.
        """
        out = {
            f"{prefix}{entry['file']}": entry["sha256"]
            for entry in self._entries.values()
        }
        meta_path = self.directory / STORE_META_FILE
        out[f"{prefix}{STORE_META_FILE}"] = sha256_file(meta_path)
        return out

    # --------------------------------------------------------------- access
    def put(self, name: str, array: np.ndarray, dtype=None, flush: bool = True) -> np.ndarray:
        """Write *array* crash-safely and return its read-only mapping.

        An existing entry of the same name is atomically replaced.  The
        recorded sha256 is computed from the bytes we *meant* to write,
        so a fault injected at the ``io.write`` site (or real bit rot)
        is caught by the next :meth:`get`.  ``flush=False`` defers the
        ``store.json`` update to an explicit :meth:`flush` — bulk
        writers started with :meth:`begin` use it so the whole batch
        commits at one atomic point.
        """
        _check_name(name)
        array = np.asarray(array)
        if dtype is not None:
            array = array.astype(dtype, copy=False)
        payload = npy_bytes(array)
        filename = f"{name}.npy"
        path = self.directory / filename
        atomic_write_bytes(path, payload)
        self._entries[name] = {
            "file": filename,
            "shape": [int(s) for s in array.shape],
            "dtype": str(array.dtype),
            "nbytes": int(array.nbytes),
            "sha256": sha256_bytes(payload),
        }
        self._verified.discard(name)
        if flush:
            self._write_meta()
        return self.get(name)

    def get(self, name: str, verify: bool = True) -> np.ndarray:
        """Map array *name* read-only; integrity-checked on first access.

        ``verify=True`` (default) compares the file's sha256 against the
        store meta once per store instance — truncation *and* in-page
        byte flips are both caught up front, because a flipped byte deep
        in the data region would otherwise surface as silently wrong
        scores rather than any exception.
        """
        entry = self._entries.get(name)
        if entry is None:
            raise MissingArtifactError(
                f"array {name!r} is not in this store: {self.directory}",
                path=self.directory / f"{name}.npy",
            )
        path = self.directory / entry["file"]
        if not path.exists():
            raise MissingArtifactError(
                f"store array file recorded in {STORE_META_FILE} is missing: {path}",
                path=path,
            )
        if verify and name not in self._verified:
            if sha256_file(path) != entry["sha256"]:
                raise CorruptArtifactError(
                    "store array failed its integrity check (sha256 mismatch "
                    f"against {STORE_META_FILE}): {path}",
                    path=path,
                )
            self._verified.add(name)
        try:
            array = np.load(path, mmap_mode="r", allow_pickle=False)
        except Exception as error:  # ValueError (bad header/size), OSError
            raise CorruptArtifactError(
                f"store array is unreadable ({error}): {path}", path=path
            ) from None
        if list(array.shape) != list(entry["shape"]) or str(array.dtype) != entry["dtype"]:
            raise CorruptArtifactError(
                f"store array does not match its recorded layout (got "
                f"{array.dtype}{array.shape}, recorded "
                f"{entry['dtype']}{tuple(entry['shape'])}): {path}",
                path=path,
            )
        return array

    def get_all(self, verify: bool = True) -> dict[str, np.ndarray]:
        """Map every stored array (insertion-order independent: sorted)."""
        return {name: self.get(name, verify=verify) for name in self.names()}

    def verify_all(self) -> None:
        """Re-check every file's sha256 from disk (ignores the cache)."""
        self._verified.clear()
        for name in self.names():
            self.get(name)

    def __repr__(self) -> str:
        return (
            f"MemStore({str(self.directory)!r}, arrays={len(self._entries)}, "
            f"nbytes={self.nbytes()})"
        )


def open_mapped(path: str | Path, *, dtype=None, shape=None) -> np.ndarray:
    """Map a standalone ``.npy`` file read-only, with optional layout check.

    The payload-shipping path (:mod:`repro.parallel.payload`) records
    bare file paths; workers reopen them here.  Layout mismatches and
    unreadable files raise typed artifact errors like store access does.
    """
    path = Path(path)
    if not path.exists():
        raise MissingArtifactError(f"mapped array file is missing: {path}", path=path)
    try:
        array = np.load(path, mmap_mode="r", allow_pickle=False)
    except Exception as error:
        raise CorruptArtifactError(
            f"mapped array is unreadable ({error}): {path}", path=path
        ) from None
    if shape is not None and tuple(array.shape) != tuple(shape):
        raise CorruptArtifactError(
            f"mapped array shape {array.shape} != recorded {tuple(shape)}: {path}",
            path=path,
        )
    if dtype is not None and str(array.dtype) != str(dtype):
        raise CorruptArtifactError(
            f"mapped array dtype {array.dtype} != recorded {dtype}: {path}",
            path=path,
        )
    return array


def mappable_source(array) -> tuple[str, str, tuple[int, ...]] | None:
    """``(path, dtype, shape)`` when *array* is a whole-file ``.npy`` map.

    Returns ``None`` for anything else — in-memory arrays, views/slices
    of a mapping, or files that no longer round-trip — so callers fall
    back to shipping bytes.  The check re-reads only the npy header.
    """
    if not is_mapped(array):
        return None
    path = str(array.filename)
    if not path.endswith(".npy") or not array.flags.c_contiguous:
        return None
    try:
        probe = np.load(path, mmap_mode="r", allow_pickle=False)
    except Exception:
        return None
    if (
        probe.shape != array.shape
        or probe.dtype != array.dtype
        or getattr(probe, "offset", None) != getattr(array, "offset", None)
    ):
        return None
    return path, str(array.dtype), tuple(int(s) for s in array.shape)


def payload_meta(arrays: Mapping[str, np.ndarray]) -> dict[str, dict]:
    """JSON-compatible layout summary of an array mapping (for logs/tests)."""
    return {
        name: {
            "shape": [int(s) for s in np.asarray(array).shape],
            "dtype": str(np.asarray(array).dtype),
            "mapped": is_mapped(array),
        }
        for name, array in arrays.items()
    }
