"""Working with learned embeddings as plain real feature vectors (§3.2).

A practical payoff of the multi-embedding view: a ComplEx embedding is
just two real vectors, a quaternion embedding four — so for
visualisation, clustering or use as pretrained features, the component
vectors can simply be concatenated into one long real vector.  This
module implements that export plus the standard similarity queries.
"""

from __future__ import annotations

import numpy as np

from repro.core.interaction import MultiEmbeddingModel
from repro.errors import EvaluationError


def entity_feature_matrix(model: MultiEmbeddingModel, normalize: bool = False) -> np.ndarray:
    """``(num_entities, n_e * D)`` concatenated real entity features."""
    features = model.entity_features()
    return l2_normalize_rows(features) if normalize else features


def relation_feature_matrix(model: MultiEmbeddingModel, normalize: bool = False) -> np.ndarray:
    """``(num_relations, n_r * D)`` concatenated real relation features."""
    features = model.relation_features()
    return l2_normalize_rows(features) if normalize else features


def l2_normalize_rows(matrix: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Scale each row to unit L2 norm (zero rows left unchanged)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    return matrix / np.maximum(norms, eps)


def cosine_similarity_matrix(features: np.ndarray) -> np.ndarray:
    """Dense pairwise cosine similarity of the rows of *features*."""
    normalized = l2_normalize_rows(features)
    return normalized @ normalized.T


def nearest_neighbors(
    features: np.ndarray, query: int, k: int = 10
) -> list[tuple[int, float]]:
    """The *k* most cosine-similar rows to row *query* (excluding itself).

    Returns ``(index, similarity)`` pairs, best first.
    """
    features = np.asarray(features, dtype=np.float64)
    if not 0 <= query < len(features):
        raise EvaluationError(f"query index {query} out of range")
    if k < 1:
        raise EvaluationError("k must be >= 1")
    normalized = l2_normalize_rows(features)
    sims = normalized @ normalized[query]
    sims[query] = -np.inf
    k = min(k, len(features) - 1)
    top = np.argpartition(-sims, k - 1)[:k]
    top = top[np.argsort(-sims[top])]
    return [(int(i), float(sims[i])) for i in top]


def embedding_norms_by_slot(model: MultiEmbeddingModel) -> np.ndarray:
    """Mean L2 norm of each entity embedding slot, shape ``(n_e,)``.

    Diagnostic for the §6.1.2 *stability* property in trained models: in a
    stable model all slots should carry comparable norm mass, while a CP
    model trained without augmentation typically lets one role atrophy
    per entity.
    """
    norms = np.linalg.norm(model.entity_embeddings, axis=-1)
    return norms.mean(axis=0)
