"""Analysis toolkit: embedding export, similarity, projection, ω-space census."""

from repro.analysis.classification import FeatureClassifier, train_feature_classifier
from repro.analysis.embeddings import (
    cosine_similarity_matrix,
    embedding_norms_by_slot,
    entity_feature_matrix,
    l2_normalize_rows,
    nearest_neighbors,
    relation_feature_matrix,
)
from repro.analysis.projection import PCAResult, pca_project
from repro.analysis.weight_space import (
    are_equivalent,
    classify_weight_vectors,
    count_by_quality,
    enumerate_sign_weight_vectors,
    symmetry_orbit,
)

__all__ = [
    "FeatureClassifier",
    "PCAResult",
    "are_equivalent",
    "classify_weight_vectors",
    "cosine_similarity_matrix",
    "count_by_quality",
    "embedding_norms_by_slot",
    "entity_feature_matrix",
    "enumerate_sign_weight_vectors",
    "l2_normalize_rows",
    "nearest_neighbors",
    "pca_project",
    "relation_feature_matrix",
    "symmetry_orbit",
    "train_feature_classifier",
]
