"""Embeddings as pretrained features for downstream classification (§1).

The paper motivates learned embeddings as "extracted or pretrained
feature vectors in other learning models for tasks such as
classification, clustering, and ranking".  This module provides a small
multinomial logistic-regression classifier, trained through the
library's own autodiff engine, that consumes an embedding feature
matrix — demonstrating the full §3.2 pipeline: train a KGE model,
concatenate its multi-embeddings into real vectors, learn a downstream
predictor on top.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.nn.autodiff import Tensor


@dataclass
class FeatureClassifier:
    """A trained multinomial logistic-regression head over features."""

    weights: np.ndarray  # (d, c)
    bias: np.ndarray  # (c,)

    def logits(self, features: np.ndarray) -> np.ndarray:
        """Class scores, shape ``(n, c)``."""
        return np.asarray(features, dtype=np.float64) @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most likely class per row."""
        return np.argmax(self.logits(features), axis=-1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of rows classified correctly."""
        return float(np.mean(self.predict(features) == np.asarray(labels)))


def train_feature_classifier(
    features: np.ndarray,
    labels: np.ndarray,
    num_classes: int | None = None,
    epochs: int = 200,
    learning_rate: float = 0.5,
    l2: float = 1e-4,
) -> FeatureClassifier:
    """Fit a softmax classifier on (features, labels) by gradient descent.

    Training runs through :mod:`repro.nn.autodiff` — cross-entropy is
    expressed as ``logsumexp(logits) - logit_true`` using the engine's
    primitive ops.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if features.ndim != 2 or len(features) != len(labels):
        raise ConfigError("features must be (n, d) matching labels (n,)")
    if len(features) == 0:
        raise ConfigError("need at least one training example")
    if epochs < 1 or learning_rate <= 0:
        raise ConfigError("epochs must be >= 1 and learning_rate positive")
    n, d = features.shape
    c = int(num_classes) if num_classes is not None else int(labels.max()) + 1
    if labels.min() < 0 or labels.max() >= c:
        raise ConfigError("labels out of range for num_classes")

    one_hot = np.zeros((n, c))
    one_hot[np.arange(n), labels] = 1.0
    weights = np.zeros((d, c))
    bias = np.zeros(c)
    x = Tensor(features)

    for _ in range(epochs):
        w = Tensor(weights, requires_grad=True)
        b = Tensor(bias, requires_grad=True)
        logits = x @ w + b
        # stable log-softmax cross-entropy: mean(logsumexp - true logit)
        shifted = logits - Tensor(logits.data.max(axis=1, keepdims=True))
        log_norm = shifted.exp().sum(axis=1, keepdims=True).log()
        log_probs = shifted - log_norm
        nll = -(log_probs * Tensor(one_hot)).sum() * (1.0 / n)
        loss = nll + (w * w).sum() * l2
        loss.backward()
        weights -= learning_rate * w.grad
        bias -= learning_rate * b.grad

    return FeatureClassifier(weights=weights, bias=bias)
