"""Low-dimensional projection of embeddings for visualisation (§1).

The paper motivates embeddings as inputs "in visualization or browsing
for data analysis".  :func:`pca_project` implements principal component
analysis via SVD in pure numpy so embedding matrices can be dropped into
any 2-D plotting tool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EvaluationError


@dataclass(frozen=True)
class PCAResult:
    """Output of :func:`pca_project`.

    Attributes
    ----------
    projected:
        ``(n, k)`` coordinates in the principal subspace.
    components:
        ``(k, d)`` orthonormal principal directions.
    explained_variance_ratio:
        Fraction of total variance captured by each component.
    mean:
        The feature mean removed before projection.
    """

    projected: np.ndarray
    components: np.ndarray
    explained_variance_ratio: np.ndarray
    mean: np.ndarray

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Project new rows into the same principal subspace."""
        features = np.asarray(features, dtype=np.float64)
        return (features - self.mean) @ self.components.T


def pca_project(features: np.ndarray, k: int = 2) -> PCAResult:
    """Project the rows of *features* onto their top-*k* principal axes."""
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise EvaluationError("features must be a 2-D matrix")
    n, d = features.shape
    if not 1 <= k <= min(n, d):
        raise EvaluationError(f"k must be in [1, {min(n, d)}], got {k}")
    mean = features.mean(axis=0)
    centered = features - mean
    _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
    variances = singular_values**2
    total = variances.sum()
    ratio = variances[:k] / total if total > 0 else np.zeros(k)
    components = vt[:k]
    return PCAResult(
        projected=centered @ components.T,
        components=components,
        explained_variance_ratio=ratio,
        mean=mean,
    )
