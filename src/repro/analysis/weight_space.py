"""Enumerating and classifying the space of interaction weight vectors.

§6.1.2 of the paper argues that goodness of an ω is structural
(completeness, stability, distinguishability), not accidental.  This
module enumerates sign-valued weight vectors, classifies each one by
those properties, and groups vectors into equivalence orbits under the
symmetries the paper invokes (entity-slot permutations, relation-slot
permutations, and head/tail exchange) — the symmetries that make
"ComplEx equiv. 1–3" and "CPh equiv." behave identically to their
primary forms.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import permutations, product

import numpy as np

from repro.core.properties import analyze_weight_vector
from repro.core.weights import WeightVector
from repro.errors import ConfigError


def enumerate_sign_weight_vectors(
    values: tuple[float, ...] = (-1.0, 0.0, 1.0),
    shape: tuple[int, int, int] = (2, 2, 2),
) -> Iterator[WeightVector]:
    """Yield every ω whose entries are drawn from *values* (skipping all-zero)."""
    size = int(np.prod(shape))
    if size > 16:
        raise ConfigError("enumeration beyond 16 lattice positions is intractable")
    for combo in product(values, repeat=size):
        if all(v == 0.0 for v in combo):
            continue
        yield WeightVector.from_flat(f"w{combo}", combo, shape)


def classify_weight_vectors(
    vectors: Iterator[WeightVector] | list[WeightVector],
) -> dict[str, list[WeightVector]]:
    """Bucket weight vectors by predicted quality ('good'/'symmetric'/'poor')."""
    buckets: dict[str, list[WeightVector]] = {"good": [], "symmetric": [], "poor": []}
    for vector in vectors:
        buckets[analyze_weight_vector(vector).predicted_quality()].append(vector)
    return buckets


def symmetry_orbit(weights: WeightVector) -> set[tuple[float, ...]]:
    """All flattened forms of ω reachable by the paper's symmetries.

    The symmetries are: permuting entity slots (applied simultaneously to
    the head and tail axes — the table is shared), permuting relation
    slots, and exchanging the head and tail axes.  Two weight vectors in
    the same orbit define the same model family up to a relabelling of
    learned parameters, which is how Table 1's "equiv." variants arise.
    """
    tensor = weights.tensor
    n_entity = tensor.shape[0]
    if tensor.shape[1] != n_entity:
        raise ConfigError("symmetry orbit requires matching head/tail slot counts")
    n_relation = tensor.shape[2]
    orbit: set[tuple[float, ...]] = set()
    for entity_perm in permutations(range(n_entity)):
        for relation_perm in permutations(range(n_relation)):
            permuted = tensor[np.ix_(entity_perm, entity_perm, relation_perm)]
            for candidate in (permuted, np.swapaxes(permuted, 0, 1)):
                orbit.add(tuple(float(x) for x in candidate.ravel()))
    return orbit


def are_equivalent(first: WeightVector, second: WeightVector) -> bool:
    """Whether two weight vectors lie in the same symmetry orbit."""
    if first.tensor.shape != second.tensor.shape:
        return False
    return second.flatten() in symmetry_orbit(first)


def count_by_quality(
    values: tuple[float, ...] = (-1.0, 0.0, 1.0),
    shape: tuple[int, int, int] = (2, 2, 2),
) -> dict[str, int]:
    """Census of the sign-valued ω space by predicted quality."""
    buckets = classify_weight_vectors(enumerate_sign_weight_vectors(values, shape))
    return {quality: len(vectors) for quality, vectors in buckets.items()}
