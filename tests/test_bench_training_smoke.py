"""Tier-1 smoke run of the training-throughput benchmark.

Runs ``benchmarks/bench_training_throughput.py`` at toy scale: the JSON
payload must have the documented schema and the kernel engine must match
the dense oracle to 1e-10 for every model class.  Throughput assertions
belong to the slow full-scale run only.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

BENCH_PATH = Path(__file__).parent.parent / "benchmarks" / "bench_training_throughput.py"


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location("bench_training_throughput", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def smoke_results(bench_module, tmp_path_factory):
    json_path = tmp_path_factory.mktemp("bench") / "BENCH_training.json"
    results = bench_module.run_benchmark(fast=True, json_path=json_path)
    return results, json_path


def test_json_written_with_schema(smoke_results, bench_module):
    results, json_path = smoke_results
    on_disk = json.loads(json_path.read_text(encoding="utf-8"))
    assert on_disk["config"]["fast"] is True
    assert set(on_disk["models"]) == set(bench_module.MODEL_BUILDERS)
    for row in on_disk["models"].values():
        for key in (
            "kernel_mode",
            "kernel_triples_per_sec",
            "dense_triples_per_sec",
            "speedup",
            "max_score_delta",
            "max_param_delta_after_2_steps",
        ):
            assert key in row
        assert row["kernel_triples_per_sec"] > 0
        assert row["dense_triples_per_sec"] > 0


def test_kernel_matches_dense_oracle(smoke_results):
    results, _ = smoke_results
    for name, row in results["models"].items():
        assert row["max_score_delta"] < 1e-10, name
        assert row["max_loss_delta"] < 1e-10, name
        assert row["max_param_delta_after_2_steps"] < 1e-10, name


def test_expected_kernel_modes(smoke_results):
    results, _ = smoke_results
    modes = {name: row["kernel_mode"] for name, row in results["models"].items()}
    assert modes["quaternion"] == "sparse"
    assert modes["cph"] == "sparse"
    assert modes["learned"] == "dense"  # dense ω falls back to the einsum kernel


def test_format_results_renders_table(smoke_results, bench_module):
    results, _ = smoke_results
    table = bench_module.format_results(results)
    assert "speedup" in table
    assert "quaternion" in table
